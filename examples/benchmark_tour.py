"""A guided tour of the LDBC SNB benchmark harness.

Runs a small LDBC SNB Interactive mix against all three GES variants plus
the Volcano competitor stand-in, then prints the paper-style summary: per-
query latency, throughput score, and the factorization memory effect.

Run:  python examples/benchmark_tour.py
"""

from __future__ import annotations

from repro import GES, EngineConfig
from repro.baselines import VolcanoEngine
from repro.exec.base import ExecStats
from repro.ldbc import BenchmarkDriver, ParameterGenerator, REGISTRY, generate


def fresh_engine(name: str):
    dataset = generate("SF10", seed=42)
    if name == "Volcano":
        return dataset, VolcanoEngine(dataset.store)
    config = {
        "GES": EngineConfig.ges(),
        "GES_f": EngineConfig.ges_f(),
        "GES_f*": EngineConfig.ges_f_star(),
    }[name]
    return dataset, GES(dataset.store, config)


def main() -> None:
    print("=== LDBC SNB Interactive, mini-SF10 ===\n")

    # 1. Full benchmark runs (IC + IS + IU mix per spec frequencies).
    print(f"{'engine':8} {'ops':>5} {'wall s':>7} {'score ops/s':>12}")
    for name in ("Volcano", "GES", "GES_f", "GES_f*"):
        dataset, engine = fresh_engine(name)
        report = BenchmarkDriver(engine, dataset, seed=7).run(num_operations=200)
        print(
            f"{name:8} {len(report.logs):>5} {report.wall_seconds:>7.2f} "
            f"{report.throughput_score(workers=1):>12.0f}"
        )

    # 2. Per-query latency of the long-running complex reads (Fig. 11 style).
    print("\nper-query mean latency (ms), 3 parameter draws each:")
    heavy = ("IC1", "IC5", "IC9")
    dataset, _ = fresh_engine("GES")
    print(f"{'query':6}" + "".join(f"{n:>10}" for n in ("GES", "GES_f", "GES_f*")))
    rows = {}
    for variant in ("GES", "GES_f", "GES_f*"):
        dataset, engine = fresh_engine(variant)
        gen = ParameterGenerator(dataset, seed=13)
        for query in heavy:
            stats = ExecStats()
            for _ in range(3):
                REGISTRY[query].fn(engine, gen.params_for(query), stats)
            rows.setdefault(query, {})[variant] = stats.total_seconds / 3 * 1e3
    for query in heavy:
        print(f"{query:6}" + "".join(f"{rows[query][v]:>10.2f}" for v in ("GES", "GES_f", "GES_f*")))

    # 3. The Table 2 effect: intermediate-result footprint per variant.
    print("\nIC9 peak intermediate bytes per variant (Table 2 style):")
    for variant in ("GES", "GES_f", "GES_f*"):
        dataset, engine = fresh_engine(variant)
        gen = ParameterGenerator(dataset, seed=13)
        stats = ExecStats()
        REGISTRY["IC9"].fn(engine, gen.params_for("IC9"), stats)
        print(f"  {variant:8} {stats.peak_intermediate_bytes:>10} B")

    # 4. Simulated multi-worker scaling (Fig. 13 substitution).
    dataset, engine = fresh_engine("GES_f*")
    report = BenchmarkDriver(engine, dataset, seed=7).run(num_operations=200)
    print("\nsimulated scaling of the measured operation stream:")
    for workers in (1, 2, 4, 8, 16):
        print(f"  {workers:>2} workers: {report.throughput_score(workers):>10.0f} ops/s")


if __name__ == "__main__":
    main()
