"""Friend and content recommendation over a generated social network.

Shows the library on the workload class the paper's introduction motivates
(recommendation engines): generate a mini LDBC SNB graph, then produce

* friend-of-friend recommendations weighted by common interests (the IC10
  pattern), and
* a personalized content feed (the IC9 pattern, served by the fused
  factorized executor).

Run:  python examples/social_recommendation.py
"""

from __future__ import annotations

from repro import GES, EngineConfig
from repro.exec.base import ExecStats
from repro.ldbc import ParameterGenerator, REGISTRY, generate
from repro.types import millis_to_datetime


def main() -> None:
    dataset = generate("SF10", seed=42)
    engine = GES(dataset.store, EngineConfig.ges_f_star())
    info = dataset.info
    print(
        f"graph: {info.num_persons} persons, {info.num_knows_pairs} friendships, "
        f"{info.num_messages} messages ({info.num_posts} posts)"
    )

    params_gen = ParameterGenerator(dataset, seed=21)

    # -- friend recommendation (IC10): friends-of-friends with birthdays in
    #    the target window, scored by common interests.
    params = params_gen.params_for("IC10")
    stats = ExecStats()
    recommendations = REGISTRY["IC10"].fn(engine, params, stats)
    print(f"\nfriend recommendations for person {params['personId']} "
          f"(birthday month {params['month']}):")
    if not recommendations:
        print("  (no candidates this month)")
    for friend_id, gender, score in recommendations[:5]:
        print(f"  person {friend_id} ({gender}), common-interest score {score:+d}")

    # -- content feed (IC9): newest messages from the two-hop neighborhood.
    params = params_gen.params_for("IC9")
    stats = ExecStats()
    feed = REGISTRY["IC9"].fn(engine, params, stats)
    print(f"\ncontent feed for person {params['personId']}:")
    for friend_id, first, last, message_id, content, date in feed[:5]:
        when = millis_to_datetime(date).date()
        preview = content[:32] + ("…" if len(content) > 32 else "")
        print(f"  {when} {first} {last} (#{friend_id}): {preview}")
    print(
        f"feed computed with peak intermediate state of "
        f"{stats.peak_intermediate_bytes} bytes "
        f"({stats.defactor_count} de-factorizations)"
    )

    # -- the same feed on the flat baseline, to see what factorization buys.
    flat_engine = GES(dataset.store, EngineConfig.ges())
    flat_stats = ExecStats()
    flat_feed = REGISTRY["IC9"].fn(flat_engine, params, flat_stats)
    assert flat_feed == feed
    ratio = flat_stats.peak_intermediate_bytes / max(stats.peak_intermediate_bytes, 1)
    print(
        f"flat executor needed {flat_stats.peak_intermediate_bytes} bytes "
        f"for the same answer — {ratio:.1f}x more"
    )


if __name__ == "__main__":
    main()
