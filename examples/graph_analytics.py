"""OLAP analytics over the social graph: influence, communities, cohesion.

The paper positions GES for OLAP workloads alongside interactive queries
(§2.2).  This example runs the vectorized analytics procedures on a
generated SNB graph and combines them with an interactive follow-up query
— the mixed workload GES is built for.

Run:  python examples/graph_analytics.py
"""

from __future__ import annotations

from repro import GES
from repro.exec.procedures import get_procedure
from repro.ldbc import generate
from repro.plan import LogicalPlan, NodeByRows, GetProperty, Project, Col
import numpy as np


def main() -> None:
    dataset = generate("SF10", seed=42)
    engine = GES(dataset.store)
    view = engine.read_view()
    print(
        f"graph: {dataset.info.num_persons} persons, "
        f"{dataset.info.num_knows_pairs} friendships"
    )

    # -- influence: PageRank over the friendship graph.
    ranks = get_procedure("pagerank")(view, {"iterations": 50})
    top = sorted(ranks.to_pylist(), key=lambda r: -r[1])[:5]
    print("\nmost influential members (PageRank):")
    top_rows = np.asarray([row for row, _ in top], dtype=np.int64)
    plan = LogicalPlan(
        [
            NodeByRows("p", "Person", "rows"),
            GetProperty("p", "firstName", "first"),
            GetProperty("p", "lastName", "last"),
            Project([("first", Col("first")), ("last", Col("last"))]),
        ],
        returns=["first", "last"],
    )
    names = engine.execute(plan, {"rows": top_rows}).rows
    for (row, rank), (first, last) in zip(top, names):
        print(f"  {first} {last} (row {row}): rank {rank:.4f}")

    # -- communities: connected components.
    components = get_procedure("connected_components")(view, {})
    sizes: dict[int, int] = {}
    for _, component in components.to_pylist():
        sizes[component] = sizes.get(component, 0) + 1
    largest = sorted(sizes.values(), reverse=True)
    print(
        f"\nconnected components: {len(sizes)} total; "
        f"largest sizes {largest[:5]}"
    )

    # -- cohesion: triangles and the degree profile.
    triangles = get_procedure("triangle_count")(view, {})
    total_triangles = sum(t for _, t in triangles.to_pylist()) // 3
    print(f"triangles in the friendship graph: {total_triangles}")

    distribution = get_procedure("degree_distribution")(view, {})
    rows = distribution.to_pylist()
    print("degree distribution (degree: persons):")
    for degree, count in rows[:8]:
        print(f"  {degree:>3}: {'#' * min(count, 50)} {count}")
    if len(rows) > 8:
        print(f"  ... {len(rows) - 8} more buckets")


if __name__ == "__main__":
    main()
