"""Quickstart: build a small property graph, query it with Cypher, and
compare the three GES executor variants.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DataType,
    EdgeLabelDef,
    EngineConfig,
    GES,
    GraphSchema,
    PropertyDef,
    VertexLabelDef,
)
from repro.engine import open_all_variants
from repro.plan import plan_summary


def build_schema() -> GraphSchema:
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "Person",
            [PropertyDef("id", DataType.INT64), PropertyDef("name", DataType.STRING)],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            "Message",
            [PropertyDef("id", DataType.INT64), PropertyDef("length", DataType.INT64)],
            primary_key="id",
        )
    )
    schema.add_edge_label(EdgeLabelDef("KNOWS", "Person", "Person"))
    schema.add_edge_label(EdgeLabelDef("HAS_CREATOR", "Message", "Person"))
    return schema


def main() -> None:
    # 1. Compose an engine (the default configuration is GES_f*, the
    #    factorized executor with operator fusion).
    ges = GES(build_schema())
    print("engine:", ges.describe()["variant"])

    # 2. Load a tiny social graph: person 0 knows 1 and 2; 1 knows 3; ...
    store = ges.store
    store.bulk_load_vertices(
        "Person",
        {"id": np.arange(5), "name": np.asarray(list("ABCDE"), dtype=object)},
    )
    store.bulk_load_vertices(
        "Message",
        {"id": np.arange(100, 106), "length": np.asarray([140, 123, 120, 200, 90, 130])},
    )
    store.bulk_load_edges(
        "KNOWS", "Person", "Person",
        np.asarray([0, 0, 1, 2, 1, 2, 3, 4]), np.asarray([1, 2, 3, 4, 0, 0, 1, 2]),
    )
    store.bulk_load_edges(
        "HAS_CREATOR", "Message", "Person",
        np.arange(6), np.asarray([1, 2, 2, 3, 4, 3]),
    )

    # 3. Ask the paper's Figure 8 question: long messages by friends within
    #    two hops, best two first.
    query = """
    MATCH (p:Person)-[:KNOWS*1..2]->(f)
    WHERE id(p) = $start
    MATCH (f)<-[:HAS_CREATOR]-(msg)
    WHERE msg.length > 125
    RETURN id(f) AS friend, id(msg) AS message, msg.length AS len
    ORDER BY len DESC, friend ASC
    LIMIT 2
    """
    print("physical plan:", plan_summary(ges.plan(query)))
    result = ges.execute(query, {"start": 0})
    for row in result:
        print("row:", row)

    # 4. The same store can back all three paper variants; they agree on
    #    results but differ in how much intermediate state they touch.
    for name, engine in open_all_variants(store).items():
        outcome = engine.execute(query, {"start": 0})
        print(
            f"{name:7s} rows={outcome.rows} "
            f"peak_intermediate={outcome.stats.peak_intermediate_bytes}B "
            f"defactor={outcome.stats.defactor_count}"
        )

    # 5. Updates run as MV2PL transactions; snapshot readers are unaffected.
    from repro.storage import VertexRef

    txn = ges.transaction()
    handle = txn.add_vertex("Person", {"id": 99, "name": "Newcomer"})
    txn.add_edge("KNOWS", handle, VertexRef("Person", 0))
    txn.commit()
    count = ges.execute("MATCH (p:Person) RETURN count(*) AS n").rows[0][0]
    print("persons after insert:", count)


if __name__ == "__main__":
    main()
