"""Fraud-style analytics: rings, mules, and burst activity.

Anti-fraud is one of the application scenarios the paper lists for GES.
This example builds a payment-flavoured graph directly against the public
schema API (no LDBC here) and runs three detector queries:

* accounts forming short transfer cycles (ring detection — the workload
  class where the factorized executor deliberately falls back to flat
  execution, as the paper discusses for cyclic patterns);
* mule candidates: accounts that receive from many distinct senders but
  forward to a single collector;
* burst detection via timestamp filters.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DataType,
    EdgeLabelDef,
    EngineConfig,
    GES,
    GraphSchema,
    PropertyDef,
    VertexLabelDef,
)
from repro.plan import (
    AggSpec,
    Aggregate,
    Col,
    Expand,
    Filter,
    GetProperty,
    InSet,
    Limit,
    LogicalPlan,
    NodeScan,
    OrderBy,
    lit,
)
from repro.storage.catalog import Direction


def build_payment_graph(num_accounts: int = 300, seed: int = 5) -> GES:
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "Account",
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("country", DataType.STRING),
                PropertyDef("riskScore", DataType.FLOAT64),
            ],
            primary_key="id",
        )
    )
    schema.add_edge_label(
        EdgeLabelDef(
            "TRANSFER",
            "Account",
            "Account",
            [PropertyDef("amount", DataType.INT64), PropertyDef("ts", DataType.TIMESTAMP)],
        )
    )
    engine = GES(schema, EngineConfig.ges_f_star())

    rng = np.random.default_rng(seed)
    countries = np.asarray(["NL", "DE", "FR", "PL", "ES"], dtype=object)
    engine.store.bulk_load_vertices(
        "Account",
        {
            "id": np.arange(num_accounts),
            "country": rng.choice(countries, size=num_accounts),
            "riskScore": rng.uniform(0, 1, size=num_accounts),
        },
    )
    # Background traffic.
    n_edges = num_accounts * 6
    src = rng.integers(0, num_accounts, n_edges)
    dst = rng.integers(0, num_accounts, n_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    amount = rng.integers(10, 5_000, len(src))
    ts = rng.integers(0, 1_000_000, len(src))
    # Planted ring: 7 -> 8 -> 9 -> 7 with large amounts in a tight window.
    ring = [(7, 8), (8, 9), (9, 7)]
    src = np.concatenate([src, [a for a, _ in ring]])
    dst = np.concatenate([dst, [b for _, b in ring]])
    amount = np.concatenate([amount, [90_000, 91_000, 92_000]])
    ts = np.concatenate([ts, [500_000, 500_100, 500_200]])
    # Planted mule: accounts 20..29 all pay account 3, which forwards to 4.
    mule_src = np.asarray(list(range(20, 30)) + [3])
    mule_dst = np.asarray([3] * 10 + [4])
    src = np.concatenate([src, mule_src])
    dst = np.concatenate([dst, mule_dst])
    amount = np.concatenate([amount, [8_000] * 10 + [79_000]])
    ts = np.concatenate([ts, np.arange(600_000, 600_011)])
    engine.store.bulk_load_edges(
        "TRANSFER", "Account", "Account", src, dst, {"amount": amount, "ts": ts}
    )
    return engine


def detect_rings(engine: GES, max_len: int = 3) -> list[tuple[int, ...]]:
    """Transfer cycles of length <= max_len via expansion + semi-join.

    The closing edge is a cycle check — exactly the pattern for which the
    factorized executor reverts to flat execution (paper §4.3).
    """
    plan = LogicalPlan(
        [
            NodeScan("a", "Account"),
            Expand("a", "b", "TRANSFER", Direction.OUT),
            Expand("b", "c", "TRANSFER", Direction.OUT),
            Expand("c", "d", "TRANSFER", Direction.OUT),
            # Cycle close: d == a requires comparing across f-Tree nodes.
            Filter(Col("d") == Col("a")),
            GetProperty("a", "id", "ida"),
            GetProperty("b", "id", "idb"),
            GetProperty("c", "id", "idc"),
            Aggregate(["ida", "idb", "idc"], [AggSpec("n", "count")]),
            OrderBy([("ida", True), ("idb", True), ("idc", True)]),
        ],
        returns=["ida", "idb", "idc"],
    )
    rows = engine.execute(plan).rows
    # Canonicalize rotations so each ring is reported once.
    rings = {tuple(min([(r[i % 3], r[(i + 1) % 3], r[(i + 2) % 3]) for i in range(3)]))
             for r in rows if len(set(r)) == 3}
    return sorted(rings)


def detect_mules(engine: GES, min_senders: int = 8) -> list[tuple[int, int]]:
    """Accounts with many distinct senders (fan-in) — classic mule shape."""
    plan = LogicalPlan(
        [
            NodeScan("a", "Account"),
            Expand("a", "s", "TRANSFER", Direction.IN),
            GetProperty("a", "id", "account"),
            Aggregate(["account"], [AggSpec("senders", "count_distinct", "s")]),
            Filter(Col("senders") >= lit(min_senders)),
            OrderBy([("senders", False), ("account", True)]),
            Limit(5),
        ],
        returns=["account", "senders"],
    )
    return engine.execute(plan).rows


def detect_bursts(engine: GES, window: tuple[int, int] = (499_000, 501_000)) -> list:
    """Large transfers inside a tight time window."""
    plan = LogicalPlan(
        [
            NodeScan("a", "Account"),
            Expand("a", "b", "TRANSFER", Direction.OUT,
                   edge_props={"amount": "amount", "ts": "ts"}),
            Filter(Col("ts") >= lit(window[0])),
            Filter(Col("ts") < lit(window[1])),
            Filter(Col("amount") > lit(50_000)),
            GetProperty("a", "id", "src"),
            GetProperty("b", "id", "dst"),
            OrderBy([("ts", True), ("src", True)]),
        ],
        returns=["src", "dst", "amount", "ts"],
    )
    return engine.execute(plan).rows


def main() -> None:
    engine = build_payment_graph()
    print("accounts:", engine.store.vertex_count, "transfers:", engine.store.edge_count)

    rings = detect_rings(engine)
    print(f"\ntransfer rings (length 3): {len(rings)} found")
    for ring in rings[:5]:
        print("  ring:", " -> ".join(str(x) for x in ring), "-> back")
    assert any(set(r) == {7, 8, 9} for r in rings), "planted ring must be found"

    mules = detect_mules(engine)
    print("\nfan-in suspects (account, distinct senders):")
    for account, senders in mules:
        print(f"  account {account}: {senders} senders")
    assert mules and mules[0][0] == 3, "planted mule must rank first"

    bursts = detect_bursts(engine)
    print("\nhigh-value burst transfers around t=500k:")
    for src, dst, amount, ts in bursts:
        print(f"  {src} -> {dst}  amount={amount}  t={ts}")


if __name__ == "__main__":
    main()
