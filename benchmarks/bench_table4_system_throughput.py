"""Table 4 — LDBC benchmark throughput against the competitor stand-in.

Same substitution as Figure 15 (see DESIGN.md): the Volcano engine embodies
the flat relational-executor architecture of the paper's six competitors.
The paper's SF1/SF10 table has GES ahead of the best competitor by large
factors; we assert GES_f* beats the Volcano baseline at both scales.
"""

from __future__ import annotations

from conftest import emit, run_driver_min

SCALES = ("SF1", "SF10")
ENGINES = ("Volcano", "GES", "GES_f", "GES_f*")
OPS = 250


def test_table4_system_throughput(benchmark):
    def sweep():
        table: dict[tuple[str, str], float] = {}
        for scale in SCALES:
            for name in ENGINES:
                report = run_driver_min(scale, name, OPS)
                table[(scale, name)] = report.throughput_score(workers=1)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "",
        "== Table 4: LDBC throughput score (ops/s) vs the flat baseline ==",
        f"{'scale':8}" + "".join(f"{name:>10}" for name in ENGINES),
    ]
    for scale in SCALES:
        lines.append(
            f"{scale:8}" + "".join(f"{table[(scale, name)]:>10.0f}" for name in ENGINES)
        )
        gap = table[(scale, "GES_f*")] / table[(scale, "Volcano")]
        lines.append(f"  GES_f* / Volcano = {gap:.1f}x")
    emit(
        lines,
        archive="table4_system_throughput.txt",
        data={
            "table": "table4",
            "throughput_ops_per_s": {
                f"{scale}/{name}": value for (scale, name), value in table.items()
            },
        },
    )

    for scale in SCALES:
        assert table[(scale, "GES_f*")] > table[(scale, "Volcano")]
