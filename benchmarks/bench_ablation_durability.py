"""Ablation — what durability costs the commit path, and that *off* is free.

Three commit paths over identical deterministic update batches:

* **off** — the default in-memory engine (``EngineConfig(durability=None)``,
  no database directory).  The durability hooks still exist on this path:
  a ``wal is None`` branch per commit plus disarmed ``crashpoint()`` calls
  in the commit/checkpoint protocol.  The budget: within 5% of the same
  loop with those hooks neutralized — durability must be pay-as-you-go.
* **batch** — WAL group commit (fsync every ``wal_batch_every`` appends):
  the bounded-loss middle ground; reported as a multiplier over *off*.
* **fsync** — an fsync per commit: the full durability guarantee, priced
  by the disk, not the engine; reported as a multiplier over *off*.

The baseline ("nohooks") replaces the commit path's ``crashpoint`` with a
no-op lambda, reconstructing the pre-durability commit loop on today's
code.  A/B runs interleave with per-scenario minima so OS noise cancels.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from pathlib import Path

from conftest import emit

from repro import GES, EngineConfig
from repro.obs.clock import now
from repro.testkit.graphgen import fuzz_schema, random_graph_spec, store_from_spec
from repro.testkit.querygen import UpdateGenerator
from repro.txn import transaction as txn_module

SEED = 7
BATCHES = 60
REPEATS = 5
SCENARIOS = ("nohooks", "off", "batch", "fsync")


def _batches(schema, spec):
    generator = UpdateGenerator(
        schema, random.Random(f"{SEED}:durability:updates"), spec, "quick"
    )
    return [generator.batch() for _ in range(BATCHES)]


def _config(mode: str | None) -> EngineConfig:
    return EngineConfig.ges(
        metrics=False, flight_recorder=0, durability=mode, wal_batch_every=8
    )


def _timed_apply(engine, batches) -> float:
    manager = engine.txn_manager
    start = now()
    for batch in batches:
        batch.apply(manager)
    return now() - start


def _run_scenario(scenario: str, spec, batches, workdir: Path) -> float:
    """One timed pass: fresh store (and db dir for durable modes)."""
    store = store_from_spec(spec)
    if scenario in ("nohooks", "off"):
        engine = GES(store, _config(None))
        if scenario == "nohooks":
            real = txn_module.crashpoint
            txn_module.crashpoint = lambda site: None
            try:
                return _timed_apply(engine, batches)
            finally:
                txn_module.crashpoint = real
        return _timed_apply(engine, batches)
    db = workdir / f"db-{scenario}"
    if db.exists():
        shutil.rmtree(db)
    engine = GES.open(db, config=_config(scenario), schema=store)
    try:
        return _timed_apply(engine, batches)
    finally:
        engine.close()


def run_ablation() -> dict[str, float]:
    """Interleaved minima: {scenario: best seconds for the batch suite}."""
    schema = fuzz_schema()
    spec = random_graph_spec(
        random.Random(f"{SEED}:durability:graph"), schema, "quick", seed=SEED
    )
    batches = _batches(schema, spec)
    best: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="ges-bench-durability-") as tdir:
        workdir = Path(tdir)
        for scenario in SCENARIOS:  # warm-up pass, untimed ranking
            _run_scenario(scenario, spec, batches, workdir)
        for repeat in range(REPEATS):
            order = SCENARIOS if repeat % 2 == 0 else tuple(reversed(SCENARIOS))
            for scenario in order:
                seconds = _run_scenario(scenario, spec, batches, workdir)
                if scenario not in best or seconds < best[scenario]:
                    best[scenario] = seconds
    return best


def test_ablation_durability(benchmark):
    best = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    baseline = best["nohooks"]
    off_overhead = best["off"] / baseline - 1
    batch_x = best["batch"] / best["off"]
    fsync_x = best["fsync"] / best["off"]

    per_commit_us = {
        name: seconds / BATCHES * 1e6 for name, seconds in best.items()
    }
    lines = [
        "",
        f"== Ablation: durability ({BATCHES} update batches, min over "
        f"{REPEATS} interleaved runs) ==",
        f"{'path':8} {'total ms':>10} {'us/commit':>11} {'vs off':>8}",
    ]
    for name in SCENARIOS:
        lines.append(
            f"{name:8} {best[name] * 1e3:>10.2f} {per_commit_us[name]:>11.1f} "
            f"{best[name] / best['off']:>8.2f}x"
        )
    lines.append(
        f"durability-off overhead vs no-hooks baseline: "
        f"{off_overhead * 100:+.1f}% (gate < 5%); "
        f"batch {batch_x:.1f}x, fsync {fsync_x:.1f}x over off"
    )
    emit(
        lines,
        archive="ablation_durability.txt",
        data={
            "seed": SEED,
            "batches": BATCHES,
            "repeats": REPEATS,
            "seconds": best,
            "per_commit_us": per_commit_us,
            "off_overhead_fraction": off_overhead,
            "batch_multiplier": batch_x,
            "fsync_multiplier": fsync_x,
        },
    )

    assert off_overhead < 0.05, (
        f"the durability-off commit path must be free — a `wal is None` "
        f"branch and disarmed crashpoints, nothing more; measured "
        f"{off_overhead * 100:+.1f}% over the no-hooks baseline"
    )
