"""Table 2 — peak intermediate-result memory per IC query per variant.

The paper's central memory result: the factorized executor cuts the
intermediate footprint by >90% on the expansion-heavy queries (IC1, IC2,
IC5, IC6, IC9, IC14-class), while queries whose plans force full
materialization — cyclic/multi-node patterns (IC3, IC10) and the
stored-procedure IC13 — see (near-)zero reduction.  We regenerate the full
table with reduction ratios and assert that split.
"""

from __future__ import annotations

from conftest import (
    IC_QUERIES,
    VARIANTS,
    dataset_for,
    emit,
    fmt_bytes,
    make_engine,
    measure_query,
    params_for,
)

SCALES = ("SF10", "SF100", "SF300")
DRAWS = 3
HIGH_REDUCTION = ("IC1", "IC2", "IC5", "IC6", "IC9")
LOW_REDUCTION = ("IC3", "IC10", "IC13")


def test_table2_memory_footprint(benchmark):
    def sweep():
        table: dict[tuple[str, str, str], int] = {}
        for scale in SCALES:
            dataset = dataset_for(scale)
            engines = {v: make_engine(dataset.store, v) for v in VARIANTS}
            for name in IC_QUERIES:
                params = params_for(dataset, name, DRAWS)
                for variant, engine in engines.items():
                    _, peak = measure_query(engine, name, params)
                    table[(scale, name, variant)] = peak
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["", "== Table 2: peak intermediate bytes and reduction ratio (R.R.) =="]
    ratios: dict[tuple[str, str], float] = {}
    for scale in SCALES:
        lines.append(f"-- {scale} --")
        lines.append(
            f"{'query':6}{'GES':>12}{'GES_f':>12}{'GES_f*':>12}{'R.R.':>8}"
        )
        for name in IC_QUERIES:
            flat = table[(scale, name, "GES")]
            fact = table[(scale, name, "GES_f")]
            fused = table[(scale, name, "GES_f*")]
            ratio = 1 - fused / flat if flat else 0.0
            ratios[(scale, name)] = ratio
            lines.append(
                f"{name:6}{fmt_bytes(flat):>12}{fmt_bytes(fact):>12}"
                f"{fmt_bytes(fused):>12}{ratio * 100:>7.1f}%"
            )
    emit(
        lines,
        archive="table2_memory.txt",
        data={
            "table": "table2",
            "peak_bytes": {
                f"{scale}/{name}/{variant}": value
                for (scale, name, variant), value in table.items()
            },
            "reduction_ratio": {
                f"{scale}/{name}": value for (scale, name), value in ratios.items()
            },
        },
    )

    # Paper shape on the largest scale: big reductions for the
    # factorization-friendly queries, ~none where flat fallback is forced.
    for name in HIGH_REDUCTION:
        assert ratios[("SF300", name)] >= 0.6, (name, ratios[("SF300", name)])
    for name in LOW_REDUCTION:
        assert ratios[("SF300", name)] <= 0.45, (name, ratios[("SF300", name)])
    # Factorized never does worse than flat on the high-reduction set.
    for name in HIGH_REDUCTION:
        assert table[("SF300", name, "GES_f")] <= table[("SF300", name, "GES")]
