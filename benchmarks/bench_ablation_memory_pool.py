"""Ablation — the copy-on-write memory pool (paper §5).

The paper's engine uses a memory pool "reducing the overhead caused by
frequent memory allocation and deallocation" for copy-on-write snapshots.
We churn vertex snapshots through the transaction layer with pooling
enabled vs a pool that never caches, and report the hit rate and timing.
"""

from __future__ import annotations

from repro.obs.clock import now

from conftest import emit
from repro.ldbc import generate
from repro.storage.memory_pool import MemoryPool
from repro.txn.snapshot import SnapshotOverlay, VertexSnapshot

CYCLES = 3000


def churn(pool: MemoryPool, table) -> float:
    overlay = SnapshotOverlay(pool)
    started = now()
    for i in range(CYCLES):
        snapshot = VertexSnapshot(table, i % len(table), pool)
        overlay.record(snapshot, commit_version=i + 1)
        if i % 50 == 49:
            overlay.prune(before_version=i + 1)  # releases buffers to the pool
    return (now() - started) * 1e3


def test_ablation_memory_pool(benchmark):
    dataset = generate("SF10", seed=42)
    table = dataset.store.table("Person")

    def run():
        pooled = MemoryPool()
        pooled_ms = churn(pooled, table)
        unpooled = MemoryPool(max_buffers_per_class=0)  # caches nothing
        unpooled_ms = churn(unpooled, table)
        return pooled_ms, unpooled_ms, pooled.hit_rate

    pooled_ms, unpooled_ms, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "",
        f"== Ablation: memory pool ({CYCLES} copy-on-write snapshot cycles) ==",
        f"{'pooled':10}{pooled_ms:>10.1f} ms   hit rate {hit_rate * 100:.1f}%",
        f"{'unpooled':10}{unpooled_ms:>10.1f} ms   hit rate 0.0%",
    ]
    emit(
        lines,
        archive="ablation_memory_pool.txt",
        data={
            "cycles": CYCLES,
            "pooled_ms": pooled_ms,
            "unpooled_ms": unpooled_ms,
            "hit_rate": hit_rate,
        },
    )

    assert hit_rate > 0.5, "steady-state snapshot churn should mostly hit the pool"
    assert pooled_ms <= unpooled_ms * 1.5
