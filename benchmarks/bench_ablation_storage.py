"""Ablation — validity-bitmap column store vs the sentinel-era layout.

Three A/Bs over one synthetic 256k-row table, isolating what the storage
overhaul buys beyond correctness:

* **filtered scan** — zone-map-pruned ``FilteredNodeScan`` (consult
  per-block min/max, gather only candidate blocks) vs the dense
  scan + gather + filter it replaced;
* **NULL masking** — reusing the stored validity bitmap vs re-deriving
  NULLness by comparing every value against the int64-min sentinel, the
  per-operator cost the old convention paid on each aggregate/filter;
* **dictionary strings** — memory footprint of a low-cardinality STRING
  column dictionary-encoded (int32 codes + unique values) vs one Python
  object pointer per row.
"""

from __future__ import annotations

import random

import numpy as np

from conftest import emit
from repro.obs.clock import now
from repro.exec.flat import execute_flat
from repro.plan.expressions import Col, lit
from repro.plan.logical import Filter, GetProperty, LogicalPlan, NodeScan
from repro.plan.optimizer import optimize
from repro.storage.catalog import GraphSchema, PropertyDef, VertexLabelDef
from repro.storage.graph import GraphStore
from repro.storage.properties import PropertyColumn
from repro.storage.validity import ZONE_BLOCK_ROWS
from repro.types import NULL_INT, DataType

ROWS = 256 * ZONE_BLOCK_ROWS
ROUNDS = 5
#: The predicate only matches inside the last of 16 value bands, so a
#: perfect zone map skips ~15/16 of all blocks.
BANDS = 16


def _build_store() -> GraphStore:
    rng = random.Random(11)
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "N",
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("v", DataType.INT64),
                PropertyDef("tag", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    store = GraphStore(schema)
    band = ROWS // BANDS
    values = [
        None if rng.random() < 0.05 else (i // band) * 1000 + rng.randint(0, 900)
        for i in range(ROWS)
    ]
    tags = [rng.choice(["alpha", "beta", "gamma", "delta"]) for i in range(ROWS)]
    store.bulk_load_vertices(
        "N", {"id": list(range(ROWS)), "v": values, "tag": tags}
    )
    return store


def test_ablation_storage(benchmark):
    store = _build_store()
    view = store.read_view()
    threshold = (BANDS - 1) * 1000 + 800

    raw = LogicalPlan(
        [NodeScan("a", "N"), GetProperty("a", "v", "v"), Filter(Col("v") > lit(threshold))],
        returns=["a", "v"],
    )
    pruned = optimize(raw, rules=None)
    column = store.table("N").column("v")
    column.zone_map()  # build summaries outside the timed region

    def run():
        timings: dict[str, float] = {}

        started = now()
        for _ in range(ROUNDS):
            dense = execute_flat(raw, view)
        timings["dense scan+filter"] = (now() - started) / ROUNDS * 1e3

        zmap = column.zone_map()
        skipped_before, total_before = zmap.blocks_skipped, zmap.blocks_total
        started = now()
        for _ in range(ROUNDS):
            zoned = execute_flat(pruned, view)
        timings["zone-map scan"] = (now() - started) / ROUNDS * 1e3
        assert sorted(zoned.rows) == sorted(dense.rows)
        skip_rate = (zmap.blocks_skipped - skipped_before) / max(
            zmap.blocks_total - total_before, 1
        )

        values = column.view()
        validity = column.validity_mask()
        started = now()
        for _ in range(ROUNDS * 4):
            sentinel_mask = values != NULL_INT
        timings["sentinel re-derive"] = (now() - started) / (ROUNDS * 4) * 1e3
        started = now()
        for _ in range(ROUNDS * 4):
            bitmap_mask = validity if validity is not None else None
        timings["bitmap reuse"] = (now() - started) / (ROUNDS * 4) * 1e3
        assert bitmap_mask is not None
        # The sentinel compare also *miscounts* any legitimate int64-min.
        assert int((~sentinel_mask).sum()) == int((~bitmap_mask).sum())

        return timings, skip_rate

    (timings, skip_rate) = benchmark.pedantic(run, rounds=1, iterations=1)

    encoded = store.table("N").column("tag")
    plain = PropertyColumn("tag", DataType.STRING, capacity=ROWS)
    plain.extend(encoded.view().tolist())
    dict_ratio = plain.nbytes / encoded.nbytes

    speedup = timings["dense scan+filter"] / timings["zone-map scan"]
    lines = [
        "",
        f"== Ablation: validity-bitmap storage ({ROWS} rows, {BANDS} value bands) ==",
        f"{'mode':22}{'time ms':>10}",
        f"{'dense scan+filter':22}{timings['dense scan+filter']:>10.2f}",
        f"{'zone-map scan':22}{timings['zone-map scan']:>10.2f}",
        f"zone-map speedup: {speedup:.1f}x (block skip rate {skip_rate:.0%})",
        f"{'sentinel re-derive':22}{timings['sentinel re-derive']:>10.3f}",
        f"{'bitmap reuse':22}{timings['bitmap reuse']:>10.3f}",
        f"dictionary encoding: {dict_ratio:.1f}x smaller "
        f"({encoded.nbytes >> 10} KiB vs {plain.nbytes >> 10} KiB)",
    ]
    emit(
        lines,
        archive="ablation_storage.txt",
        data={
            "rows": ROWS,
            "dense_ms": timings["dense scan+filter"],
            "zone_map_ms": timings["zone-map scan"],
            "zone_map_speedup": speedup,
            "block_skip_rate": skip_rate,
            "sentinel_mask_ms": timings["sentinel re-derive"],
            "bitmap_mask_ms": timings["bitmap reuse"],
            "dict_compression": dict_ratio,
        },
    )
