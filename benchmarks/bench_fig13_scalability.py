"""Figure 13 — throughput vs number of workers (1..64).

The paper scales vCPUs from 1 to 64 and sees near-linear throughput growth
that tapers on the smaller graphs.  GIL-bound Python cannot scale threads,
so per DESIGN.md this experiment measures real single-worker service times
and replays the operation stream through the discrete-event N-server
simulation of the Runtime component.
"""

from __future__ import annotations

from conftest import emit, make_engine
from repro.ldbc import BenchmarkDriver, generate

WORKER_COUNTS = (1, 2, 4, 8, 16, 32, 64)
SCALES = ("SF10", "SF100")
OPS = 300


def test_fig13_scalability(benchmark):
    def sweep():
        table: dict[tuple[str, int], float] = {}
        for scale in SCALES:
            dataset = generate(scale, seed=42)
            engine = make_engine(dataset.store, "GES_f*")
            report = BenchmarkDriver(engine, dataset, seed=7).run(OPS)
            for workers in WORKER_COUNTS:
                table[(scale, workers)] = report.throughput_score(workers)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "",
        "== Figure 13: GES_f* throughput (ops/s) vs simulated workers ==",
        f"{'workers':>8}" + "".join(f"{scale:>12}" for scale in SCALES),
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"{workers:>8}" + "".join(f"{table[(scale, workers)]:>12.0f}" for scale in SCALES)
        )
    for scale in SCALES:
        speedup = table[(scale, 64)] / table[(scale, 1)]
        lines.append(f"{scale}: 64-worker speedup over 1 worker = {speedup:.1f}x")
    lines.append(
        "note: single-worker scores are throttled by head-of-line blocking "
        "behind long queries (the audit is start-delay based), so low "
        "worker counts scale super-linearly; the paper's taper at high "
        "counts comes from network/disk limits the simulation omits"
    )
    emit(
        lines,
        archive="fig13_scalability.txt",
        data={
            "figure": "fig13",
            "variant": "GES_f*",
            "ops": OPS,
            "throughput_ops_per_s": {
                f"{scale}/{workers}": table[(scale, workers)]
                for scale, workers in table
            },
        },
    )

    for scale in SCALES:
        # Monotone scaling with a substantial multi-worker win.
        values = [table[(scale, w)] for w in WORKER_COUNTS]
        assert all(a <= b * 1.05 for a, b in zip(values, values[1:]))
        assert values[-1] / values[0] >= 8
