"""Ablation — vectorized expansion kernels (paper §5, Vectorization).

The paper leverages SIMD over the column-oriented f-Blocks; this
reproduction's equivalent is the single-pass NumPy adjMeta gather in
``expand_util._vectorized_single_hop``.  We compare it against the
tuple-at-a-time fallback loop (used when tombstones/versions force exact
per-source visibility checks) on the same expansion.
"""

from __future__ import annotations

from repro.obs.clock import now

import numpy as np

from conftest import dataset_for, emit
from repro.exec.expand_util import _single_hop_chunks, _vectorized_single_hop
from repro.storage.catalog import AdjacencyKey, Direction

ROUNDS = 5
KEY = AdjacencyKey("Person", "HAS_CREATOR", "Message", Direction.IN)


def test_ablation_vectorization(benchmark):
    dataset = dataset_for("SF300")
    view = dataset.store.read_view()
    sources = view.all_rows("Person")

    def run():
        timings = {}
        started = now()
        for _ in range(ROUNDS):
            vectorized = _vectorized_single_hop(view, KEY, sources, {})
        timings["vectorized"] = (now() - started) / ROUNDS * 1e3

        started = now()
        for _ in range(ROUNDS):
            counts, chunks, _ = _single_hop_chunks(view, [KEY], sources, {})
            looped = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        timings["per-source loop"] = (now() - started) / ROUNDS * 1e3
        assert looped.tolist() == vectorized.neighbors.tolist()
        assert counts.tolist() == vectorized.counts.tolist()
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = timings["per-source loop"] / timings["vectorized"]
    lines = [
        "",
        "== Ablation: vectorized expansion (Person->Message, SF300, "
        f"{len(sources)} sources) ==",
        f"{'mode':16}{'time ms':>10}",
        f"{'vectorized':16}{timings['vectorized']:>10.2f}",
        f"{'per-source loop':16}{timings['per-source loop']:>10.2f}",
        f"vectorization speedup: {speedup:.1f}x",
    ]
    emit(
        lines,
        archive="ablation_vectorization.txt",
        data={
            "scale": "SF300",
            "rounds": ROUNDS,
            "sources": len(sources),
            "vectorized_ms": timings["vectorized"],
            "per_source_loop_ms": timings["per-source loop"],
            "speedup": speedup,
        },
    )

    assert speedup > 2
