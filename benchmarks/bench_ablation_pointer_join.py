"""Ablation — pointer-based join (paper §5).

Compares the same single-hop Expand with the pointer-based lazy neighbor
column (the default fast path) against a forced eager materialization of
neighbor ids, on both time and intermediate footprint.  The paper claims
the (pointer, size) representation "dramatically accelerates the join
processing"; the footprint side is the starker effect here: 16 bytes per
source instead of 8 bytes per neighbor.
"""

from __future__ import annotations

from repro.obs.clock import now

from conftest import dataset_for, emit
from repro.core.lazy import LazyNeighborColumn
from repro.exec.base import ExecStats, ExecutionContext
from repro.exec.factorized import PipelineState, dispatch_factorized
from repro.plan import Expand, LogicalPlan, NodeScan, resolve_labels
from repro.storage.catalog import Direction

ROUNDS = 5


def expand_pipeline(dataset, force_eager: bool):
    """Person -> authored messages over the whole person table."""
    ops = [
        NodeScan("p", "Person"),
        Expand("p", "m", "HAS_CREATOR", Direction.IN, to_label="Message"),
    ]
    plan = LogicalPlan(ops)
    view = dataset.store.read_view()
    ctx = ExecutionContext(view, {})
    ctx.var_labels = resolve_labels(plan, view.schema)
    state = PipelineState()
    for op in ops:
        dispatch_factorized(state, op, ctx)
    column = state.tree.node_of("m").block.column("m")
    assert isinstance(column, LazyNeighborColumn)
    if force_eager:
        column.values()  # materialize, as a non-pointer join would
    return state.tree.nbytes


def test_ablation_pointer_join(benchmark):
    dataset = dataset_for("SF300")

    def run():
        timings = {}
        footprints = {}
        for mode, eager in (("pointer", False), ("eager", True)):
            started = now()
            for _ in range(ROUNDS):
                footprints[mode] = expand_pipeline(dataset, force_eager=eager)
            timings[mode] = (now() - started) / ROUNDS * 1e3
        return timings, footprints

    timings, footprints = benchmark.pedantic(run, rounds=1, iterations=1)

    reduction = 1 - footprints["pointer"] / footprints["eager"]
    lines = [
        "",
        "== Ablation: pointer-based join (Expand Person->Message, SF300) ==",
        f"{'mode':10}{'time ms':>10}{'tree bytes':>12}",
        f"{'pointer':10}{timings['pointer']:>10.2f}{footprints['pointer']:>12}",
        f"{'eager':10}{timings['eager']:>10.2f}{footprints['eager']:>12}",
        f"intermediate-size reduction from pointer join: {reduction * 100:.1f}%",
    ]
    emit(
        lines,
        archive="ablation_pointer_join.txt",
        data={
            "scale": "SF300",
            "rounds": ROUNDS,
            "pointer": {"time_ms": timings["pointer"], "tree_bytes": footprints["pointer"]},
            "eager": {"time_ms": timings["eager"], "tree_bytes": footprints["eager"]},
            "size_reduction": reduction,
        },
    )

    assert footprints["pointer"] < footprints["eager"]
    assert timings["pointer"] <= timings["eager"] * 1.2
