"""Ablation — shared-memory worker pool vs in-process execution.

The ``full`` perf workload's read queries (14 IC + 7 IS, SF10) run on the
production ``GES_f*`` config in-process and through worker pools of
1/2/4/8 processes (``EngineConfig(workers=N)``), interleaved so drift
hits every configuration equally.  Reported per configuration: aggregate
closed-loop ops/s, per-query p50s, and the speedup over in-process.

Honesty rules: the machine fingerprint (CPU count included) is printed
and archived next to the numbers, because pool speedups are a *hardware*
claim — on a single-core container the pool can only add IPC overhead,
and this bench reports that slowdown rather than hiding it.  The ≥1.6x
speedup target at 4 workers is asserted only when the machine actually
has ≥4 cores.  Every pooled configuration must route through the pool
(``pooled_queries > 0``) with zero silent fallbacks, so an in-process
fallback path can never masquerade as pool throughput.

Results are archived under ``results/`` and appended to
``BENCH_trajectory.json`` under the workload identity
``parallel-ablation`` — a different (name, version, scale) key from
``full``, so the regression gate never mixes pooled cells into the
in-process noise bands.

Standalone use (the CI ``parallel-smoke`` job)::

    python benchmarks/bench_ablation_parallel.py --workers 2 [--json]
"""

from __future__ import annotations

import os
from datetime import datetime, timezone

from conftest import emit
from repro import GES, EngineConfig
from repro.exec.base import ExecStats
from repro.ldbc import ParameterGenerator, generate
from repro.ldbc.queries import REGISTRY
from repro.obs.clock import now, wall_time
from repro.perf.recorder import _cell_stats, git_sha, machine_fingerprint
from repro.perf.trajectory import TRAJECTORY_SCHEMA_VERSION, append_record
from repro.perf.workload import WORKLOADS

SPEC = WORKLOADS["full"]  # pins graph (scale+seed), param seed, read queries
WORKER_COUNTS = (1, 2, 4, 8)
WARMUP = 1
REPEATS = 3
DRAWS = 2
SPEEDUP_TARGET = 1.6  # at 4 workers, on machines with >= 4 cores


def _label(workers: int | None) -> str:
    return "GES_f*" if workers is None else f"GES_f*+pool{workers}"


def run_ablation(worker_counts=WORKER_COUNTS):
    """Measure the read workload across configurations; return the results.

    Returns ``(results, routing)``: per-configuration sample/aggregate
    dicts keyed by label, and each pooled engine's routing counters.
    """
    dataset = generate(SPEC.scale, seed=SPEC.seed)
    gen = ParameterGenerator(dataset, seed=SPEC.param_seed)
    read_params = {
        q: [gen.params_for(q) for _ in range(DRAWS)] for q in SPEC.read_queries
    }

    configs: dict[str, int | None] = {_label(None): None}
    configs.update({_label(w): w for w in worker_counts})
    engines = {
        label: GES(
            dataset.store,
            EngineConfig.ges_f_star()
            if workers is None
            else EngineConfig.ges_f_star(workers=workers),
        )
        for label, workers in configs.items()
    }
    samples: dict[tuple[str, str], list[float]] = {}
    totals = {label: {"ops": 0, "seconds": 0.0, "peak": 0} for label in configs}

    try:
        for rep in range(WARMUP + REPEATS):
            measured = rep >= WARMUP
            for query in SPEC.read_queries:
                fn = REGISTRY[query].fn
                for label, engine in engines.items():
                    for draw in range(DRAWS):
                        stats = ExecStats()
                        started = now()
                        fn(engine, dict(read_params[query][draw]), stats)
                        elapsed = now() - started
                        if measured:
                            samples.setdefault((label, query), []).append(elapsed)
                            totals[label]["ops"] += 1
                            totals[label]["seconds"] += elapsed
                        totals[label]["peak"] = max(
                            totals[label]["peak"], stats.peak_intermediate_bytes
                        )
        routing = {
            label: engine.parallel.describe()
            for label, engine in engines.items()
            if getattr(engine, "parallel", None) is not None
        }
    finally:
        for engine in engines.values():
            engine.close()

    results = {
        label: {
            "queries": {
                q: _cell_stats(samples[(label, q)]) for q in SPEC.read_queries
            },
            "ops_per_second": (
                totals[label]["ops"] / totals[label]["seconds"]
                if totals[label]["seconds"] > 0
                else 0.0
            ),
            "plan_cache_hit_rate": None,
            "compression_ratio": None,
            "peak_fblock_bytes": int(totals[label]["peak"]),
        }
        for label in configs
    }
    return results, routing


def _record(results: dict, elapsed: float) -> dict:
    """One trajectory record under the ``parallel-ablation`` identity."""
    return {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "workload": {
            "name": "parallel-ablation",
            "version": 1,
            "scale": SPEC.scale,
            "seed": SPEC.seed,
            "param_seed": SPEC.param_seed,
            "warmup": WARMUP,
            "repeats": REPEATS,
            "draws": DRAWS,
            "read_queries": list(SPEC.read_queries),
            "update_queries": [],
            "variants": sorted(results),
        },
        "recorded_at": datetime.fromtimestamp(
            wall_time(), tz=timezone.utc
        ).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "machine": machine_fingerprint(),
        "injected_slowdowns": {},
        "elapsed_seconds": elapsed,
        "variants": results,
    }


def report(results: dict, routing: dict, elapsed: float) -> None:
    """Emit the paper-style table, archive results, append the trajectory."""
    machine = machine_fingerprint()
    base = _label(None)
    base_ops = results[base]["ops_per_second"]
    lines = [
        "",
        f"== Ablation: worker pool (GES_f*, {SPEC.scale}, "
        f"{len(SPEC.read_queries)} read queries x {REPEATS} repeats "
        f"x {DRAWS} draws) ==",
        f"machine: {machine['cpu_count']} core(s), {machine['platform']} "
        f"[{machine['fingerprint']}]",
        f"{'config':16}{'agg ops/s':>12}{'speedup':>9}{'scatter':>9}"
        f"{'whole':>7}{'fallbacks':>11}",
    ]
    data_rows = {}
    for label, block in results.items():
        ops = block["ops_per_second"]
        route = routing.get(label)
        lines.append(
            f"{label:16}{ops:>12.1f}{ops / base_ops:>8.2f}x"
            + (
                f"{route['scatter_queries']:>9}{route['whole_queries']:>7}"
                f"{route['fallbacks']:>11}"
                if route is not None
                else f"{'—':>9}{'—':>7}{'—':>11}"
            )
        )
        data_rows[label] = {
            "ops_per_second": ops,
            "speedup_vs_inprocess": ops / base_ops,
            "routing": route,
        }
    if machine["cpu_count"] < 4:
        lines.append(
            f"NOTE: {machine['cpu_count']} core(s) — worker processes time-slice "
            f"one CPU, so the pool can only add IPC overhead here; the "
            f"{SPEEDUP_TARGET}x@4-workers target needs >=4 cores"
        )
    emit(
        lines,
        archive="ablation_parallel.txt",
        data={
            "scale": SPEC.scale,
            "read_queries": list(SPEC.read_queries),
            "warmup": WARMUP,
            "repeats": REPEATS,
            "draws": DRAWS,
            "machine": machine,
            "configs": data_rows,
        },
    )
    path = append_record(_record(results, elapsed))
    emit(f"trajectory record appended (parallel-ablation v1) -> {path}")


def _check(results: dict, routing: dict) -> None:
    """The honesty assertions shared by pytest and standalone runs."""
    for label, route in routing.items():
        assert route["pooled_queries"] > 0, f"{label} never used its pool"
        assert route["fallbacks"] == 0, (
            f"{label} silently fell back in-process {route['fallbacks']} time(s)"
        )
    four = _label(4)
    if (os.cpu_count() or 1) >= 4 and four in results:
        speedup = results[four]["ops_per_second"] / results[_label(None)][
            "ops_per_second"
        ]
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >={SPEEDUP_TARGET}x at 4 workers on a "
            f"{os.cpu_count()}-core machine, got {speedup:.2f}x"
        )


def test_ablation_parallel(benchmark):
    started = now()
    results, routing = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(results, routing, now() - started)
    _check(results, routing)


if __name__ == "__main__":
    import argparse

    import conftest

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        action="append",
        help="pool size(s) to measure against in-process (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--json", action="store_true", help="also archive results/*.json"
    )
    args = parser.parse_args()
    conftest._JSON_ENABLED = args.json
    run_started = now()
    run_results, run_routing = run_ablation(tuple(args.workers or WORKER_COUNTS))
    report(run_results, run_routing, now() - run_started)
    _check(run_results, run_routing)
