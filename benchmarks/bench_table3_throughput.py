"""Table 3 — overall LDBC throughput of the three GES variants.

The paper reports GES_f at ~4x and GES_f* at ~16-17x the baseline's
benchmark throughput, driven almost entirely by the collapse of the
long-running IC latencies.  Pure-Python mini-scale compresses that effect
(the interpreter's per-operation floor dominates the short operations that
make up most of the mix — see DESIGN.md), so this bench reports two rows:

* the full-mix TCR throughput score, where the variants land within noise
  of each other at mini scale (asserted only to stay comparable), and
* the long-running-IC mean service time, where the factorization win that
  *produces* the paper's throughput gap is directly visible and asserted.
"""

from __future__ import annotations

import numpy as np

from conftest import dataset_for, emit, make_engine, measure_query, params_for, run_driver_min

SCALES = ("SF10", "SF100")
OPS = 250
HEAVY = ("IC1", "IC5")
VARIANTS = ("GES", "GES_f", "GES_f*")


def test_table3_variant_throughput(benchmark):
    def sweep():
        scores: dict[tuple[str, str], float] = {}
        for scale in SCALES:
            for variant in VARIANTS:
                report = run_driver_min(scale, variant, OPS)
                scores[(scale, variant)] = report.throughput_score(workers=1)
        heavy: dict[str, float] = {}
        dataset = dataset_for("SF300")
        for variant in VARIANTS:
            engine = make_engine(dataset.store, variant)
            total = 0.0
            for name in HEAVY:
                mean_a, _ = measure_query(engine, name, params_for(dataset, name, 3))
                mean_b, _ = measure_query(engine, name, params_for(dataset, name, 3))
                total += min(mean_a, mean_b)
            heavy[variant] = total
        return scores, heavy

    scores, heavy = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "",
        "== Table 3: LDBC throughput score (ops/s, 1 worker) per variant ==",
        f"{'scale':8}{'GES':>10}{'GES_f':>10}{'x':>6}{'GES_f*':>10}{'x':>6}",
    ]
    for scale in SCALES:
        base = scores[(scale, "GES")]
        fact = scores[(scale, "GES_f")]
        fused = scores[(scale, "GES_f*")]
        lines.append(
            f"{scale:8}{base:>10.0f}{fact:>10.0f}{fact / base:>6.2f}"
            f"{fused:>10.0f}{fused / base:>6.2f}"
        )
    speedup_f = heavy["GES"] / heavy["GES_f"]
    speedup_fused = heavy["GES"] / heavy["GES_f*"]
    lines += [
        f"long-running IC (IC1+IC5) mean service on SF300: "
        f"GES {heavy['GES'] * 1e3:.1f} ms, GES_f {heavy['GES_f'] * 1e3:.1f} ms "
        f"({speedup_f:.2f}x), GES_f* {heavy['GES_f*'] * 1e3:.1f} ms ({speedup_fused:.2f}x)",
        "note: paper reports 4x/16x overall on SF10-SF300 hardware; the "
        "pure-Python per-operation floor compresses the mixed-workload gap "
        "(see DESIGN.md and EXPERIMENTS.md)",
    ]
    emit(
        lines,
        archive="table3_throughput.txt",
        data={
            "table": "table3",
            "throughput_ops_per_s": {
                f"{scale}/{variant}": value for (scale, variant), value in scores.items()
            },
            "heavy_ic_mean_seconds": heavy,
        },
    )

    # Mini-scale shape: the mixed-workload scores stay comparable...
    for scale in SCALES:
        assert scores[(scale, "GES_f*")] >= 0.6 * scores[(scale, "GES")]
    # ...while the long-running IC class — the driver of the paper's
    # throughput gap — clearly favours the factorized executors.
    assert speedup_fused >= 1.2
