"""Figure 2 — total and average runtime of each IC query on SF100.

The paper runs the flat baseline single-core and shows that a handful of
long-running queries (IC5, IC9, IC14 class) dominate total runtime by
orders of magnitude.  We regenerate the same per-query profile and assert
the headline observation: the costliest query takes >=20x the cheapest.
"""

from __future__ import annotations

from conftest import dataset_for, emit, make_engine, measure_query, params_for, IC_QUERIES

DRAWS = 4


def test_fig02_query_runtimes(benchmark):
    dataset = dataset_for("SF100")
    engine = make_engine(dataset.store, "GES")

    def sweep():
        rows = {}
        for name in IC_QUERIES:
            params = params_for(dataset, name, DRAWS)
            mean_seconds, _ = measure_query(engine, name, params)
            rows[name] = (mean_seconds * DRAWS, mean_seconds)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "",
        "== Figure 2: IC query runtimes on SF100 (GES flat baseline, 1 core) ==",
        f"{'query':6} {'total ms':>10} {'avg ms':>10}",
    ]
    for name in IC_QUERIES:
        total, avg = rows[name]
        lines.append(f"{name:6} {total * 1e3:>10.2f} {avg * 1e3:>10.2f}")
    averages = [rows[name][1] for name in IC_QUERIES]
    spread = max(averages) / max(min(averages), 1e-9)
    lines.append(f"max/min average runtime spread: {spread:.0f}x")
    emit(
        lines,
        archive="fig02_query_runtimes.txt",
        data={
            "figure": "fig02",
            "variant": "GES",
            "scale": "SF100",
            "queries": {
                name: {"total_ms": rows[name][0] * 1e3, "avg_ms": rows[name][1] * 1e3}
                for name in IC_QUERIES
            },
            "spread": spread,
        },
    )

    # Paper shape: a few long-running queries dominate by a wide margin.
    assert spread >= 20
