"""Figure 11 — average IC latency for GES / GES_f / GES_f* across scales.

The paper's ablation shows the factorized executor (and fusion on top)
winning on the long-running, expansion-heavy queries, with gains growing
with graph size, while short queries see little change ("the optimization
achieved through factorization alone may be less pronounced" on small
inputs).  We regenerate the full query x variant x scale grid and assert
the headline shape on the long-running set.
"""

from __future__ import annotations

from conftest import (
    IC_QUERIES,
    VARIANTS,
    dataset_for,
    emit,
    make_engine,
    measure_query,
    params_for,
)

SCALES = ("SF10", "SF30", "SF100", "SF300")
DRAWS = 3
#: Queries the paper calls out as the big factorization winners.
LONG_RUNNING = ("IC1", "IC5")


def test_fig11_latency_ablation(benchmark):
    def sweep():
        table: dict[tuple[str, str, str], float] = {}
        for scale in SCALES:
            dataset = dataset_for(scale)
            engines = {v: make_engine(dataset.store, v) for v in VARIANTS}
            for name in IC_QUERIES:
                params = params_for(dataset, name, DRAWS)
                for variant, engine in engines.items():
                    mean_seconds, _ = measure_query(engine, name, params)
                    table[(scale, name, variant)] = mean_seconds * 1e3
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["", "== Figure 11: average IC latency (ms) per variant =="]
    for scale in SCALES:
        lines.append(f"-- {scale} --")
        lines.append(f"{'query':6}" + "".join(f"{v:>10}" for v in VARIANTS))
        for name in IC_QUERIES:
            lines.append(
                f"{name:6}"
                + "".join(f"{table[(scale, name, v)]:>10.2f}" for v in VARIANTS)
            )
    for scale in ("SF100", "SF300"):
        for name in LONG_RUNNING:
            speedup = table[(scale, name, "GES")] / table[(scale, name, "GES_f*")]
            lines.append(f"{name} on {scale}: GES_f* speedup over GES = {speedup:.2f}x")
    emit(
        lines,
        archive="fig11_latency_ablation.txt",
        data={
            "figure": "fig11",
            "scales": list(SCALES),
            "latency_ms": {
                f"{scale}/{name}/{variant}": table[(scale, name, variant)]
                for scale, name, variant in table
            },
        },
    )

    # Paper shape: on the larger graphs the fused factorized executor wins
    # the long-running queries.
    for scale in ("SF100", "SF300"):
        for name in LONG_RUNNING:
            assert table[(scale, name, "GES_f*")] < table[(scale, name, "GES")], (
                scale, name,
            )
