"""Figure 15 — per-query latency against competitor-class systems.

The paper compares against six systems whose executors process tuples in a
flat relational manner (Neo4j, PostgreSQL, GraphDB, AgensGraph, TigerGraph,
TuGraph); GES_f* wins IC queries by up to three orders of magnitude.  Those
systems cannot run offline, so per DESIGN.md the comparison runs against
the in-repo Volcano engine — a faithful tuple-at-a-time implementation of
that architecture executing the identical plans — plus the GES variants.
"""

from __future__ import annotations

from conftest import (
    IC_QUERIES,
    dataset_for,
    emit,
    make_engine,
    measure_query,
    params_for,
)
from repro.exec.base import ExecStats
from repro.ldbc import REGISTRY, ParameterGenerator, generate
from repro.obs.clock import now

ENGINES = ("Volcano", "GES", "GES_f", "GES_f*")
SCALES = ("SF1", "SF10")
DRAWS = 3
HEAVY = ("IC3", "IC5", "IC6", "IC9")
IS_QUERIES = [f"IS{i}" for i in range(1, 8)]
IU_QUERIES = [f"IU{i}" for i in range(1, 9)]


def _measure_updates(scale: str) -> dict[tuple[str, str], float]:
    """IU latencies need a fresh (mutable) store per engine."""
    out: dict[tuple[str, str], float] = {}
    for name in ENGINES:
        dataset = generate(scale, seed=42)
        engine = make_engine(dataset.store, name)
        gen = ParameterGenerator(dataset, seed=13)
        for query in IU_QUERIES:
            stats = ExecStats()
            started = now()
            for _ in range(DRAWS):
                REGISTRY[query].fn(engine, gen.params_for(query), stats)
            out[(query, name)] = (now() - started) / DRAWS * 1e3
    return out


def test_fig15_system_latency(benchmark):
    def sweep():
        table: dict[tuple[str, str, str], float] = {}
        for scale in SCALES:
            dataset = dataset_for(scale)
            engines = {name: make_engine(dataset.store, name) for name in ENGINES}
            for query in IC_QUERIES + IS_QUERIES:
                params = params_for(dataset, query, DRAWS)
                for name, engine in engines.items():
                    mean_seconds, _ = measure_query(engine, query, params)
                    table[(scale, query, name)] = mean_seconds * 1e3
        for (query, name), latency in _measure_updates("SF10").items():
            table[("SF10", query, name)] = latency
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["", "== Figure 15: latency (ms) vs the tuple-at-a-time baseline =="]
    for scale in SCALES:
        lines.append(f"-- {scale} (IC / IS) --")
        lines.append(f"{'query':6}" + "".join(f"{name:>10}" for name in ENGINES))
        for query in IC_QUERIES + IS_QUERIES:
            lines.append(
                f"{query:6}"
                + "".join(f"{table[(scale, query, name)]:>10.2f}" for name in ENGINES)
            )
    lines.append("-- SF10 (IU, fresh store per engine) --")
    lines.append(f"{'query':6}" + "".join(f"{name:>10}" for name in ENGINES))
    for query in IU_QUERIES:
        lines.append(
            f"{query:6}"
            + "".join(f"{table[('SF10', query, name)]:>10.2f}" for name in ENGINES)
        )
    for query in HEAVY:
        gap = table[("SF10", query, "Volcano")] / table[("SF10", query, "GES_f*")]
        lines.append(f"{query} on SF10: GES_f* is {gap:.1f}x faster than Volcano")
    emit(
        lines,
        archive="fig15_system_latency.txt",
        data={
            "figure": "fig15",
            "engines": list(ENGINES),
            "latency_ms": {
                f"{scale}/{query}/{name}": value
                for (scale, query, name), value in table.items()
            },
        },
    )

    # Paper shape: the flat tuple-at-a-time architecture loses the heavy
    # complex reads by a wide margin.
    for query in HEAVY:
        assert (
            table[("SF10", query, "GES_f*")] < table[("SF10", query, "Volcano")] / 2
        ), query
