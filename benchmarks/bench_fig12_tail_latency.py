"""Figure 12 — P99 / P99.9 tail latency on SF300.

The paper shows GES_f and GES_f* dramatically cutting the extreme latency
spikes of the flat executor on the long-running queries (IC5 dropping from
>2000 ms to <20 ms).  We measure per-draw latency distributions on the
largest mini scale and assert the tail of the fused variant beats the flat
baseline on the flagship queries.
"""

from __future__ import annotations

import numpy as np

from conftest import VARIANTS, dataset_for, emit, make_engine, params_for
from repro.exec.base import ExecStats
from repro.ldbc import REGISTRY
from repro.obs.clock import now

QUERIES = ("IC1", "IC2", "IC5", "IC6", "IC9", "IC11")
DRAWS = 12


def test_fig12_tail_latency(benchmark):
    dataset = dataset_for("SF300")
    engines = {v: make_engine(dataset.store, v) for v in VARIANTS}

    def sweep():
        table: dict[tuple[str, str], np.ndarray] = {}
        for name in QUERIES:
            params_list = params_for(dataset, name, DRAWS)
            for variant, engine in engines.items():
                samples = []
                for params in params_list:
                    started = now()
                    REGISTRY[name].fn(engine, params, ExecStats())
                    samples.append(now() - started)
                table[(name, variant)] = np.asarray(samples)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "",
        "== Figure 12: tail latency on SF300 (ms; P99/P99.9 over "
        f"{DRAWS} parameter draws) ==",
        f"{'query':6}" + "".join(f"{v + ' p99':>14}{v + ' p99.9':>14}" for v in VARIANTS),
    ]
    p99 = {}
    for name in QUERIES:
        cells = ""
        for variant in VARIANTS:
            samples = table[(name, variant)] * 1e3
            p99[(name, variant)] = float(np.percentile(samples, 99))
            cells += f"{np.percentile(samples, 99):>14.2f}{np.percentile(samples, 99.9):>14.2f}"
        lines.append(f"{name:6}{cells}")
    emit(
        lines,
        archive="fig12_tail_latency.txt",
        data={
            "figure": "fig12",
            "scale": "SF300",
            "draws": DRAWS,
            "p99_ms": {f"{name}/{variant}": value for (name, variant), value in p99.items()},
        },
    )

    # Paper shape: the fused variant tames the tail of the flagship
    # long-running queries.
    assert p99[("IC1", "GES_f*")] < p99[("IC1", "GES")]
    assert p99[("IC5", "GES_f*")] < p99[("IC5", "GES")]
