"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index).  Paper-style
tables are emitted to the real stdout (so they appear even under pytest's
capture) and archived under ``results/``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import GES, EngineConfig
from repro.baselines import VolcanoEngine
from repro.exec.base import ExecStats
from repro.ldbc import ParameterGenerator, REGISTRY, generate
from repro.obs.clock import now

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Set by ``pytest_configure`` when the run was invoked with ``--json``;
#: ``emit(..., data=...)`` then archives machine-readable results too.
_JSON_ENABLED = False


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--json",
        action="store_true",
        default=False,
        help="also archive each benchmark's results as JSON under results/",
    )


def pytest_configure(config: pytest.Config) -> None:
    global _JSON_ENABLED
    _JSON_ENABLED = bool(config.getoption("--json", default=False))

IC_QUERIES = [f"IC{i}" for i in range(1, 15)]
VARIANTS = ("GES", "GES_f", "GES_f*")


def make_engine(store, variant: str):
    if variant == "Volcano":
        return VolcanoEngine(store)
    config = {
        "GES": EngineConfig.ges(),
        "GES_f": EngineConfig.ges_f(),
        "GES_f*": EngineConfig.ges_f_star(),
    }[variant]
    return GES(store, config)


_DATASETS: dict[str, object] = {}


def dataset_for(scale: str):
    """Session-cached read-only dataset per scale factor."""
    if scale not in _DATASETS:
        _DATASETS[scale] = generate(scale, seed=42)
    return _DATASETS[scale]


def emit(
    lines: str | list[str],
    archive: str | None = None,
    data: dict | list | None = None,
) -> None:
    """Print paper-style output past pytest's capture; archive to results/.

    When the run was invoked with ``--json`` and *data* is given, the same
    results are also written machine-readable to ``results/<archive>.json``
    (harness consumers parse that instead of the paper-style table).

    Every archived table should carry ``data=`` — a bench that archives
    text only leaves a hole in the machine-readable record, so that case
    warns to stderr instead of passing silently.
    """
    text = lines if isinstance(lines, str) else "\n".join(lines)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    if archive is not None:
        if data is None:
            print(
                f"WARNING: emit(archive={archive!r}) without data= — "
                "no machine-readable results/*.json will be written for it",
                file=sys.stderr,
            )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / archive
        with open(path, "a") as handle:
            handle.write(text + "\n")
        if _JSON_ENABLED and data is not None:
            json_path = path.with_suffix(".json")
            with open(json_path, "w") as handle:
                json.dump(data, handle, indent=2, default=float)
                handle.write("\n")


def measure_query(engine, name: str, params_list) -> tuple[float, int]:
    """(mean seconds, peak intermediate bytes) over the parameter draws."""
    total = 0.0
    peak = 0
    for params in params_list:
        stats = ExecStats()
        started = now()
        REGISTRY[name].fn(engine, params, stats)
        total += now() - started
        peak = max(peak, stats.peak_intermediate_bytes)
    return total / len(params_list), peak


def params_for(dataset, name: str, draws: int, seed: int = 13):
    gen = ParameterGenerator(dataset, seed=seed)
    return [gen.params_for(name) for _ in range(draws)]


def fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f} KB"
    return f"{n} B"


def run_driver_min(scale: str, variant: str, num_operations: int, seed: int = 7, repeats: int = 2):
    """Benchmark-driver run with per-operation minimum service times over
    *repeats* identical runs (fresh store each time, since updates mutate).

    The TCR throughput score is tail-sensitive, so one OS-scheduler hiccup
    lands straight in the score; per-op minima over repeated identical runs
    suppress that measurement noise without touching the workload.
    """
    from repro.ldbc import BenchmarkDriver

    reports = []
    for _ in range(repeats):
        dataset = generate(scale, seed=42)
        engine = make_engine(dataset.store, variant)
        reports.append(BenchmarkDriver(engine, dataset, seed=seed).run(num_operations))
    combined = reports[0]
    for other in reports[1:]:
        for log, candidate in zip(combined.logs, other.logs):
            if candidate.service_seconds < log.service_seconds:
                log.service_seconds = candidate.service_seconds
    return combined


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_banner():
    RESULTS_DIR.mkdir(exist_ok=True)
    yield
