"""Ablation — the resilience layer's query-path overhead when armed.

Watchdog deadlines, admission control, and the retry wrapper all sit on
``GES.execute``: the deadline is checked at every operator boundary and
at strided chunk boundaries inside expansion/enumeration loops, and
admission takes a lock-protected slot around each query.

Two costs matter, with different budgets:

* **disabled** (the default config) must be free — the resilience guards
  are ``x is not None`` checks that keep the pre-existing fast path
  byte-for-byte, and the perf trajectory gate (PR 4) holds that path to
  its recorded baseline (<2% drift);
* **armed** (deadline + retry + admission configured, none firing) pays a
  few microseconds of fixed cost per query — measured here as the
  armed/disarmed total-runtime ratio over the figure-2 IC set, with an
  assert sized for CI noise (the interleaved minima land around +1-3% on
  sub-millisecond SF1 queries, i.e. ~4 us fixed per call, with
  run-to-run noise of the same magnitude).

We run the full IC set armed vs disarmed, interleaved with per-query
minima over several repeats, and report both per-query ratios and the
total.
"""

from __future__ import annotations

from conftest import IC_QUERIES, dataset_for, emit, make_engine, measure_query, params_for
from repro import GES, EngineConfig

SCALE = "SF1"
DRAWS = 3
REPEATS = 8

#: Armed-but-never-firing: a deadline far above any IC runtime, a retry
#: policy that only engages on retryable errors, and admission limits the
#: single-threaded sweep never reaches.
ARMED = dict(
    query_timeout_ms=60_000.0,
    retry_attempts=3,
    max_concurrent_queries=8,
    admission_queue_limit=16,
    memory_budget_bytes=1 << 30,
)


def run_ablation():
    """Interleaved armed/disarmed repeats: {armed: {query: min seconds}}."""
    dataset = dataset_for(SCALE)
    engines = {
        True: GES(dataset.store, EngineConfig.ges_f_star(**ARMED)),
        False: make_engine(dataset.store, "GES_f*"),
    }
    params = {name: params_for(dataset, name, DRAWS) for name in IC_QUERIES}
    for engine in engines.values():  # warm plan caches out of the timings
        for name in IC_QUERIES:
            measure_query(engine, name, params[name][:1])
    best: dict[bool, dict[str, float]] = {True: {}, False: {}}
    # Interleave per query, alternating order each repeat: system noise
    # drifts on the ~100 ms scale, so back-to-back armed/off pairs see the
    # same conditions and the minima compare like for like.
    for name in IC_QUERIES:
        for repeat in range(REPEATS):
            order = (True, False) if repeat % 2 == 0 else (False, True)
            for armed in order:
                mean_seconds, _ = measure_query(engines[armed], name, params[name])
                previous = best[armed].get(name)
                if previous is None or mean_seconds < previous:
                    best[armed][name] = mean_seconds
    return best


def test_ablation_resilience(benchmark):
    best = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on_s = sum(best[True].values())
    off_s = sum(best[False].values())
    overhead = on_s / off_s - 1

    lines = [
        "",
        f"== Ablation: resilience layer ({SCALE}, IC set, min over "
        f"{REPEATS} runs x {DRAWS} draws) ==",
        f"{'query':6} {'armed ms':>10} {'off ms':>10} {'ratio':>8}",
    ]
    for name in IC_QUERIES:
        on_ms = best[True][name] * 1e3
        off_ms = best[False][name] * 1e3
        lines.append(
            f"{name:6} {on_ms:>10.3f} {off_ms:>10.3f} "
            f"{on_ms / max(off_ms, 1e-9):>8.3f}"
        )
    lines.append(
        f"total: {on_s * 1e3:.2f} ms armed vs {off_s * 1e3:.2f} ms off "
        f"-> armed overhead {overhead * 100:+.1f}% (gate < 8%)"
    )
    emit(
        lines,
        archive="ablation_resilience.txt",
        data={
            "scale": SCALE,
            "draws": DRAWS,
            "repeats": REPEATS,
            "armed": ARMED,
            "queries": {
                name: {
                    "armed_ms": best[True][name] * 1e3,
                    "off_ms": best[False][name] * 1e3,
                }
                for name in IC_QUERIES
            },
            "armed_total_ms": on_s * 1e3,
            "off_total_ms": off_s * 1e3,
            "overhead_fraction": overhead,
        },
    )

    assert overhead < 0.08, (
        f"armed resilience costs a few us per query (~1-3% on SF1's "
        f"sub-ms queries, with run-to-run noise of the same size); "
        f"measured {overhead * 100:+.1f}% breaks the noise-adjusted 8% "
        f"gate — the per-row (unstrided) deadline ticking this guards "
        f"against measured +6-10%"
    )
