"""Ablation — the AggregateProjectTop fusion (paper §4.3).

The same IC5-style aggregation (count posts per forum, top-k) executed

* unfused on the factorized executor: Aggregate forces de-factoring into a
  flat block and a block-based hash aggregation; vs
* fused (AggregateTopK): direct index-vector counting on the f-Tree, no
  tuple ever enumerated.

This isolates exactly what the paper's IC5 column in Table 2 attributes to
fusion (435 MB -> 1.6 KB there).
"""

from __future__ import annotations

from repro.obs.clock import now

import numpy as np

from conftest import dataset_for, emit
from repro.exec.base import ExecStats
from repro.exec.factorized import execute_factorized
from repro.plan import (
    AggSpec,
    Aggregate,
    AggregateTopK,
    Expand,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeScan,
    OrderBy,
)
from repro.storage.catalog import Direction

ROUNDS = 5
TOP = 20


def plans():
    base = [
        NodeScan("forum", "Forum"),
        GetProperty("forum", "id", "forumId"),
        Expand("forum", "msg", "CONTAINER_OF", Direction.OUT, to_label="Message"),
    ]
    unfused = LogicalPlan(
        base
        + [
            Aggregate(["forumId"], [AggSpec("posts", "count")]),
            OrderBy([("posts", False), ("forumId", True)]),
            Limit(TOP),
        ],
        returns=["forumId", "posts"],
    )
    fused = LogicalPlan(
        base
        + [
            AggregateTopK(
                ["forumId"], [AggSpec("posts", "count")],
                [("posts", False), ("forumId", True)], TOP,
            )
        ],
        returns=["forumId", "posts"],
    )
    return unfused, fused


def test_ablation_fused_aggregation(benchmark):
    dataset = dataset_for("SF300")
    view = dataset.store.read_view()
    unfused, fused = plans()

    def run():
        out = {}
        for mode, plan in (("unfused", unfused), ("fused", fused)):
            stats = ExecStats()
            started = now()
            for _ in range(ROUNDS):
                rows = execute_factorized(plan, view, {}, stats).rows
            out[mode] = (
                (now() - started) / ROUNDS * 1e3,
                stats.peak_intermediate_bytes,
                rows,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["unfused"][2] == out["fused"][2], "fusion must preserve results"

    reduction = 1 - out["fused"][1] / out["unfused"][1]
    lines = [
        "",
        "== Ablation: AggregateProjectTop fusion (posts per forum, SF300) ==",
        f"{'mode':10}{'time ms':>10}{'peak bytes':>12}",
        f"{'unfused':10}{out['unfused'][0]:>10.2f}{out['unfused'][1]:>12}",
        f"{'fused':10}{out['fused'][0]:>10.2f}{out['fused'][1]:>12}",
        f"peak-intermediate reduction from fusion: {reduction * 100:.1f}%",
    ]
    emit(
        lines,
        archive="ablation_fused_aggregation.txt",
        data={
            "scale": "SF300",
            "rounds": ROUNDS,
            "top_k": TOP,
            "unfused": {"time_ms": out["unfused"][0], "peak_bytes": out["unfused"][1]},
            "fused": {"time_ms": out["fused"][0], "peak_bytes": out["fused"][1]},
            "peak_reduction": reduction,
        },
    )

    assert out["fused"][1] < out["unfused"][1]
    assert out["fused"][0] < out["unfused"][0] * 1.1
