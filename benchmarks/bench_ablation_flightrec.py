"""Ablation — the always-on flight recorder's query-path overhead.

The flight recorder (``obs.flightrec``) runs on every ``GES.execute``
call: it copies the operator sequence tuple and appends one record object
to a bounded ring.  Serialization is deferred to dump time, so the
query-path cost must stay inside the <5% overhead budget that makes
"always-on" honest.  We run the same LDBC driver stream with the recorder
enabled (default ring of 64) vs disabled (``flight_recorder=0``),
interleaved with per-operation minima, and report the service-time ratio.
"""

from __future__ import annotations

from conftest import emit
from repro import GES, EngineConfig
from repro.ldbc import BenchmarkDriver, generate

SCALE = "SF1"
OPS = 200
REPEATS = 5


def _min_combine(reports):
    combined = reports[0]
    for other in reports[1:]:
        for log, candidate in zip(combined.logs, other.logs):
            if candidate.service_seconds < log.service_seconds:
                log.service_seconds = candidate.service_seconds
    return combined


def run_ablation():
    """Interleaved on/off repeats over identical streams: {enabled: report}."""
    reports: dict[bool, list] = {True: [], False: []}
    rings: dict[str, int] = {}
    for repeat in range(REPEATS):
        order = (True, False) if repeat % 2 == 0 else (False, True)
        for enabled in order:
            dataset = generate(SCALE, seed=42)
            engine = GES(
                dataset.store,
                EngineConfig.ges_f_star(flight_recorder=64 if enabled else 0),
            )
            reports[enabled].append(
                BenchmarkDriver(engine, dataset, seed=7).run(OPS)
            )
            if enabled:
                rings = {
                    "recorded": engine.flight.recorded,
                    "retained": len(engine.flight.recent),
                    "slow": len(engine.flight.slow),
                }
    return {on: _min_combine(reports[on]) for on in (True, False)}, rings


def mean_service_ms(report) -> float:
    return sum(log.service_seconds for log in report.logs) / len(report.logs) * 1e3


def test_ablation_flightrec(benchmark):
    reports, rings = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on_ms = mean_service_ms(reports[True])
    off_ms = mean_service_ms(reports[False])
    overhead = on_ms / off_ms - 1

    lines = [
        "",
        f"== Ablation: flight recorder ({SCALE}, {OPS}-op LDBC stream, "
        f"min over {REPEATS} runs) ==",
        f"{'recorder on':14}{on_ms:>10.3f} ms mean service",
        f"{'recorder off':14}{off_ms:>10.3f} ms mean service",
        f"overhead: {overhead * 100:+.1f}% (budget < 5%)",
        f"ring after stream: {rings['recorded']} recorded, "
        f"{rings['retained']} retained, {rings['slow']} slow",
    ]
    emit(
        lines,
        archive="ablation_flightrec.txt",
        data={
            "scale": SCALE,
            "ops": OPS,
            "repeats": REPEATS,
            "on_mean_service_ms": on_ms,
            "off_mean_service_ms": off_ms,
            "overhead_fraction": overhead,
            "ring": rings,
        },
    )

    # IU operations apply through the write path, not execute(), so the
    # recorded count tracks read queries — not the full op count.
    assert rings["recorded"] > 0, "the stream's reads must be recorded"
    assert rings["retained"] == min(64, rings["recorded"])
    assert overhead < 0.05, (
        f"flight recorder must stay inside the 5% budget (measured "
        f"{overhead * 100:+.1f}%)"
    )
