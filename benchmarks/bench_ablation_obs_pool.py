"""Ablation — cross-process observability shipping on the pooled path.

With ``config.metrics`` on, every pooled task carries an ``obs`` payload
back from the worker: task timing, a counter-delta dict, and the drained
event ring (``repro.parallel.pool.run_task``).  With it off, the reply
is exactly what it was before the observability substrate existed.  The
shipping must stay inside the same <5% overhead budget as the rest of
the observability stack (flight recorder, metrics), because "pooled
execution is as observable as in-process" is only honest if nobody is
tempted to turn it off.

We run the same LDBC driver stream on a 2-worker pooled engine with
observability shipping enabled vs disabled, interleaved with
per-operation minima, and report the service-time ratio.  Tracing stays
off in both legs — span capture is opt-in per query (EXPLAIN ANALYZE)
and is not part of the always-on budget.
"""

from __future__ import annotations

from conftest import emit
from repro import GES, EngineConfig
from repro.ldbc import BenchmarkDriver, generate

SCALE = "SF1"
OPS = 200
REPEATS = 5
WORKERS = 2


def _min_combine(reports):
    combined = reports[0]
    for other in reports[1:]:
        for log, candidate in zip(combined.logs, other.logs):
            if candidate.service_seconds < log.service_seconds:
                log.service_seconds = candidate.service_seconds
    return combined


def run_ablation():
    """Interleaved on/off repeats over identical streams: {enabled: report}."""
    reports: dict[bool, list] = {True: [], False: []}
    routing: dict[str, int] = {}
    for repeat in range(REPEATS):
        order = (True, False) if repeat % 2 == 0 else (False, True)
        for enabled in order:
            dataset = generate(SCALE, seed=42)
            engine = GES(
                dataset.store,
                EngineConfig.ges_f_star(workers=WORKERS, metrics=enabled),
            )
            try:
                reports[enabled].append(
                    BenchmarkDriver(engine, dataset, seed=7).run(OPS)
                )
                if enabled:
                    routing = dict(engine.parallel.describe())
            finally:
                engine.close()
    return {on: _min_combine(reports[on]) for on in (True, False)}, routing


def mean_service_ms(report) -> float:
    return sum(log.service_seconds for log in report.logs) / len(report.logs) * 1e3


def test_ablation_obs_pool(benchmark):
    reports, routing = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on_ms = mean_service_ms(reports[True])
    off_ms = mean_service_ms(reports[False])
    overhead = on_ms / off_ms - 1

    lines = [
        "",
        f"== Ablation: pooled observability shipping ({SCALE}, {OPS}-op "
        f"LDBC stream, {WORKERS} workers, min over {REPEATS} runs) ==",
        f"{'shipping on':14}{on_ms:>10.3f} ms mean service",
        f"{'shipping off':14}{off_ms:>10.3f} ms mean service",
        f"overhead: {overhead * 100:+.1f}% (budget < 5%)",
        f"routing: {routing.get('pooled_queries', 0)} pooled "
        f"({routing.get('scatter_queries', 0)} scatter, "
        f"{routing.get('whole_queries', 0)} whole), "
        f"{routing.get('fallbacks', 0)} fallbacks",
    ]
    emit(
        lines,
        archive="ablation_obs_pool.txt",
        data={
            "scale": SCALE,
            "ops": OPS,
            "repeats": REPEATS,
            "workers": WORKERS,
            "on_mean_service_ms": on_ms,
            "off_mean_service_ms": off_ms,
            "overhead_fraction": overhead,
            "routing": routing,
        },
    )

    # The ablation is vacuous unless the stream actually pooled.
    assert routing.get("pooled_queries", 0) > 0, (
        "the instrumented leg must route queries through the pool"
    )
    assert overhead < 0.05, (
        f"pooled observability shipping must stay inside the 5% budget "
        f"(measured {overhead * 100:+.1f}%)"
    )
