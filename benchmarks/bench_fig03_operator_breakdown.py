"""Figure 3 — operator-level runtime breakdown of long-running queries.

The paper profiles the flat executor and finds the Expand operator
dominates ("accounting for nearly half of the total execution time"), with
Select/Project contributing much of the rest.  We reproduce the per-operator
breakdown on the same query class and assert Expand is the single most
expensive operator overall.
"""

from __future__ import annotations

from conftest import dataset_for, emit, make_engine, params_for
from repro.exec.base import ExecStats
from repro.ldbc import REGISTRY

LONG_RUNNING = ("IC1", "IC3", "IC5", "IC6", "IC9")
DRAWS = 4


def test_fig03_operator_breakdown(benchmark):
    dataset = dataset_for("SF100")
    engine = make_engine(dataset.store, "GES")

    def profile():
        per_query: dict[str, dict[str, float]] = {}
        for name in LONG_RUNNING:
            stats = ExecStats()
            for params in params_for(dataset, name, DRAWS):
                REGISTRY[name].fn(engine, params, stats)
            per_query[name] = dict(stats.op_times)
        return per_query

    per_query = benchmark.pedantic(profile, rounds=1, iterations=1)

    lines = ["", "== Figure 3: operator-level breakdown (GES flat, SF100) =="]
    overall: dict[str, float] = {}
    for name, op_times in per_query.items():
        total = sum(op_times.values())
        top = sorted(op_times.items(), key=lambda kv: -kv[1])[:4]
        shares = "  ".join(f"{op}={seconds / total * 100:4.1f}%" for op, seconds in top)
        lines.append(f"{name:5} {shares}")
        for op, seconds in op_times.items():
            overall[op] = overall.get(op, 0.0) + seconds
    total = sum(overall.values())
    dominant = max(overall, key=lambda op: overall[op])
    lines.append(
        f"overall dominant operator: {dominant} "
        f"({overall[dominant] / total * 100:.1f}% of operator time)"
    )
    emit(
        lines,
        archive="fig03_operator_breakdown.txt",
        data={
            "figure": "fig03",
            "variant": "GES",
            "scale": "SF100",
            "per_query_op_seconds": per_query,
            "dominant_operator": dominant,
            "dominant_share": overall[dominant] / total,
        },
    )

    # Paper shape: Expand dominates the flat executor's runtime.
    assert dominant in ("Expand", "VertexExpand")
    assert overall[dominant] / total >= 0.3
