"""Ablation — the parameterized query plan cache.

The LDBC workload is a fixed set of parameterized templates fired over and
over, so after warmup every compile should be a cache hit and the
parse/bind/optimize pipeline drops out of the service time.  We run the
full driver mix (IC/IS/IU) with the cache on vs off — steady state, i.e.
after one read-only warmup stream has populated the cache — and report
service times, the compile-time share, and the cache counters.

The cold first stream is also reported: the structural fingerprint of a
template costs more than one fusion-optimizer pass, so the cache only pays
for itself once each template has been hit a handful of times.  That
break-even is exactly the production regime the cache targets (a service
process compiles each template once, then serves it for hours).
"""

from __future__ import annotations

from conftest import emit
from repro import GES, EngineConfig
from repro.ldbc import BenchmarkDriver, generate

SCALE = "SF1"
OPS = 200
REPEATS = 5


def _min_combine(reports):
    """Per-operation minima over identical runs (see conftest.run_driver_min)."""
    combined = reports[0]
    for other in reports[1:]:
        for log, candidate in zip(combined.logs, other.logs):
            if candidate.service_seconds < log.service_seconds:
                log.service_seconds = candidate.service_seconds
                log.compile_seconds = candidate.compile_seconds
    return combined


def run_ablation():
    """Interleaved cache-on/off repeats: ({config: (cold, steady)}, cache stats).

    Every repeat uses a fresh store (IU operations mutate it) and a fresh
    engine, warmed by one read-only stream before the measured run.  The
    two configurations alternate (in alternating order) so that process
    warm-up drift — which is larger than the compile-time signal — lands
    on both sides equally before the per-op minima are taken.
    """
    cold: dict[bool, list] = {True: [], False: []}
    steady: dict[bool, list] = {True: [], False: []}
    cache_stats: dict = {}
    for repeat in range(REPEATS):
        order = (True, False) if repeat % 2 == 0 else (False, True)
        for plan_cache in order:
            dataset = generate(SCALE, seed=42)
            engine = GES(
                dataset.store, EngineConfig.ges_f_star(plan_cache=plan_cache)
            )
            cold[plan_cache].append(
                BenchmarkDriver(
                    engine, dataset, seed=7, include_updates=False
                ).run(OPS)
            )
            steady[plan_cache].append(BenchmarkDriver(engine, dataset, seed=7).run(OPS))
            if plan_cache:
                cache_stats = engine.plan_cache.describe()
    return {
        pc: (_min_combine(cold[pc]), _min_combine(steady[pc])) for pc in (True, False)
    }, cache_stats


def mean_service_ms(report) -> float:
    return sum(log.service_seconds for log in report.logs) / len(report.logs) * 1e3


def test_ablation_plan_cache(benchmark):
    reports, cache_on = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    cold_on, on = reports[True]
    cold_off, off = reports[False]

    lines = [
        "",
        f"== Ablation: plan cache (GES_f*, {SCALE}, {OPS}-op LDBC stream, "
        f"min over {REPEATS} runs) ==",
        f"{'':12}{'mean svc':>10}{'compile total':>16}{'share':>8}{'hit rate':>10}",
        f"{'cache on':12}{mean_service_ms(on):>8.3f} ms"
        f"{on.compile_seconds * 1e3:>13.2f} ms{on.compile_fraction * 100:>7.1f}%"
        f"{on.plan_cache_hit_rate * 100:>9.1f}%",
        f"{'cache off':12}{mean_service_ms(off):>8.3f} ms"
        f"{off.compile_seconds * 1e3:>13.2f} ms{off.compile_fraction * 100:>7.1f}%"
        f"{'—':>10}",
        f"cold first stream: hit rate {cold_on.plan_cache_hit_rate * 100:.1f}% "
        f"(one miss per template), compile {cold_on.compile_seconds * 1e3:.2f} ms "
        f"vs {cold_off.compile_seconds * 1e3:.2f} ms uncached",
        f"cache: {cache_on['size']}/{cache_on['capacity']} entries, "
        f"{cache_on['hits']} hits / {cache_on['misses']} misses, "
        f"{cache_on['evictions']} evictions",
    ]
    emit(
        lines,
        archive="ablation_plan_cache.txt",
        data={
            "scale": SCALE,
            "ops": OPS,
            "repeats": REPEATS,
            "cache_on": {
                "mean_service_ms": mean_service_ms(on),
                "compile_ms": on.compile_seconds * 1e3,
                "compile_fraction": on.compile_fraction,
                "hit_rate": on.plan_cache_hit_rate,
            },
            "cache_off": {
                "mean_service_ms": mean_service_ms(off),
                "compile_ms": off.compile_seconds * 1e3,
                "compile_fraction": off.compile_fraction,
            },
            "cold_first_stream": {
                "hit_rate": cold_on.plan_cache_hit_rate,
                "compile_ms_cached": cold_on.compile_seconds * 1e3,
                "compile_ms_uncached": cold_off.compile_seconds * 1e3,
            },
            "cache": cache_on,
        },
    )

    assert on.plan_cache_hit_rate >= 0.9, "steady-state stream must mostly hit"
    assert on.compile_seconds < off.compile_seconds, (
        "cache hits must be cheaper than re-optimizing every template"
    )
    assert mean_service_ms(on) < mean_service_ms(off), (
        "steady-state service time must improve with the plan cache"
    )
