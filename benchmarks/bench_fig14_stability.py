"""Figure 14 — throughput stability over a full benchmark run (SF300).

The paper plots IC/IS/IU/overall completed-operations-per-second over the
two-hour run and observes stable rates with minor fluctuations.  We replay
the measured SF300 operation stream at 70% of the audited rate and check
the windowed overall throughput stays stable (low coefficient of
variation) across the run.
"""

from __future__ import annotations

import numpy as np

from conftest import emit, make_engine
from repro.ldbc import BenchmarkDriver, generate

OPS = 400
WORKERS = 4


def test_fig14_stability_trace(benchmark):
    def run():
        dataset = generate("SF300", seed=42)
        engine = make_engine(dataset.store, "GES_f*")
        report = BenchmarkDriver(engine, dataset, seed=7).run(OPS)
        rate = report.throughput_score(WORKERS) * 0.7
        horizon = OPS / rate
        trace = report.throughput_trace(rate, WORKERS, window_seconds=horizon / 12)
        return trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", "== Figure 14: windowed throughput trace on SF300 (ops/s) =="]
    header = f"{'window':>7}" + "".join(f"{cat:>9}" for cat in sorted(trace))
    lines.append(header)
    num_windows = len(next(iter(trace.values()))[0])
    for i in range(num_windows):
        row = f"{i:>7}"
        for cat in sorted(trace):
            row += f"{trace[cat][1][i]:>9.1f}"
        lines.append(row)

    # Stability metric over the steady-state interior windows.
    _, overall = trace["ALL"]
    interior = overall[1:-1][overall[1:-1] > 0]
    cv = float(np.std(interior) / np.mean(interior)) if len(interior) else 0.0
    lines.append(f"coefficient of variation (interior windows): {cv:.2f}")
    emit(
        lines,
        archive="fig14_stability.txt",
        data={
            "figure": "fig14",
            "variant": "GES_f*",
            "scale": "SF300",
            "windowed_ops_per_s": {cat: list(trace[cat][1]) for cat in sorted(trace)},
            "coefficient_of_variation": cv,
        },
    )

    assert cv < 0.6, "throughput trace should be stable over the run"
    # All three operation categories keep completing throughout.
    for cat in ("IC", "IS", "IU"):
        assert trace[cat][1].sum() > 0
