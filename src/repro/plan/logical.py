"""Logical operator pipeline — the IR handed from the frontend/optimizer to
the executors (paper §2.1, §4.3).

A :class:`LogicalPlan` is a linear pipeline of unary operators, matching the
paper's execution examples (Fig. 8): a seek/scan source, a chain of Expand /
GetProperty / Filter steps, then Project / Aggregate / OrderBy / Limit.
Binary patterns the LDBC workload needs (semi/anti joins against a computed
vertex set) are expressed as :class:`Filter` with ``InSet`` expressions over
a prior stage's result, which is how the reference LDBC implementations
structure them too.

The same plan object executes on every engine variant: flat (GES),
factorized (GES_f), and fused (GES_f*); the fused operators
(:class:`TopK`, :class:`AggregateTopK`, Expand with ``neighbor_filter``)
are produced by :mod:`repro.plan.optimizer` rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import PlanError
from ..storage.catalog import Direction, GraphSchema
from .expressions import Expr


class LogicalOp:
    """Base class for pipeline operators."""

    @property
    def op_name(self) -> str:
        return type(self).__name__


@dataclass
class NodeByIdSeek(LogicalOp):
    """Locate one vertex by its primary-key property (paper's NodeByIdSeek)."""

    var: str
    label: str
    key: Expr


@dataclass
class NodeScan(LogicalOp):
    """Scan all live vertices of one label."""

    var: str
    label: str


@dataclass
class NodeByRows(LogicalOp):
    """Start the pipeline from a precomputed row set bound as a parameter.

    Used to glue multi-stage LDBC queries together: stage N+1 starts from
    vertex rows stage N computed.
    """

    var: str
    label: str
    rows_param: str


@dataclass
class Expand(LogicalOp):
    """Traverse an edge label from ``from_var`` to new variable ``to_var``.

    ``min_hops``/``max_hops`` support variable-length patterns
    (``KNOWS*1..2``); multi-hop expansion always deduplicates reached
    vertices and optionally excludes the start set, which is the LDBC
    "friends and friends of friends" semantics.

    ``edge_props`` projects edge properties onto output columns during the
    expansion (they are aligned with the adjacency slots, so fetching them
    later would be impossible).

    ``neighbor_filter`` / ``neighbor_props`` are populated by the
    FilterPushDown fusion rule: the predicate is evaluated against neighbor
    vertex properties *during* expansion so rejected neighbors never enter
    the intermediate result.
    """

    from_var: str
    to_var: str
    edge_label: str
    direction: Direction = Direction.OUT
    min_hops: int = 1
    max_hops: int = 1
    to_label: str | None = None
    exclude_start: bool = False
    optional: bool = False
    edge_props: dict[str, str] = field(default_factory=dict)
    neighbor_filter: Expr | None = None
    neighbor_props: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.min_hops < 1 or self.max_hops < self.min_hops:
            raise PlanError(
                f"invalid hop range {self.min_hops}..{self.max_hops} on Expand"
            )
        if self.max_hops > 1 and self.edge_props:
            raise PlanError("edge properties cannot be projected across multi-hop Expand")
        if self.optional and self.max_hops > 1:
            raise PlanError("optional Expand must be single-hop")

    @property
    def is_multi_hop(self) -> bool:
        return self.max_hops > 1


@dataclass
class FilteredNodeScan(LogicalOp):
    """Zone-map-aware fused NodeScan + GetProperty + Filter.

    Produced by the ``zone_map_scan`` rewrite for predicates of the form
    ``prop <cmp> literal``.  Executors with columnar storage consult the
    property column's per-block zone map (min/max/null-count) and never
    materialize blocks that cannot satisfy the comparison; ``out`` is still
    emitted so downstream references to the property column keep working.
    NULL rows never match: the residual predicate is re-evaluated through
    the standard expression machinery against the column's validity bitmap.
    """

    var: str
    label: str
    prop: str
    out: str
    cmp: str  # < | <= | > | >= | ==
    value: Expr

    _CMPS = ("<", "<=", ">", ">=", "==")

    def __post_init__(self) -> None:
        if self.cmp not in self._CMPS:
            raise PlanError(f"unsupported FilteredNodeScan comparison {self.cmp!r}")


@dataclass
class GetProperty(LogicalOp):
    """Append a vertex property of ``var`` as output column ``out``."""

    var: str
    prop: str
    out: str


@dataclass
class Filter(LogicalOp):
    """Keep tuples satisfying a boolean expression."""

    expr: Expr


@dataclass
class Project(LogicalOp):
    """Restrict/compute the output schema: ``items`` are (name, expr)."""

    items: list[tuple[str, Expr]]


@dataclass
class AggSpec:
    """One aggregate: ``fn`` over ``arg`` (None = count(*)), named ``out``."""

    out: str
    fn: str  # count | count_distinct | sum | min | max | avg
    arg: str | None = None

    _FNS = ("count", "count_distinct", "sum", "min", "max", "avg")

    def __post_init__(self) -> None:
        if self.fn not in self._FNS:
            raise PlanError(f"unknown aggregate function {self.fn!r}")
        if self.fn != "count" and self.arg is None:
            raise PlanError(f"aggregate {self.fn} requires an argument column")


@dataclass
class Aggregate(LogicalOp):
    """Group-by + aggregates."""

    group_by: list[str]
    aggs: list[AggSpec]


@dataclass
class OrderBy(LogicalOp):
    """Multi-key sort; keys are (column, ascending)."""

    keys: list[tuple[str, bool]]


@dataclass
class Limit(LogicalOp):
    n: int


@dataclass
class Distinct(LogicalOp):
    """Distinct over ``cols`` (None = whole schema), projecting onto them."""

    cols: list[str] | None = None


@dataclass
class ProcedureCall(LogicalOp):
    """Stored-procedure source (IC13/IC14 shortest-path style operators).

    The procedure runs directly against the graph read view; its output is a
    flat block.  Per the paper (Table 2 note), intermediate data inside a
    procedure is not factorizable and is excluded from memory accounting.
    """

    name: str
    args: dict[str, Expr] = field(default_factory=dict)


# -- fused operators (created by the optimizer, paper §4.3) --------------------


@dataclass
class VertexExpand(LogicalOp):
    """Fused NodeByIdSeek + Expand (paper's VertexExpand rule)."""

    seek_var: str
    seek_label: str
    seek_key: Expr
    expand: Expand


@dataclass
class TopK(LogicalOp):
    """Fused OrderBy+Limit: bounded-heap top-k over streamed tuples."""

    keys: list[tuple[str, bool]]
    n: int


@dataclass
class AggregateTopK(LogicalOp):
    """Fused Aggregate → Project → OrderBy → Limit (AggregateProjectTop).

    Streams the enumeration into a hash table, then selects the top-k
    groups — no flat block is ever materialized.
    """

    group_by: list[str]
    aggs: list[AggSpec]
    keys: list[tuple[str, bool]]
    n: int
    project_items: list[tuple[str, Expr]] | None = None


@dataclass
class LogicalPlan:
    """A linear pipeline plus the ordered output schema."""

    ops: list[LogicalOp]
    returns: list[str] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.ops:
            raise PlanError("a plan needs at least one operator")

    def with_ops(self, ops: Sequence[LogicalOp]) -> "LogicalPlan":
        return LogicalPlan(list(ops), self.returns, self.description)


def resolve_labels(plan: LogicalPlan, schema: GraphSchema) -> dict[str, str]:
    """Map every vertex variable in *plan* to its label.

    Raises :class:`PlanError` when an Expand's destination label is
    ambiguous and not pinned with ``to_label``.
    """
    labels: dict[str, str] = {}

    def bind_expand(op: Expand) -> None:
        if op.from_var not in labels:
            raise PlanError(f"Expand from unbound variable {op.from_var!r}")
        if op.to_label is not None:
            labels[op.to_var] = op.to_label
            return
        keys = schema.expand_keys(op.edge_label, op.direction, labels[op.from_var])
        destinations = {k.dst_label for k in keys}
        if len(destinations) != 1:
            raise PlanError(
                f"ambiguous destination for Expand[{op.edge_label}] "
                f"from {labels[op.from_var]!r}: {sorted(destinations)}"
            )
        labels[op.to_var] = next(iter(destinations))

    for op in plan.ops:
        if isinstance(op, (NodeByIdSeek, NodeScan, NodeByRows, FilteredNodeScan)):
            labels[op.var] = op.label
        elif isinstance(op, Expand):
            bind_expand(op)
        elif isinstance(op, VertexExpand):
            labels[op.seek_var] = op.seek_label
            bind_expand(op.expand)
    return labels


def plan_summary(plan: LogicalPlan) -> str:
    """One-line operator chain, for logs and test assertions."""
    return " -> ".join(op.op_name for op in plan.ops)
