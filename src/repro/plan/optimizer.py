"""Rule-based plan rewrites: the operator-fusion optimizations of GES_f*
(paper §4.3, "Operator Fusion").

Four rules, applied in a fixed order:

* **FilterPushDown** — folds a Filter (and the GetProperty ops feeding it)
  into the producing Expand, so rejected neighbors never enter the f-Block.
  This is the paper's example of moving the ``msg.len > 125`` filter behind
  the message expansion.
* **VertexExpand** — fuses NodeByIdSeek + Expand into one operator that
  reaches the neighbor set directly.
* **AggregateProjectTop** — fuses Aggregate [+ Project] + OrderBy + Limit
  into one streaming operator (hash aggregation + bounded heap), the fusion
  the paper credits for IC5/IC6.
* **TopK** — fuses OrderBy + Limit into a bounded-heap top-k.

Every rule is semantics-preserving; ``tests/test_optimizer.py`` and the
variant-equivalence suite check rewritten plans against unrewritten ones.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from .expressions import BoolOp, Cmp, Col
from .logical import (
    Aggregate,
    AggregateTopK,
    Expand,
    Filter,
    FilteredNodeScan,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
    TopK,
    VertexExpand,
)

RewriteRule = Callable[[LogicalPlan], LogicalPlan]


def filter_push_down(plan: LogicalPlan) -> LogicalPlan:
    """Fold Filters into the Expand that produces their columns."""
    ops = list(plan.ops)
    changed = True
    while changed:
        changed = False
        for i, op in enumerate(ops):
            if not isinstance(op, Filter):
                continue
            rewrite = _try_fuse_filter(ops, i)
            if rewrite is not None:
                ops = rewrite
                changed = True
                break
    return plan.with_ops(ops)


def _try_fuse_filter(ops: list[LogicalOp], filter_idx: int) -> list[LogicalOp] | None:
    """Attempt to fuse ops[filter_idx] into an earlier Expand."""
    filter_op = ops[filter_idx]
    assert isinstance(filter_op, Filter)
    needed = filter_op.expr.columns()

    # Walk backwards collecting GetProperty producers until we hit the Expand.
    getters: dict[str, GetProperty] = {}
    j = filter_idx - 1
    while j >= 0:
        op = ops[j]
        if isinstance(op, GetProperty):
            getters[op.out] = op
            j -= 1
            continue
        break
    if j < 0 or not isinstance(ops[j], Expand):
        return None
    expand = ops[j]
    assert isinstance(expand, Expand)
    if expand.is_multi_hop or expand.optional:
        return None

    # Every filtered column must be available *during* the expansion:
    # the destination variable itself, an edge property projected by the
    # expand, or a property of the destination vertex fetched right after.
    available = {expand.to_var} | set(expand.edge_props) | set(expand.neighbor_props)
    fused_getters: list[GetProperty] = []
    for name in needed:
        if name in available:
            continue
        getter = getters.get(name)
        if getter is None or getter.var != expand.to_var:
            return None
        fused_getters.append(getter)

    new_expand = replace(
        expand,
        edge_props=dict(expand.edge_props),
        neighbor_props={
            **expand.neighbor_props,
            **{g.out: g.prop for g in fused_getters},
        },
        neighbor_filter=(
            filter_op.expr
            if expand.neighbor_filter is None
            else BoolOp("and", [expand.neighbor_filter, filter_op.expr])
        ),
    )
    out: list[LogicalOp] = []
    fused_ids = {id(g) for g in fused_getters}
    for k, op in enumerate(ops):
        if k == filter_idx or id(op) in fused_ids:
            continue
        out.append(new_expand if k == j else op)
    return out


#: Operand flip for ``literal <op> col`` → ``col <flipped> literal``.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def zone_map_scan(plan: LogicalPlan) -> LogicalPlan:
    """Fuse NodeScan + GetProperty + Filter(prop <cmp> literal) into a
    :class:`FilteredNodeScan`, letting the executor consult the property
    column's zone map and skip blocks that cannot satisfy the predicate.

    Only single-comparison predicates against a column-free value (literal,
    parameter, or expression over them) qualify; anything else is left for
    the generic Filter path.
    """
    ops = list(plan.ops)
    changed = True
    while changed:
        changed = False
        for i in range(len(ops) - 2):
            scan, getter, filt = ops[i], ops[i + 1], ops[i + 2]
            if not (
                isinstance(scan, NodeScan)
                and isinstance(getter, GetProperty)
                and isinstance(filt, Filter)
                and getter.var == scan.var
            ):
                continue
            fused = _match_scan_predicate(scan, getter, filt.expr)
            if fused is None:
                continue
            ops = ops[:i] + [fused] + ops[i + 3 :]
            changed = True
            break
    return plan.with_ops(ops)


def _match_scan_predicate(
    scan: NodeScan, getter: GetProperty, expr
) -> FilteredNodeScan | None:
    if not isinstance(expr, Cmp) or expr.op not in _FLIP:
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Col) and left.name == getter.out and not right.columns():
        cmp, value = expr.op, right
    elif isinstance(right, Col) and right.name == getter.out and not left.columns():
        cmp, value = _FLIP[expr.op], left
    else:
        return None
    return FilteredNodeScan(scan.var, scan.label, getter.prop, getter.out, cmp, value)


def vertex_expand(plan: LogicalPlan) -> LogicalPlan:
    """Fuse NodeByIdSeek immediately followed by an Expand from its variable."""
    ops: list[LogicalOp] = []
    i = 0
    while i < len(plan.ops):
        op = plan.ops[i]
        nxt = plan.ops[i + 1] if i + 1 < len(plan.ops) else None
        if (
            isinstance(op, NodeByIdSeek)
            and isinstance(nxt, Expand)
            and nxt.from_var == op.var
        ):
            ops.append(VertexExpand(op.var, op.label, op.key, nxt))
            i += 2
            continue
        ops.append(op)
        i += 1
    return plan.with_ops(ops)


def aggregate_project_top(plan: LogicalPlan) -> LogicalPlan:
    """Fuse Aggregate [+ Project] + OrderBy + Limit into AggregateTopK."""
    ops = list(plan.ops)
    for i, op in enumerate(ops):
        if not isinstance(op, Aggregate):
            continue
        j = i + 1
        project: Project | None = None
        if j < len(ops) and isinstance(ops[j], Project):
            project = ops[j]  # type: ignore[assignment]
            j += 1
        if j + 1 >= len(ops) + 1:
            continue
        if j < len(ops) and isinstance(ops[j], OrderBy) and j + 1 < len(ops) and isinstance(
            ops[j + 1], Limit
        ):
            order = ops[j]
            limit = ops[j + 1]
            assert isinstance(order, OrderBy) and isinstance(limit, Limit)
            if project is not None and not _project_is_post_aggregate(project, op):
                continue
            fused = AggregateTopK(
                group_by=list(op.group_by),
                aggs=list(op.aggs),
                keys=list(order.keys),
                n=limit.n,
                project_items=list(project.items) if project is not None else None,
            )
            return plan.with_ops(ops[:i] + [fused] + ops[j + 2 :])
    return plan


def _project_is_post_aggregate(project: Project, aggregate: Aggregate) -> bool:
    produced = set(aggregate.group_by) | {a.out for a in aggregate.aggs}
    for _, expr in project.items:
        if not expr.columns() <= produced:
            return False
    return True


def top_k(plan: LogicalPlan) -> LogicalPlan:
    """Fuse OrderBy immediately followed by Limit into TopK."""
    ops: list[LogicalOp] = []
    i = 0
    while i < len(plan.ops):
        op = plan.ops[i]
        nxt = plan.ops[i + 1] if i + 1 < len(plan.ops) else None
        if isinstance(op, OrderBy) and isinstance(nxt, Limit):
            ops.append(TopK(list(op.keys), nxt.n))
            i += 2
            continue
        ops.append(op)
        i += 1
    return plan.with_ops(ops)


#: Rule order matters: scan fusion and pushdown first (they need the raw
#: Scan/Expand/GetProperty shape), then seek fusion, then the
#: aggregation/top-k fusions.
DEFAULT_RULES: list[RewriteRule] = [
    zone_map_scan,
    filter_push_down,
    vertex_expand,
    aggregate_project_top,
    top_k,
]


def optimize(plan: LogicalPlan, rules: list[RewriteRule] | None = None) -> LogicalPlan:
    """Apply fusion rules, producing the GES_f* physical pipeline."""
    for rule in rules if rules is not None else DEFAULT_RULES:
        plan = rule(plan)
    return plan
