"""Expression AST shared by the planner and all executors.

Expressions evaluate in two modes:

* **vectorized** (:meth:`Expr.eval_block`) against a column resolver — the
  path the GES executors use over f-Block / flat-block columns;
* **row-at-a-time** (:meth:`Expr.eval_row`) against a dict — the path the
  Volcano baseline uses, and the fused streaming operators when they
  consume the constant-delay enumeration.

Null semantics are validity-based: a NULL is a cleared validity bit on the
source column (surfaced to the row path as Python ``None``), never a
sentinel value in the data.  :meth:`Expr.null_block` propagates elementwise
NULL masks through arithmetic and scalar functions so every consumer masks
uniformly.  The contract, identical in both modes:

* ordered comparisons with a NULL operand are false;
* ``NULL == NULL`` is true and ``NULL == value`` is false (matching Python
  ``None`` equality, which the row path gets for free);
* ``IN`` with a NULL operand is false (so ``NOT IN`` is true);
* arithmetic and scalar functions propagate NULL.

Float NaN *values* (e.g. computed ``0/0``) are not NULLs: they follow IEEE
comparison rules in both modes.  Stored NaN is converted to a validity
NULL at ingest, so no valid float slot holds NaN.  For resolvers that
cannot supply validity, ``IS NULL`` additionally treats NaN as NULL — a
deprecated compat reading of the sentinel era.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, Sequence

import numpy as np

from ..errors import ExpressionError
from ..types import DataType, MILLIS_PER_DAY, is_null


class ColumnResolver(Protocol):
    """What an expression needs from its evaluation environment.

    Resolvers that track NULLs additionally expose
    ``validity_of(name) -> np.ndarray | None`` (True = value present);
    resolvers without it are treated as all-valid, with ``None`` holes in
    object arrays still detected.
    """

    def resolve(self, name: str) -> np.ndarray: ...

    def dtype_of(self, name: str) -> DataType: ...


def resolver_validity(resolver: Any, name: str) -> np.ndarray | None:
    """Validity mask of *name* under *resolver* (duck-typed, None = valid)."""
    accessor = getattr(resolver, "validity_of", None)
    if accessor is None:
        return None
    return accessor(name)


class Expr:
    """Base class for all expression nodes."""

    def columns(self) -> set[str]:
        """Names of all columns referenced anywhere in the expression."""
        raise NotImplementedError

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        raise NotImplementedError

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        """Elementwise NULL mask of this expression's block value.

        ``None`` means "no NULLs anywhere"; a bool scalar broadcasts over
        the block (literal/parameter operands).  Predicates (comparisons,
        boolean ops, membership, IS NULL) produce definite booleans and
        return ``None``.
        """
        return None

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        raise NotImplementedError

    # -- sugar -------------------------------------------------------------

    def __eq__(self, other: object) -> "Cmp":  # type: ignore[override]
        return Cmp("==", self, _wrap(other))

    def __ne__(self, other: object) -> "Cmp":  # type: ignore[override]
        return Cmp("!=", self, _wrap(other))

    def __lt__(self, other: Any) -> "Cmp":
        return Cmp("<", self, _wrap(other))

    def __le__(self, other: Any) -> "Cmp":
        return Cmp("<=", self, _wrap(other))

    def __gt__(self, other: Any) -> "Cmp":
        return Cmp(">", self, _wrap(other))

    def __ge__(self, other: Any) -> "Cmp":
        return Cmp(">=", self, _wrap(other))

    def __add__(self, other: Any) -> "Arith":
        return Arith("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "Arith":
        return Arith("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "Arith":
        return Arith("*", self, _wrap(other))

    def __and__(self, other: "Expr") -> "BoolOp":
        return BoolOp("and", [self, other])

    def __or__(self, other: "Expr") -> "BoolOp":
        return BoolOp("or", [self, other])

    def __invert__(self) -> "Not":
        return Not(self)

    def __hash__(self) -> int:  # Expr __eq__ builds Cmp, so hash by identity
        return id(self)


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


class Col(Expr):
    """Reference to a column of the current intermediate result."""

    def __init__(self, name: str) -> None:
        self.name = name

    def columns(self) -> set[str]:
        return {self.name}

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        return resolver.resolve(self.name)

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        validity = resolver_validity(resolver, self.name)
        nulls = None if validity is None else ~validity
        values = resolver.resolve(self.name)
        if isinstance(values, np.ndarray) and values.dtype == object:
            # Object columns use None both as the inert fill and as the row
            # representation, so a None scan is exact even without validity.
            scan = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
            nulls = scan if nulls is None else (nulls | scan)
        if nulls is not None and isinstance(nulls, np.ndarray) and not nulls.any():
            return None
        return nulls

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExpressionError(f"row has no column {self.name!r}") from None

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return dtype_of(self.name)

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def columns(self) -> set[str]:
        return set()

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> Any:
        return self.value

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        return True if self.value is None else None

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        return self.value

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        from ..types import infer_data_type

        return infer_data_type(self.value)

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class Param(Expr):
    """A named query parameter, bound at execution time."""

    def __init__(self, name: str) -> None:
        self.name = name

    def columns(self) -> set[str]:
        return set()

    def _value(self, params: Mapping[str, Any]) -> Any:
        try:
            return params[self.name]
        except KeyError:
            raise ExpressionError(f"unbound parameter ${self.name}") from None

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> Any:
        return self._value(params)

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        return True if self._value(params) is None else None

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        return self._value(params)

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        from ..types import infer_data_type

        return infer_data_type(self._value(params))

    def __repr__(self) -> str:
        return f"Param({self.name!r})"


_CMP_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def combine_nulls(
    a: np.ndarray | bool | None, b: np.ndarray | bool | None
) -> np.ndarray | bool | None:
    """OR of two elementwise NULL masks (None = no NULLs, bool broadcasts)."""
    if a is None:
        return b
    if b is None:
        return a
    return a | b


class Cmp(Expr):
    """Binary comparison producing booleans."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        left = self.left.eval_block(resolver, params)
        right = self.right.eval_block(resolver, params)
        lnull = self.left.null_block(resolver, params)
        rnull = self.right.null_block(resolver, params)
        if self.op in ("==", "!="):
            equal = np.asarray(_CMP_OPS["=="](left, right), dtype=bool)
            if lnull is not None or rnull is not None:
                # NULL == NULL is true, NULL == value false — the Python
                # None semantics the row path gets for free.  (Object
                # columns already behave this way elementwise; the masks
                # extend it to fill-backed numeric columns.)
                l = False if lnull is None else lnull
                r = False if rnull is None else rnull
                equal = (equal & ~(l | r)) | (l & r)
            return equal if self.op == "==" else ~equal
        result = np.asarray(_CMP_OPS[self.op](left, right), dtype=bool)
        nulls = combine_nulls(lnull, rnull)
        if nulls is not None:
            # Ordered comparisons against NULL are false.  (NaN *values*
            # need no mask: IEEE comparisons are already false.)
            result = result & ~nulls
        return result

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        left = self.left.eval_row(row, params)
        right = self.right.eval_row(row, params)
        if self.op in ("==", "!="):
            return bool(_CMP_OPS[self.op](left, right))
        if is_null(left) or is_null(right):
            return False
        return bool(_CMP_OPS[self.op](left, right))

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return DataType.BOOL

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolOp(Expr):
    """N-ary conjunction or disjunction."""

    def __init__(self, op: str, operands: Sequence[Expr]) -> None:
        if op not in ("and", "or"):
            raise ExpressionError(f"unknown boolean operator {op!r}")
        self.op = op
        self.operands = list(operands)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        results = [
            np.asarray(o.eval_block(resolver, params), dtype=bool) for o in self.operands
        ]
        combined = results[0]
        for result in results[1:]:
            combined = combined & result if self.op == "and" else combined | result
        return combined

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        if self.op == "and":
            return all(bool(o.eval_row(row, params)) for o in self.operands)
        return any(bool(o.eval_row(row, params)) for o in self.operands)

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return DataType.BOOL

    def __repr__(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class Not(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def columns(self) -> set[str]:
        return self.operand.columns()

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        return ~np.asarray(self.operand.eval_block(resolver, params), dtype=bool)

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        return not bool(self.operand.eval_row(row, params))

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return DataType.BOOL

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class Arith(Expr):
    """Binary arithmetic."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        left = self.left.eval_block(resolver, params)
        right = self.right.eval_block(resolver, params)
        with np.errstate(over="ignore"):
            return _ARITH_OPS[self.op](left, right)

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        # Arithmetic propagates NULL from either operand (the satellite
        # audit: the sentinel era silently computed on fill values here).
        return combine_nulls(
            self.left.null_block(resolver, params),
            self.right.null_block(resolver, params),
        )

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        left = self.left.eval_row(row, params)
        right = self.right.eval_row(row, params)
        if is_null(left) or is_null(right):
            return None
        return _ARITH_OPS[self.op](left, right)

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        if self.op == "/":
            return DataType.FLOAT64
        left = self.left.infer_dtype(dtype_of, params)
        right = self.right.infer_dtype(dtype_of, params)
        if DataType.FLOAT64 in (left, right):
            return DataType.FLOAT64
        return DataType.INT64

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class InSet(Expr):
    """Membership test against a precomputed set (semi/anti-join filters)."""

    def __init__(self, operand: Expr, values: Expr, negate: bool = False) -> None:
        self.operand = operand
        self.values = values
        self.negate = negate

    def columns(self) -> set[str]:
        return self.operand.columns() | self.values.columns()

    def _value_set(self, params: Mapping[str, Any], resolver: Any = None) -> frozenset:
        if resolver is not None:
            values = self.values.eval_block(resolver, params)
        else:
            values = self.values.eval_row({}, params)
        if isinstance(values, frozenset):
            return values
        return frozenset(values)

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        operand = np.asarray(self.operand.eval_block(resolver, params))
        values = self._value_set(params, resolver)
        if operand.dtype == object:
            mask = np.fromiter(
                (v in values for v in operand), dtype=bool, count=len(operand)
            )
        else:
            lookup = np.asarray(sorted(values)) if values else np.empty(0, operand.dtype)
            mask = np.isin(operand, lookup)
        nulls = self.operand.null_block(resolver, params)
        if nulls is not None:
            # A NULL operand is never a member — without the mask, the
            # inert fill under an invalid numeric slot could collide with a
            # legitimate set element (the sentinel bug class, container
            # edition).  NOT IN therefore yields True for NULLs, matching
            # the row path's `None in set` → False.
            mask = mask & ~nulls
        return ~mask if self.negate else mask

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        operand = self.operand.eval_row(row, params)
        member = (not is_null(operand)) and operand in self._value_set(params)
        return not member if self.negate else member

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return DataType.BOOL

    def __repr__(self) -> str:
        op = "not in" if self.negate else "in"
        return f"({self.operand!r} {op} {self.values!r})"


class IsNull(Expr):
    def __init__(self, operand: Expr, negate: bool = False) -> None:
        self.operand = operand
        self.negate = negate

    def columns(self) -> set[str]:
        return self.operand.columns()

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        values = np.asarray(self.operand.eval_block(resolver, params))
        nulls = self.operand.null_block(resolver, params)
        if nulls is None:
            mask = np.zeros(len(values), dtype=bool)
        elif isinstance(nulls, np.ndarray):
            mask = nulls
        else:  # scalar literal/parameter operand
            mask = np.full(len(values), bool(nulls))
        if values.dtype.kind == "f":
            # Deprecated compat reading: float NaN counts as NULL so
            # computed NaN and validity-less resolvers agree with the row
            # path's value shim.
            mask = mask | np.isnan(values)
        return ~mask if self.negate else mask

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
        null = is_null(self.operand.eval_row(row, params))
        return not null if self.negate else null

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        return DataType.BOOL

    def __repr__(self) -> str:
        op = "is not null" if self.negate else "is null"
        return f"({self.operand!r} {op})"


def _millis_to_unit(values: np.ndarray, unit: str) -> np.ndarray:
    dt = np.asarray(values, dtype="datetime64[ms]")
    if unit == "year":
        return dt.astype("datetime64[Y]").astype(np.int64) + 1970
    if unit == "month":
        return dt.astype("datetime64[M]").astype(np.int64) % 12 + 1
    if unit == "day":
        months = dt.astype("datetime64[M]")
        return (dt.astype("datetime64[D]") - months.astype("datetime64[D]")).astype(
            np.int64
        ) + 1
    raise ExpressionError(f"unknown date unit {unit!r}")


_FUNCS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min2": min,
    "max2": max,
    "floor_div_day": lambda millis: int(millis) // MILLIS_PER_DAY,
}


class Func(Expr):
    """Scalar function call: year/month/day extraction plus a few helpers."""

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        self.name = name
        self.args = list(args)
        if name not in ("year", "month", "day") and name not in _FUNCS:
            raise ExpressionError(f"unknown function {name!r}")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.columns()
        return out

    def eval_block(self, resolver: ColumnResolver, params: Mapping[str, Any]) -> np.ndarray:
        args = [a.eval_block(resolver, params) for a in self.args]
        if self.name in ("year", "month", "day"):
            return _millis_to_unit(np.asarray(args[0]), self.name)
        if self.name == "abs":
            with np.errstate(over="ignore"):
                return np.abs(args[0])
        if self.name == "floor_div_day":
            return np.asarray(args[0]) // MILLIS_PER_DAY
        return np.vectorize(_FUNCS[self.name])(*args)

    def null_block(
        self, resolver: ColumnResolver, params: Mapping[str, Any]
    ) -> np.ndarray | bool | None:
        # Scalar functions propagate NULL from any argument (the satellite
        # audit: `year(NULL)` used to compute on the int64 fill here).
        nulls: np.ndarray | bool | None = None
        for arg in self.args:
            nulls = combine_nulls(nulls, arg.null_block(resolver, params))
        return nulls

    def eval_row(self, row: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
        args = [a.eval_row(row, params) for a in self.args]
        if any(is_null(arg) for arg in args):
            return None
        if self.name in ("year", "month", "day"):
            return int(_millis_to_unit(np.asarray([args[0]]), self.name)[0])
        return _FUNCS[self.name](*args)

    def infer_dtype(
        self, dtype_of: Callable[[str], DataType], params: Mapping[str, Any]
    ) -> DataType:
        if self.name in ("year", "month", "day", "floor_div_day"):
            return DataType.INT64
        return self.args[0].infer_dtype(dtype_of, params)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(repr(a) for a in self.args)})"


def col(name: str) -> Col:
    """Shorthand constructor used throughout the query builders."""
    return Col(name)


def lit(value: Any) -> Lit:
    """Shorthand constructor for a literal expression."""
    return Lit(value)


def param(name: str) -> Param:
    """Shorthand constructor for a named query parameter."""
    return Param(name)
