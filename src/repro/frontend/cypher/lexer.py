"""Tokenizer for the Cypher subset accepted by the GES frontend."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...errors import CypherSyntaxError

KEYWORDS = {
    "MATCH",
    "OPTIONAL",
    "WHERE",
    "WITH",
    "RETURN",
    "ORDER",
    "BY",
    "LIMIT",
    "ASC",
    "DESC",
    "AND",
    "OR",
    "NOT",
    "AS",
    "DISTINCT",
    "IN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    PARAM = "param"  # $name
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value == symbol


_TWO_CHAR_SYMBOLS = ("<=", ">=", "<>", "->", "<-", "..")
_ONE_CHAR_SYMBOLS = "()[]{}:,.;-<>=+*/|"


def tokenize(text: str) -> list[Token]:
    """Split query text into tokens; raises CypherSyntaxError on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "/" and text[i : i + 2] == "//":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            # Disambiguate a float literal from a range operator (1..2).
            if i < n and text[i] == "." and text[i : i + 2] != ".." and i + 1 < n and text[i + 1].isdigit():
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
                tokens.append(Token(TokenType.FLOAT, text[start:i], start))
            else:
                tokens.append(Token(TokenType.INT, text[start:i], start))
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            buf: list[str] = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    buf.append(text[i + 1])
                    i += 2
                    continue
                buf.append(text[i])
                i += 1
            if i >= n:
                raise CypherSyntaxError("unterminated string literal", start)
            i += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), start))
            continue
        if ch == "$":
            start = i
            i += 1
            name_start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            if i == name_start:
                raise CypherSyntaxError("empty parameter name", start)
            tokens.append(Token(TokenType.PARAM, text[name_start:i], start))
            continue
        if text[i : i + 2] in _TWO_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, text[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, ch, i))
            i += 1
            continue
        raise CypherSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
