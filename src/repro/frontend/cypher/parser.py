"""Recursive-descent parser for the Cypher subset.

Supported shape (enough for the paper's example queries and the public
examples; anything else raises :class:`CypherUnsupportedError`):

    [OPTIONAL] MATCH (a:Label)-[:TYPE*1..2]->(b) WHERE <expr>
    WITH <items> [WHERE <expr>]
    RETURN [DISTINCT] <items> [ORDER BY <keys>] [LIMIT n]
"""

from __future__ import annotations

from ...errors import CypherSyntaxError, CypherUnsupportedError
from .ast import (
    AggCall,
    BinaryOp,
    CypherExpr,
    CypherQuery,
    FuncCall,
    IdFunc,
    IsNullOp,
    Literal,
    MatchClause,
    NodePattern,
    NotOp,
    OrderItem,
    ParamRef,
    PathPattern,
    PropAccess,
    RelPattern,
    ReturnClause,
    ReturnItem,
    Var,
    WithClause,
)
from .lexer import Token, TokenType, tokenize

_AGG_FNS = {"count", "sum", "min", "max", "avg", "collect"}
_SCALAR_FNS = {"id", "year", "month", "day", "abs"}


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise CypherSyntaxError(f"expected {symbol!r}, got {token.value!r}", token.position)
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise CypherSyntaxError(f"expected {word}, got {token.value!r}", token.position)
        return token

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- entry ---------------------------------------------------------------

    def parse(self) -> CypherQuery:
        clauses: list[MatchClause | WithClause | ReturnClause] = []
        while not self._peek().type is TokenType.EOF:
            token = self._peek()
            if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
                clauses.append(self._parse_match())
            elif token.is_keyword("WITH"):
                clauses.append(self._parse_with())
            elif token.is_keyword("RETURN"):
                clauses.append(self._parse_return())
                break
            else:
                raise CypherSyntaxError(
                    f"unexpected token {token.value!r}", token.position
                )
        if self._accept_symbol(";"):
            pass
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise CypherSyntaxError(
                f"unexpected trailing input {trailing.value!r}", trailing.position
            )
        if not clauses or not isinstance(clauses[-1], ReturnClause):
            raise CypherUnsupportedError("query must end with a RETURN clause")
        return CypherQuery(clauses)

    # -- clauses ---------------------------------------------------------------

    def _parse_match(self) -> MatchClause:
        optional = self._accept_keyword("OPTIONAL")
        self._expect_keyword("MATCH")
        path = self._parse_path()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return MatchClause(path, where, optional)

    def _parse_with(self) -> WithClause:
        self._expect_keyword("WITH")
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_items()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return WithClause(items, distinct, where)

    def _parse_return(self) -> ReturnClause:
        self._expect_keyword("RETURN")
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_items()
        order: list[OrderItem] = []
        limit: int | None = None
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expr()
                ascending = True
                if self._accept_keyword("DESC"):
                    ascending = False
                elif self._accept_keyword("ASC"):
                    ascending = True
                order.append(OrderItem(expr, ascending))
                if not self._accept_symbol(","):
                    break
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type is not TokenType.INT:
                raise CypherSyntaxError("LIMIT expects an integer", token.position)
            limit = int(token.value)
        return ReturnClause(items, distinct, order, limit)

    def _parse_items(self) -> list[ReturnItem]:
        items = [self._parse_item()]
        while self._accept_symbol(","):
            items.append(self._parse_item())
        return items

    def _parse_item(self) -> ReturnItem:
        expr = self._parse_expr()
        alias = None
        if self._accept_keyword("AS"):
            token = self._advance()
            if token.type is not TokenType.IDENT:
                raise CypherSyntaxError("AS expects an identifier", token.position)
            alias = token.value
        return ReturnItem(expr, alias)

    # -- patterns ---------------------------------------------------------------

    def _parse_path(self) -> PathPattern:
        nodes = [self._parse_node()]
        rels: list[RelPattern] = []
        while self._peek().is_symbol("-") or self._peek().is_symbol("<-"):
            rels.append(self._parse_rel())
            nodes.append(self._parse_node())
        return PathPattern(nodes, rels)

    def _parse_node(self) -> NodePattern:
        self._expect_symbol("(")
        var = None
        label = None
        properties: dict[str, CypherExpr] = {}
        token = self._peek()
        if token.type is TokenType.IDENT:
            var = self._advance().value
        if self._accept_symbol(":"):
            label_token = self._advance()
            if label_token.type is not TokenType.IDENT:
                raise CypherSyntaxError("expected label name", label_token.position)
            label = label_token.value
        if self._accept_symbol("{"):
            # Property map sugar: (p:Person {id: 3}) == WHERE p.id = 3.
            while True:
                key = self._advance()
                if key.type is not TokenType.IDENT:
                    raise CypherSyntaxError("expected property name", key.position)
                self._expect_symbol(":")
                properties[key.value] = self._parse_expr()
                if not self._accept_symbol(","):
                    break
            self._expect_symbol("}")
        self._expect_symbol(")")
        return NodePattern(var, label, properties)

    def _parse_rel(self) -> RelPattern:
        direction = "both"
        if self._accept_symbol("<-"):
            direction = "in"
        else:
            self._expect_symbol("-")
        self._expect_symbol("[")
        self._expect_symbol(":")
        type_token = self._advance()
        if type_token.type is not TokenType.IDENT:
            raise CypherSyntaxError("expected relationship type", type_token.position)
        min_hops = max_hops = 1
        if self._accept_symbol("*"):
            lo = self._advance()
            if lo.type is not TokenType.INT:
                raise CypherSyntaxError("expected hop count after *", lo.position)
            min_hops = int(lo.value)
            self._expect_symbol("..")
            hi = self._advance()
            if hi.type is not TokenType.INT:
                raise CypherSyntaxError("expected upper hop count", hi.position)
            max_hops = int(hi.value)
        self._expect_symbol("]")
        if self._accept_symbol("->"):
            if direction == "in":
                raise CypherSyntaxError("conflicting arrow directions", self._peek().position)
            direction = "out"
        else:
            self._expect_symbol("-")
        return RelPattern(type_token.value, direction, min_hops, max_hops)

    # -- expressions (precedence climbing) -------------------------------------------

    def _parse_expr(self) -> CypherExpr:
        return self._parse_or()

    def _parse_or(self) -> CypherExpr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> CypherExpr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> CypherExpr:
        if self._accept_keyword("NOT"):
            return NotOp(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> CypherExpr:
        left = self._parse_additive()
        token = self._peek()
        for op in ("<=", ">=", "<>", "=", "<", ">"):
            if token.is_symbol(op):
                self._advance()
                return BinaryOp(op, left, self._parse_additive())
        if token.is_keyword("IS"):
            self._advance()
            negate = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNullOp(left, negate)
        return left

    def _parse_additive(self) -> CypherExpr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> CypherExpr:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> CypherExpr:
        token = self._advance()
        if token.type is TokenType.INT:
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            return Literal(token.value)
        if token.type is TokenType.PARAM:
            return ParamRef(token.value)
        if token.is_keyword("TRUE"):
            return Literal(True)
        if token.is_keyword("FALSE"):
            return Literal(False)
        if token.is_symbol("("):
            inner = self._parse_expr()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.IDENT:
            name = token.value
            if self._peek().is_symbol("("):
                return self._parse_call(name, token)
            if self._peek().is_symbol("."):
                self._advance()
                prop = self._advance()
                if prop.type is not TokenType.IDENT:
                    raise CypherSyntaxError("expected property name", prop.position)
                return PropAccess(name, prop.value)
            return Var(name)
        raise CypherSyntaxError(f"unexpected token {token.value!r}", token.position)

    def _parse_call(self, name: str, token: Token) -> CypherExpr:
        self._expect_symbol("(")
        lowered = name.lower()
        if lowered in _AGG_FNS:
            if lowered == "count" and self._accept_symbol("*"):
                self._expect_symbol(")")
                return AggCall("count", None)
            distinct = self._accept_keyword("DISTINCT")
            arg = self._parse_expr()
            self._expect_symbol(")")
            return AggCall(lowered, arg, distinct)
        if lowered == "id":
            arg = self._advance()
            if arg.type is not TokenType.IDENT:
                raise CypherSyntaxError("id() expects a variable", arg.position)
            self._expect_symbol(")")
            return IdFunc(arg.value)
        if lowered in _SCALAR_FNS:
            args = [self._parse_expr()]
            while self._accept_symbol(","):
                args.append(self._parse_expr())
            self._expect_symbol(")")
            return FuncCall(lowered, args)
        raise CypherUnsupportedError(f"unknown function {name!r}")


def parse_cypher(text: str) -> CypherQuery:
    """Parse query text into the frontend AST."""
    return Parser(text).parse()
