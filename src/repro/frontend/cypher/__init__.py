"""Cypher-subset frontend: lexer, parser, binder."""

from .binder import Binder, compile_cypher
from .parser import parse_cypher

__all__ = ["Binder", "compile_cypher", "parse_cypher"]
