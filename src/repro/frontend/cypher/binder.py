"""Binder: Cypher AST -> logical plan (the frontend's IR hand-off, §2.1).

The binder resolves variables against the graph schema, turns property
accesses into GetProperty operators (fetched once per (var, property)),
recognizes ``id(x) = $param`` seeks, and lowers WITH/RETURN into
Project/Aggregate/OrderBy/Limit pipelines.
"""

from __future__ import annotations

from ...errors import CypherUnsupportedError, PlanError
from ...plan.expressions import (
    Arith,
    BoolOp,
    Cmp,
    Col,
    Expr,
    Func,
    IsNull,
    Lit,
    Not,
    Param,
)
from ...plan.logical import (
    AggSpec,
    Aggregate,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
)
from ...storage.catalog import Direction, GraphSchema
from . import ast
from .parser import parse_cypher


class Binder:
    """Stateful lowering of one Cypher query into a logical plan."""

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema
        self.ops: list[LogicalOp] = []
        self.var_labels: dict[str, str] = {}
        self.prop_cols: dict[tuple[str, str], str] = {}
        self.scope: set[str] = set()
        self._anon = 0

    # -- public -----------------------------------------------------------

    def bind(self, query: ast.CypherQuery) -> LogicalPlan:
        returns: list[str] | None = None
        for clause in query.clauses:
            if isinstance(clause, ast.MatchClause):
                self._bind_match(clause)
            elif isinstance(clause, ast.WithClause):
                self._bind_with(clause)
            elif isinstance(clause, ast.ReturnClause):
                returns = self._bind_return(clause)
        if not self.ops:
            raise CypherUnsupportedError("empty query")
        return LogicalPlan(self.ops, returns=returns)

    # -- MATCH ---------------------------------------------------------------

    def _bind_match(self, clause: ast.MatchClause) -> None:
        conjuncts = _split_and(clause.where)
        path = clause.path
        if clause.optional and len(path.rels) != 1:
            raise CypherUnsupportedError("OPTIONAL MATCH must be a single relationship")

        # Desugar property maps: (p:Person {id: 3}) adds `p.id = 3`.
        for node in path.nodes:
            if node.properties and node.var is None:
                node.var = self._fresh_var()
            for key, value in node.properties.items():
                conjuncts.append(
                    ast.BinaryOp("=", ast.PropAccess(node.var, key), value)
                )

        first = path.nodes[0]
        prev_var = self._bind_start_node(first, conjuncts, clause.optional)

        for rel, node in zip(path.rels, path.nodes[1:]):
            to_var = node.var or self._fresh_var()
            if to_var in self.var_labels:
                raise CypherUnsupportedError(
                    f"pattern revisits variable {to_var!r} (cycles unsupported)"
                )
            direction = Direction.IN if rel.direction == "in" else Direction.OUT
            expand = Expand(
                from_var=prev_var,
                to_var=to_var,
                edge_label=rel.type,
                direction=direction,
                min_hops=rel.min_hops,
                max_hops=rel.max_hops,
                to_label=node.label,
                exclude_start=rel.max_hops > 1,
                optional=clause.optional,
            )
            self.ops.append(expand)
            label = node.label or self._infer_to_label(expand, prev_var)
            self.var_labels[to_var] = label
            self.scope.add(to_var)
            prev_var = to_var

        for conjunct in conjuncts:
            self.ops.append(Filter(self._bind_expr(conjunct)))

    def _bind_start_node(
        self, node: ast.NodePattern, conjuncts: list[ast.CypherExpr], optional: bool
    ) -> str:
        var = node.var or self._fresh_var()
        if var in self.var_labels and var in self.scope:
            # Continuation MATCH from a variable carried through WITH.
            return var
        if optional:
            raise CypherUnsupportedError("OPTIONAL MATCH must start from a bound variable")
        if node.label is None:
            raise CypherUnsupportedError(
                f"starting node {var!r} needs a label (e.g. (p:Person))"
            )
        self.var_labels[var] = node.label
        self.scope.add(var)
        primary_key = self.schema.vertex_label(node.label).primary_key
        seek_key = _extract_seek(conjuncts, var, primary_key)
        if seek_key is not None:
            self.ops.append(NodeByIdSeek(var, node.label, self._bind_expr(seek_key)))
        else:
            self.ops.append(NodeScan(var, node.label))
        return var

    def _infer_to_label(self, expand: Expand, from_var: str) -> str:
        keys = self.schema.expand_keys(
            expand.edge_label, expand.direction, self.var_labels[from_var]
        )
        destinations = {k.dst_label for k in keys}
        if len(destinations) != 1:
            raise PlanError(
                f"ambiguous destination label for -[:{expand.edge_label}]-; add one"
            )
        return next(iter(destinations))

    # -- WITH / RETURN ------------------------------------------------------------

    def _bind_with(self, clause: ast.WithClause) -> None:
        names = self._bind_projection(clause.items)
        if clause.distinct:
            self.ops.append(Distinct(cols=names))
        if clause.where is not None:
            for conjunct in _split_and(clause.where):
                self.ops.append(Filter(self._bind_expr(conjunct)))

    def _bind_return(self, clause: ast.ReturnClause) -> list[str]:
        names = self._bind_projection(clause.items)
        if clause.distinct:
            self.ops.append(Distinct(cols=names))
        if clause.order:
            keys = []
            for item in clause.order:
                keys.append((self._resolve_order_key(item.expr, names), item.ascending))
            self.ops.append(OrderBy(keys))
        if clause.limit is not None:
            self.ops.append(Limit(clause.limit))
        return names

    def _bind_projection(self, items: list[ast.ReturnItem]) -> list[str]:
        """Lower projection items; emits Aggregate when aggregates appear."""
        has_aggs = any(isinstance(i.expr, ast.AggCall) for i in items)
        if not has_aggs:
            bound = [(item.name, self._bind_expr(item.expr)) for item in items]
            self.ops.append(Project(bound))
        else:
            group_cols: list[tuple[str, str]] = []  # (output name, source column)
            aggs: list[AggSpec] = []
            for item in items:
                if isinstance(item.expr, ast.AggCall):
                    aggs.append(self._bind_agg(item.expr, item.name))
                else:
                    expr = self._bind_expr(item.expr)
                    if not isinstance(expr, Col):
                        raise CypherUnsupportedError(
                            "grouping keys must be plain columns (use an alias in WITH)"
                        )
                    group_cols.append((item.name, expr.name))
            self.ops.append(Aggregate([src for _, src in group_cols], aggs))
            projection = [(name, Col(src)) for name, src in group_cols]
            projection += [(a.out, Col(a.out)) for a in aggs]
            self.ops.append(Project(projection))
        self._update_scope(items)
        return [item.name for item in items]

    def _bind_agg(self, call: ast.AggCall, out: str) -> AggSpec:
        if call.fn == "collect":
            raise CypherUnsupportedError("collect() is not supported")
        if call.arg is None:
            return AggSpec(out, "count", None)
        arg_expr = self._bind_expr(call.arg)
        if not isinstance(arg_expr, Col):
            raise CypherUnsupportedError("aggregate arguments must be plain columns")
        fn = "count_distinct" if (call.fn == "count" and call.distinct) else call.fn
        return AggSpec(out, fn, arg_expr.name)

    def _update_scope(self, items: list[ast.ReturnItem]) -> None:
        """After a projection, only projected names remain visible."""
        new_labels: dict[str, str] = {}
        new_props: dict[tuple[str, str], str] = {}
        new_scope: set[str] = set()
        for item in items:
            name = item.name
            new_scope.add(name)
            if isinstance(item.expr, ast.Var) and item.expr.name in self.var_labels:
                new_labels[name] = self.var_labels[item.expr.name]
            elif isinstance(item.expr, ast.PropAccess):
                key = (item.expr.var, item.expr.prop)
                new_props[key] = name
        self.var_labels = new_labels
        self.prop_cols = new_props
        self.scope = new_scope

    def _resolve_order_key(self, expr: ast.CypherExpr, names: list[str]) -> str:
        if isinstance(expr, ast.Var) and expr.name in names:
            return expr.name
        text = expr.text()
        if text in names:
            return text
        raise CypherUnsupportedError(
            f"ORDER BY key {text!r} must be one of the returned items"
        )

    # -- expressions -----------------------------------------------------------

    def _bind_expr(self, expr: ast.CypherExpr) -> Expr:
        if isinstance(expr, ast.Literal):
            return Lit(expr.value)
        if isinstance(expr, ast.ParamRef):
            return Param(expr.name)
        if isinstance(expr, ast.Var):
            if expr.name not in self.scope:
                raise PlanError(f"unknown variable {expr.name!r}")
            return Col(expr.name)
        if isinstance(expr, ast.PropAccess):
            return Col(self._property_column(expr.var, expr.prop))
        if isinstance(expr, ast.IdFunc):
            label = self._label_of(expr.var)
            pk = self.schema.vertex_label(label).primary_key
            if pk is None:
                raise PlanError(f"label {label!r} has no id property")
            return Col(self._property_column(expr.var, pk, out=f"id({expr.var})"))
        if isinstance(expr, ast.BinaryOp):
            return self._bind_binary(expr)
        if isinstance(expr, ast.NotOp):
            return Not(self._bind_expr(expr.operand))
        if isinstance(expr, ast.IsNullOp):
            return IsNull(self._bind_expr(expr.operand), expr.negate)
        if isinstance(expr, ast.FuncCall):
            return Func(expr.name, [self._bind_expr(a) for a in expr.args])
        if isinstance(expr, ast.AggCall):
            raise CypherUnsupportedError("aggregates are only allowed as WITH/RETURN items")
        raise CypherUnsupportedError(f"unsupported expression {expr!r}")

    def _bind_binary(self, expr: ast.BinaryOp) -> Expr:
        left = self._bind_expr(expr.left)
        right = self._bind_expr(expr.right)
        if expr.op == "=":
            return Cmp("==", left, right)
        if expr.op == "<>":
            return Cmp("!=", left, right)
        if expr.op in ("<", "<=", ">", ">="):
            return Cmp(expr.op, left, right)
        if expr.op in ("AND", "OR"):
            return BoolOp(expr.op.lower(), [left, right])
        if expr.op in ("+", "-", "*", "/"):
            return Arith(expr.op, left, right)
        raise CypherUnsupportedError(f"unsupported operator {expr.op!r}")

    def _label_of(self, var: str) -> str:
        try:
            return self.var_labels[var]
        except KeyError:
            raise PlanError(f"unknown variable {var!r}") from None

    def _property_column(self, var: str, prop: str, out: str | None = None) -> str:
        key = (var, prop)
        if key in self.prop_cols:
            return self.prop_cols[key]
        label = self._label_of(var)
        self.schema.vertex_label(label).property(prop)  # validates
        name = out or f"{var}.{prop}"
        self.ops.append(GetProperty(var, prop, name))
        self.prop_cols[key] = name
        self.scope.add(name)
        return name

    def _fresh_var(self) -> str:
        self._anon += 1
        return f"_anon{self._anon}"


def _split_and(expr: ast.CypherExpr | None) -> list[ast.CypherExpr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _extract_seek(
    conjuncts: list[ast.CypherExpr], var: str, primary_key: str | None = None
) -> ast.CypherExpr | None:
    """Pop an ``id(var) = <value>`` (or ``var.<pk> = <value>``) conjunct,
    returning the value expression."""
    for i, conjunct in enumerate(conjuncts):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        for lhs, rhs in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
            if not isinstance(rhs, (ast.Literal, ast.ParamRef)):
                continue
            if isinstance(lhs, ast.IdFunc) and lhs.var == var:
                conjuncts.pop(i)
                return rhs
            if (
                primary_key is not None
                and isinstance(lhs, ast.PropAccess)
                and lhs.var == var
                and lhs.prop == primary_key
            ):
                conjuncts.pop(i)
                return rhs
    return None


def compile_cypher(text: str, schema: GraphSchema) -> LogicalPlan:
    """Parse and bind a Cypher query against *schema*."""
    return Binder(schema).bind(parse_cypher(text))
