"""AST for the Cypher subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# -- expressions -----------------------------------------------------------------


class CypherExpr:
    """Base class for frontend expressions (bound to plan exprs later)."""

    def text(self) -> str:
        """Canonical source-ish text, used as the default result alias."""
        raise NotImplementedError


@dataclass
class Var(CypherExpr):
    name: str

    def text(self) -> str:
        return self.name


@dataclass
class PropAccess(CypherExpr):
    var: str
    prop: str

    def text(self) -> str:
        return f"{self.var}.{self.prop}"


@dataclass
class IdFunc(CypherExpr):
    var: str

    def text(self) -> str:
        return f"id({self.var})"


@dataclass
class Literal(CypherExpr):
    value: Any

    def text(self) -> str:
        return repr(self.value)


@dataclass
class ParamRef(CypherExpr):
    name: str

    def text(self) -> str:
        return f"${self.name}"


@dataclass
class BinaryOp(CypherExpr):
    op: str  # = <> < <= > >= + - * / AND OR
    left: CypherExpr
    right: CypherExpr

    def text(self) -> str:
        return f"({self.left.text()} {self.op} {self.right.text()})"


@dataclass
class NotOp(CypherExpr):
    operand: CypherExpr

    def text(self) -> str:
        return f"(NOT {self.operand.text()})"


@dataclass
class IsNullOp(CypherExpr):
    operand: CypherExpr
    negate: bool = False

    def text(self) -> str:
        suffix = "IS NOT NULL" if self.negate else "IS NULL"
        return f"({self.operand.text()} {suffix})"


@dataclass
class AggCall(CypherExpr):
    fn: str  # count | sum | min | max | avg
    arg: CypherExpr | None  # None = count(*)
    distinct: bool = False

    def text(self) -> str:
        inner = "*" if self.arg is None else self.arg.text()
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.fn}({prefix}{inner})"


@dataclass
class FuncCall(CypherExpr):
    name: str
    args: list[CypherExpr]

    def text(self) -> str:
        return f"{self.name}({', '.join(a.text() for a in self.args)})"


# -- patterns & clauses --------------------------------------------------------------


@dataclass
class NodePattern:
    var: str | None
    label: str | None
    properties: dict[str, CypherExpr] = field(default_factory=dict)


@dataclass
class RelPattern:
    type: str
    direction: str  # "out" | "in" | "both"
    min_hops: int = 1
    max_hops: int = 1


@dataclass
class PathPattern:
    nodes: list[NodePattern]
    rels: list[RelPattern]


@dataclass
class MatchClause:
    path: PathPattern
    where: CypherExpr | None = None
    optional: bool = False


@dataclass
class ReturnItem:
    expr: CypherExpr
    alias: str | None = None

    @property
    def name(self) -> str:
        return self.alias if self.alias is not None else self.expr.text()


@dataclass
class WithClause:
    items: list[ReturnItem]
    distinct: bool = False
    where: CypherExpr | None = None


@dataclass
class OrderItem:
    expr: CypherExpr
    ascending: bool = True


@dataclass
class ReturnClause:
    items: list[ReturnItem]
    distinct: bool = False
    order: list[OrderItem] = field(default_factory=list)
    limit: int | None = None


@dataclass
class CypherQuery:
    clauses: list[MatchClause | WithClause | ReturnClause]
