"""Frontend layer: query-language parsers producing the logical IR."""

from .cypher import compile_cypher, parse_cypher

__all__ = ["compile_cypher", "parse_cypher"]
