"""Routing between pooled and in-process execution.

The coordinator sits inside :meth:`GraphEngineService._execute_guarded`
when ``config.workers > 1``.  For each read query it

1. exports (or reuses) the pinned snapshot into shared memory,
2. tries partitioned **scatter-gather** when the plan decomposes
   (:func:`~repro.parallel.partition.analyze_plan`) and the source is
   large enough to be worth splitting,
3. otherwise offloads the **whole query** to one warm worker,
4. and returns ``None`` — *run in-process* — whenever pooled execution
   is impossible (foreign store, unserializable plan, worker crash or
   pool exhaustion).  Fallbacks are counted, never silent: the reason
   lands in ``ExecStats.degrade_reasons`` and the engine's pooled
   fallback counter.

Library errors raised inside a worker (bad filter expression, unknown
property, cooperative :class:`~repro.errors.QueryTimeout`, …) propagate
to the caller exactly as the in-process path would raise them —
only *infrastructure* failures trigger the in-process fallback.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import (
    GesError,
    PlanError,
    QueryTimeout,
    StorageError,
    WorkerCrash,
    WorkerError,
)
from ..exec.base import ExecStats, QueryResult
from ..obs.clock import now
from ..plan.logical import LogicalPlan
from ..resilience.watchdog import current_deadline
from ..storage.graph import GraphReadView
from ..testkit.plans import serialize_plan
from .partition import analyze_plan
from .pool import (
    SnapshotTask,
    WorkerPool,
    merge_obs_payload,
    merge_stats_payload,
    raise_worker_reply,
    shared_pool,
)
from .scatter import scatter_execute
from .shm import SnapshotExporter

#: Failures that mean "the pool couldn't serve this", not "the query is
#: wrong" — the coordinator answers them by falling back in-process.
_FALLBACK_ERRORS = (WorkerCrash, WorkerError, PlanError, StorageError)


class ParallelCoordinator:
    """Pooled-execution routing for one engine instance."""

    def __init__(self, engine: Any) -> None:
        config = engine.config
        self.engine = engine
        self.workers = int(config.workers)
        self.partitions = int(config.partitions) or self.workers
        self.kind = config.partition_kind
        self.scatter_min_rows = int(config.scatter_min_rows)
        self.default_timeout_s = config.pool_task_timeout_ms / 1e3
        self.ship_obs = bool(config.metrics)
        self.exporter = SnapshotExporter(engine.store)
        # Routing counters (introspection + tests).
        self.pooled_queries = 0
        self.scatter_queries = 0
        self.whole_queries = 0
        self.fallbacks = 0

    @property
    def pool(self) -> WorkerPool:
        """The process-wide pool for this worker count (lazy, shared)."""
        return shared_pool(self.workers)

    # -- execution ----------------------------------------------------------

    def try_execute(
        self,
        query: str | LogicalPlan,
        physical: LogicalPlan,
        view: GraphReadView,
        params: Mapping[str, Any] | None,
        stats: ExecStats,
    ) -> QueryResult | None:
        """Run *physical* on the pool, or None to request in-process.

        ``None`` always means "the in-process path must run this"; typed
        query errors and :class:`QueryTimeout` raise through unchanged.
        """
        engine = self.engine
        if view.store is not engine.store:
            # A view over some other store: the exporter's staleness key
            # and pin lifecycle are tied to *our* store, so don't pool it.
            return None
        deadline = current_deadline()
        if deadline is not None:
            deadline.check()  # raises QueryTimeout when already expired
            timeout_s = deadline.remaining()
        else:
            timeout_s = self.default_timeout_s
        try:
            snapshot = self.exporter.acquire(view)
        except GesError as exc:
            self._fall_back(stats, f"export:{type(exc).__name__}")
            return None
        started = now()
        # The dispatch span opens *before* the workers run so that the
        # grafted worker subtrees (and any in-process suffix operators)
        # nest under it; _count / the error paths close it with the route
        # taken, so explain_analyze always shows a well-formed tree.
        if stats.trace is not None:
            stats.trace.begin("pooled")
        try:
            analysis = analyze_plan(
                physical, order_preserving=self.kind == "range"
            )
            if analysis is not None:
                result = scatter_execute(
                    physical,
                    analysis,
                    view,
                    params,
                    stats,
                    self.pool,
                    snapshot,
                    num_partitions=self.partitions,
                    kind=self.kind,
                    timeout_s=timeout_s,
                    min_rows=self.scatter_min_rows,
                    obs=self.ship_obs,
                )
                if result is not None:
                    stats.total_seconds += now() - started
                    self._count(stats, "scatter", partitions=self.partitions)
                    self.scatter_queries += 1
                    return result
            return self._run_whole(
                query, snapshot, params, stats, timeout_s, started
            )
        except QueryTimeout:
            self._end_span(stats, outcome="timeout")
            raise
        except _FALLBACK_ERRORS as exc:
            self._end_span(stats, outcome="fallback")
            self._fall_back(stats, type(exc).__name__)
            return None
        finally:
            self.exporter.release(snapshot)

    def _run_whole(
        self,
        query: str | LogicalPlan,
        snapshot: Any,
        params: Mapping[str, Any] | None,
        stats: ExecStats,
        timeout_s: float,
        started: float,
    ) -> QueryResult:
        """Offload the complete query to one warm worker."""
        engine = self.engine
        payload: dict[str, Any] = {
            "op": "exec",
            "mode": "whole",
            "executor": engine.config.executor,
            "optimizer": engine.config.optimizer,
            "params": dict(params) if params else None,
            "snapshot_id": snapshot.snapshot_id,
            "version": snapshot.manifest["version"],
            "timeout_s": timeout_s,
        }
        if self.ship_obs:
            payload["obs"] = True
        if stats.trace is not None:
            payload["trace"] = True
        if isinstance(query, str):
            payload["cypher"] = query
        else:
            payload["plan"] = serialize_plan(query)  # PlanError -> fallback
        dispatched = now()
        reply = self.pool.run(
            SnapshotTask(
                payload,
                snapshot_id=snapshot.snapshot_id,
                manifest=snapshot.manifest,
            ),
            timeout_s=timeout_s,
        )
        if not reply.get("ok"):
            raise_worker_reply(reply)
        merge_stats_payload(stats, reply.get("stats"))
        extra = {"mode": "whole"}
        if reply.get("plan_cache"):
            extra["plan_cache"] = reply["plan_cache"]
        merge_obs_payload(stats, reply.get("obs"), dispatched, **extra)
        rows = [tuple(row) for row in reply["rows"]]
        stats.rows_out = len(rows)
        stats.total_seconds += now() - started
        self._count(stats, "whole")
        self.whole_queries += 1
        return QueryResult(list(reply["columns"]), rows, stats)

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, stats: ExecStats, mode: str, **attrs: Any) -> None:
        self.pooled_queries += 1
        counter = getattr(self.engine, "_m_pooled", None)
        if counter is not None:
            counter.inc()
        stats.route = mode
        self._end_span(stats, mode=mode, workers=self.workers, **attrs)

    def _end_span(self, stats: ExecStats, **attrs: Any) -> None:
        if stats.trace is not None:
            stats.trace.end(**attrs)

    def _fall_back(self, stats: ExecStats, reason: str) -> None:
        self.fallbacks += 1
        stats.note_degrade(f"pooled:{reason}")
        counter = getattr(self.engine, "_m_pool_fallbacks", None)
        if counter is not None:
            counter.inc()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release every exported segment (the shared pool stays up)."""
        self.exporter.release_all()

    def describe(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "partitions": self.partitions,
            "partition_kind": self.kind,
            "scatter_min_rows": self.scatter_min_rows,
            "pooled_queries": self.pooled_queries,
            "scatter_queries": self.scatter_queries,
            "whole_queries": self.whole_queries,
            "fallbacks": self.fallbacks,
            "exports": self.exporter.exports_total,
            "export_reuses": self.exporter.reuses_total,
        }
