"""Vertex partitioning and scatter-plan analysis.

A plan is scatterable when it starts from a row source the coordinator can
enumerate (``NodeScan`` / ``NodeByRows``) followed by a **row-local**
prefix — operators whose every output row derives from exactly one source
row (``Expand`` in all its variants, ``GetProperty``, ``Filter``,
``Project``).  Partitioning the source rows and concatenating the
partition outputs in partition order then reproduces the in-process
prefix block *byte for byte* under range partitioning, because range
partitions are contiguous chunks of the scan order.

The tail (everything after the prefix) is re-run at the coordinator over
the merged partials, which keeps semantics exact for arbitrary tails.  To
shrink what workers ship back, known tail heads are additionally **pushed
down**:

* ``TopK`` / ``OrderBy``+``Limit`` / ``Limit`` — each partition returns
  its local top-k/first-n; the global winner set is provably contained in
  the union, and the coordinator's re-run selects it with identical
  tie-breaks (stable sort over scan-ordered candidates).
* ``Distinct`` — local distinct preserves first occurrences per chunk;
  the coordinator's re-distinct restores global first-occurrence order.
* ``Aggregate`` with every function in :data:`COMBINABLE_AGG_FNS` — local
  aggregation plus an order-preserving partial merge at the coordinator.
  ``sum``/``avg`` are deliberately excluded: float accumulation order
  would break byte-identity across partition counts.

Hash partitioning interleaves scan order, so it only admits
order-insensitive tails (no Limit/TopK/OrderBy anywhere); range is the
default and the only mode with byte-identical results guaranteed across
worker and partition counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..plan.logical import (
    Aggregate,
    AggregateTopK,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByRows,
    NodeScan,
    OrderBy,
    Project,
    TopK,
)

#: Aggregate functions with an exact, order-insensitive partial merge.
COMBINABLE_AGG_FNS = frozenset({"count", "min", "max"})

#: Operators whose output rows each derive from exactly one input row.
_ROW_LOCAL = (Expand, GetProperty, Filter, Project)

#: Operators that make a tail order-sensitive (hash partitioning rejects).
_ORDER_SENSITIVE = (Limit, TopK, OrderBy, AggregateTopK)

#: Parameter name carrying each partition's source rows.
ROWS_PARAM = "__scatter_rows__"


@dataclass(frozen=True)
class ScatterPlan:
    """Decomposition of one logical plan for scatter-gather execution.

    Workers run ``[NodeByRows(source), *prefix, *pushed]`` over their
    partition's rows; the coordinator merges the partial blocks (via
    ``combine`` for pushed aggregates, plain concat otherwise) and re-runs
    ``suffix`` to produce the final block.
    """

    source: LogicalOp
    prefix: tuple[LogicalOp, ...]
    pushed: tuple[LogicalOp, ...]
    suffix: tuple[LogicalOp, ...]
    combine: Aggregate | None


def _combinable(aggs) -> bool:
    return all(spec.fn in COMBINABLE_AGG_FNS for spec in aggs)


def analyze_plan(plan: LogicalPlan, order_preserving: bool = True) -> ScatterPlan | None:
    """Decompose *plan* for scatter-gather, or None when not scatterable.

    ``order_preserving`` is True for range partitioning (contiguous
    chunks); hash partitioning passes False and loses order-sensitive
    tails.
    """
    if not plan.ops or not isinstance(plan.ops[0], (NodeScan, NodeByRows)):
        return None
    source = plan.ops[0]
    rest = list(plan.ops[1:])

    prefix: list[LogicalOp] = []
    while rest and isinstance(rest[0], _ROW_LOCAL):
        prefix.append(rest.pop(0))
    tail = rest
    if not prefix and not tail:
        return None  # a bare scan gains nothing from scattering

    if not order_preserving and any(isinstance(op, _ORDER_SENSITIVE) for op in tail):
        return None

    pushed: tuple[LogicalOp, ...] = ()
    combine: Aggregate | None = None
    suffix: tuple[LogicalOp, ...] = tuple(tail)
    if tail:
        head = tail[0]
        if isinstance(head, Aggregate) and _combinable(head.aggs):
            pushed = (head,)
            combine = head
            suffix = tuple(tail[1:])
        elif isinstance(head, AggregateTopK) and _combinable(head.aggs):
            # Decompose: local aggregate partials, merged exactly, then the
            # project/top-k stage re-runs over the merged groups.
            partial = Aggregate(group_by=head.group_by, aggs=head.aggs)
            pushed = (partial,)
            combine = partial
            reorder: list[LogicalOp] = []
            if head.project_items is not None:
                reorder.append(Project(items=head.project_items))
            reorder.append(TopK(keys=head.keys, n=head.n))
            suffix = tuple(reorder) + tuple(tail[1:])
        elif isinstance(head, TopK) and order_preserving:
            pushed = (head,)
        elif isinstance(head, Distinct):
            pushed = (head,)
        elif (
            isinstance(head, OrderBy)
            and len(tail) > 1
            and isinstance(tail[1], Limit)
            and order_preserving
        ):
            pushed = (head, tail[1])
        elif isinstance(head, Limit) and order_preserving:
            pushed = (head,)
    return ScatterPlan(
        source=source,
        prefix=tuple(prefix),
        pushed=pushed,
        suffix=suffix,
        combine=combine,
    )


def partition_plan(analysis: ScatterPlan) -> LogicalPlan:
    """The per-partition worker plan (source rows arrive via ROWS_PARAM)."""
    source = analysis.source
    ops: list[LogicalOp] = [
        NodeByRows(var=source.var, label=source.label, rows_param=ROWS_PARAM)
    ]
    ops.extend(analysis.prefix)
    ops.extend(analysis.pushed)
    return LogicalPlan(ops=ops, returns=None)


def partition_rows(
    rows: np.ndarray, num_partitions: int, kind: str = "range"
) -> list[np.ndarray]:
    """Split source rows into at most *num_partitions* non-empty parts.

    ``range`` keeps contiguous scan-order chunks (deterministic and
    order-preserving); ``hash`` assigns by ``row % P`` (balances skew,
    loses scan-order contiguity).
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    parts_n = max(int(num_partitions), 1)
    if kind == "range":
        parts = np.array_split(rows, parts_n)
    elif kind == "hash":
        parts = [rows[rows % parts_n == i] for i in range(parts_n)]
    else:
        raise ValueError(f"unknown partition kind {kind!r}")
    return [p for p in parts if len(p)]
