"""Shared-memory snapshot export/attach for the worker pool.

One pinned read view is exported as **one** ``multiprocessing.shared_memory``
segment holding every fixed-width array of the graph — property columns,
validity bitmaps, tombstone lists, creation-version stamps, and the CSR
adjacency arrays (offsets / lengths / targets / edge properties / MVCC
stamps) — at 64-byte-aligned offsets.  A small picklable **manifest** maps
logical names to (dtype, count, offset) specs; a worker attaches by segment
name and rebuilds a read-only :class:`~repro.storage.graph.GraphStore`
whose numeric arrays are zero-copy views over the mapping.

STRING columns travel either dictionary-encoded (int32 codes in the
segment, the unique values in the manifest) or as UTF-8 blobs with an
``int64`` offsets array and a presence mask.

Exactness: the export is a *physical* clone — row indices, tombstones, and
version stamps are preserved bit-for-bit, so coordinator row ids remain
valid inside workers.  Copy-on-write pre-images recorded by transactions
that committed after the pinned version are patched back into the exported
columns, so a worker needs no overlay at all.

Lifecycle: :class:`SnapshotExporter` keys exports by
``(store.mutation_epoch, view.version)`` and refcounts attachers on the
coordinator side; a stale export is retired (unlinked) as soon as the last
in-flight query releases it.  Unlink-while-mapped is safe on Linux: the
name disappears but existing worker mappings persist until they close.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
import weakref
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import StorageError
from ..obs.events import EVENTS
from ..obs.metrics import REGISTRY
from ..storage.adjacency import AdjacencyList
from ..storage.catalog import AdjacencyKey, Direction
from ..storage.graph import GraphReadView, GraphStore
from ..storage.io import _schema_from_dict, _schema_to_dict
from ..storage.properties import PropertyColumn
from ..types import DataType

#: Every segment this module creates is named ``ges-snap-<pid>-<nonce>`` so
#: tests can audit ``/dev/shm`` for leaks by prefix.
SEGMENT_PREFIX = "ges-snap-"

_ALIGN = 64

# ---------------------------------------------------------------------------
# Process-global segment tracking (leak safety net)

_LIVE_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.Lock()


def _track(segment: shared_memory.SharedMemory) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment


def _untrack(name: str) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(name, None)


def created_segment_names() -> list[str]:
    """Names of segments created by this process and not yet unlinked."""
    with _LIVE_LOCK:
        return sorted(_LIVE_SEGMENTS)


def _disarm(segment: shared_memory.SharedMemory) -> None:
    """Neutralize a segment whose close() hit BufferError.

    Numpy views still reference the mapping, so it cannot be closed *now* —
    dropping the handle's own references lets plain refcounting free the
    memoryview and mmap when the last view dies, and stops
    ``SharedMemory.__del__`` from retrying the close (and printing
    "cannot close exported pointers exist") at interpreter exit.
    """
    segment._buf = None  # type: ignore[attr-defined]
    segment._mmap = None  # type: ignore[attr-defined]


def _unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink (and best-effort close) one created segment."""
    _untrack(segment.name)
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    try:
        segment.close()
    except BufferError:
        # A numpy view is still alive somewhere; the name is already gone.
        _disarm(segment)


def _cleanup_at_exit() -> None:
    with _LIVE_LOCK:
        segments = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for segment in segments:
        try:
            segment.unlink()
        except Exception:
            pass
        try:
            segment.close()
        except BufferError:
            _disarm(segment)
        except Exception:
            pass


atexit.register(_cleanup_at_exit)


def system_segment_names(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Segment names matching *prefix* visible system-wide (leak audit).

    Scans ``/dev/shm`` on Linux; falls back to this process's created-set
    elsewhere.
    """
    base = Path("/dev/shm")
    if base.is_dir():
        return sorted(p.name for p in base.iterdir() if p.name.startswith(prefix))
    return [n for n in created_segment_names() if n.startswith(prefix)]


# ---------------------------------------------------------------------------
# Segment writing


class _ArrayBundle:
    """Accumulates arrays, assigns aligned offsets, then writes one segment."""

    def __init__(self) -> None:
        self.specs: dict[str, dict] = {}
        self._chunks: list[tuple[int, bytes]] = []
        self._cursor = 0
        self._counter = 0

    def _reserve(self, payload: bytes) -> int:
        offset = (self._cursor + _ALIGN - 1) & ~(_ALIGN - 1)
        self._cursor = offset + len(payload)
        self._chunks.append((offset, payload))
        return offset

    def put(self, array: np.ndarray | None) -> str | None:
        """Register one 1-D array; returns its manifest key (None passthrough)."""
        if array is None:
            return None
        key = f"a{self._counter}"
        self._counter += 1
        if array.dtype == object:
            self.specs[key] = self._encode_utf8(array)
        else:
            contiguous = np.ascontiguousarray(array)
            self.specs[key] = {
                "kind": "raw",
                "dtype": contiguous.dtype.str,
                "count": len(contiguous),
                "offset": self._reserve(contiguous.tobytes()),
            }
        return key

    def _encode_utf8(self, array: np.ndarray) -> dict:
        """Object array -> UTF-8 blob + offsets + presence mask."""
        n = len(array)
        present = np.zeros(n, dtype=bool)
        offsets = np.zeros(n + 1, dtype=np.int64)
        pieces: list[bytes] = []
        total = 0
        for i, value in enumerate(array):
            if value is not None:
                if not isinstance(value, str):
                    raise StorageError(
                        f"cannot export non-string object value {type(value).__name__}"
                    )
                encoded = value.encode("utf-8")
                pieces.append(encoded)
                present[i] = True
                total += len(encoded)
            offsets[i + 1] = total
        return {
            "kind": "utf8",
            "count": n,
            "data_bytes": total,
            "data": self._reserve(b"".join(pieces)),
            "offsets": self._reserve(offsets.tobytes()),
            "present": self._reserve(present.tobytes()),
        }

    def write(self, name: str) -> shared_memory.SharedMemory:
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=self._cursor + _ALIGN
        )
        for offset, payload in self._chunks:
            segment.buf[offset : offset + len(payload)] = payload
        return segment


def _read_array(buf: memoryview, spec: dict) -> np.ndarray:
    """Decode one manifest array spec against a mapped segment buffer."""
    if spec["kind"] == "raw":
        array = np.frombuffer(
            buf, dtype=np.dtype(spec["dtype"]), count=spec["count"], offset=spec["offset"]
        )
        array.flags.writeable = False
        return array
    # utf8 object array: decoded into process-local objects (strings cannot
    # be shared zero-copy), presence holes become None.
    n = spec["count"]
    offsets = np.frombuffer(buf, dtype=np.int64, count=n + 1, offset=spec["offsets"])
    present = np.frombuffer(buf, dtype=bool, count=n, offset=spec["present"])
    data = bytes(buf[spec["data"] : spec["data"] + spec["data_bytes"]])
    out = np.empty(n, dtype=object)
    for i in range(n):
        if present[i]:
            out[i] = data[offsets[i] : offsets[i + 1]].decode("utf-8")
    return out


# ---------------------------------------------------------------------------
# Export


def _collect_patches(view: GraphReadView) -> dict[str, set[int]]:
    """Rows per label whose exported values may need overlay patching."""
    if view.overlay is None or view.version is None:
        return {}
    patches: dict[str, set[int]] = {}
    overridden = getattr(view.overlay, "overridden_vertices", None)
    if overridden is None:
        raise StorageError("overlay does not expose overridden vertices")
    for label, row in overridden():
        patches.setdefault(label, set()).add(row)
    return patches


def _export_column(
    bundle: _ArrayBundle,
    view: GraphReadView,
    label: str,
    column: PropertyColumn,
    count: int,
    patched_rows: set[int],
) -> dict:
    """Manifest entry for one property column (patching COW pre-images)."""
    entry: dict[str, Any] = {"dtype": column.dtype.value}
    needs_patch = bool(patched_rows)
    if column.is_dict_encoded and not needs_patch:
        entry["kind"] = "dict"
        entry["dict_values"] = list(column._dict_values)
        entry["dict_codes"] = bundle.put(column._dict_codes[:count])
        entry["validity"] = bundle.put(column.validity_mask())
        return entry
    values = column.view()
    mask = column.validity_mask()
    if needs_patch:
        values = values.copy()
        mask = mask.copy() if mask is not None else np.ones(count, dtype=bool)
        for row in patched_rows:
            if row >= count:
                continue
            overridden, value = view.overlay.resolve(
                label, row, column.name, view.version
            )
            if not overridden:
                continue
            if value is None:
                mask[row] = False
                values[row] = column.dtype.fill_value()
            else:
                mask[row] = True
                values[row] = value
        if mask.all():
            mask = None
    if values.dtype == object:
        # Presence already travels inside the utf8 encoding; fold the
        # validity mask into the value holes.
        if mask is not None:
            values = values.copy()
            values[~mask] = None
        entry["kind"] = "utf8"
        entry["values"] = bundle.put(values)
        entry["validity"] = None
    else:
        entry["kind"] = "raw"
        entry["values"] = bundle.put(values)
        entry["validity"] = bundle.put(mask)
    return entry


def export_view(view: GraphReadView) -> tuple[dict, shared_memory.SharedMemory]:
    """Export *view*'s store into one shared-memory segment + manifest.

    The manifest is picklable and self-contained: together with the named
    segment it is everything a worker needs to rebuild an equivalent
    read-only store.
    """
    store = view.store
    bundle = _ArrayBundle()
    patches = _collect_patches(view)

    tables: dict[str, dict] = {}
    for label in store.schema.vertex_labels:
        table = store.table(label)
        count = len(table)
        created = table._created_versions
        if created is not None:
            stamped = np.zeros(max(count, 1), dtype=np.int64)
            m = min(len(created), count)
            stamped[:m] = created[:m]
        else:
            stamped = None
        tombstones = (
            np.fromiter(sorted(table._tombstones), dtype=np.int64)
            if table._tombstones
            else None
        )
        patched_rows = patches.get(label, set())
        tables[label] = {
            "count": count,
            "tombstones": bundle.put(tombstones),
            "created_versions": bundle.put(stamped),
            "columns": {
                name: _export_column(
                    bundle, view, label, table.column(name), count, patched_rows
                )
                for name in table.column_names
            },
        }

    adjacency: list[dict] = []
    for key, adj in store._adjacency.items():
        num_src = adj._num_src
        data_length = adj._data_length
        adjacency.append(
            {
                "src": key.src_label,
                "edge": key.edge_label,
                "dst": key.dst_label,
                "direction": key.direction.value,
                "num_src": num_src,
                "data_length": data_length,
                "offsets": bundle.put(adj._offsets[:num_src]),
                "lengths": bundle.put(adj._lengths[:num_src]),
                "targets": bundle.put(adj._targets[:data_length]),
                "has_tombstones": adj._has_tombstones,
                "created": bundle.put(
                    adj._created[:data_length] if adj._created is not None else None
                ),
                "deleted": bundle.put(
                    adj._deleted[:data_length] if adj._deleted is not None else None
                ),
                "props": {
                    name: {
                        "values": bundle.put(array[:data_length]),
                        "validity": bundle.put(
                            adj._prop_valid.get(name)[:data_length]
                            if adj._prop_valid.get(name) is not None
                            else None
                        ),
                    }
                    for name, array in adj._props.items()
                },
            }
        )

    name = f"{SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}"
    segment = bundle.write(name)
    _track(segment)
    manifest = {
        "snapshot_id": name,
        "segment": name,
        "version": view.version,
        "schema": _schema_to_dict(store.schema),
        "arrays": bundle.specs,
        "tables": tables,
        "adjacency": adjacency,
    }
    return manifest, segment


# ---------------------------------------------------------------------------
# Attach


def _attach_column(
    buf: memoryview, arrays: dict, name: str, entry: dict, count: int
) -> PropertyColumn:
    dtype = DataType(entry["dtype"])
    if entry["kind"] == "dict":
        codes = _read_array(buf, arrays[entry["dict_codes"]])
        validity = (
            _read_array(buf, arrays[entry["validity"]])
            if entry.get("validity") is not None
            else None
        )
        return PropertyColumn.from_backing(
            name,
            dtype,
            data=None,
            validity=validity,
            length=count,
            dict_values=entry["dict_values"],
            dict_codes=codes,
        )
    values = _read_array(buf, arrays[entry["values"]])
    if entry["kind"] == "utf8":
        validity = np.asarray([v is not None for v in values], dtype=bool)
        if validity.all():
            validity = None
    else:
        validity = (
            _read_array(buf, arrays[entry["validity"]])
            if entry.get("validity") is not None
            else None
        )
    return PropertyColumn.from_backing(
        name, dtype, data=values, validity=validity, length=count
    )


def attach_snapshot(
    manifest: dict,
) -> tuple[GraphStore, shared_memory.SharedMemory]:
    """Rebuild a read-only store from an exported snapshot (worker side).

    Numeric arrays are zero-copy views over the mapped segment; string
    payloads are decoded into process-local objects once per attach.  The
    caller owns the returned segment handle and must keep it (and hence
    the mapping) alive for as long as the store is used.
    """
    # Attaching must not (re-)register the name with the resource tracker:
    # the creator owns the unlink, and under fork all processes feed one
    # tracker, so an attach-side entry would be double-removed (attach
    # unregister + creator unlink) and the tracker would log KeyErrors.
    # CPython < 3.13 has no track=False, so registration is suppressed.
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        segment = shared_memory.SharedMemory(name=manifest["segment"])
    finally:
        resource_tracker.register = register  # type: ignore[assignment]
    buf = segment.buf
    arrays = manifest["arrays"]
    schema = _schema_from_dict(manifest["schema"])
    store = GraphStore(schema)

    for label, tdata in manifest["tables"].items():
        count = tdata["count"]
        columns = {
            name: _attach_column(buf, arrays, name, entry, count)
            for name, entry in tdata["columns"].items()
        }
        tombstones = (
            _read_array(buf, arrays[tdata["tombstones"]])
            if tdata["tombstones"] is not None
            else ()
        )
        created = (
            _read_array(buf, arrays[tdata["created_versions"]])
            if tdata["created_versions"] is not None
            else None
        )
        store.table(label).attach_backing(columns, count, tombstones, created)

    for adata in manifest["adjacency"]:
        key = AdjacencyKey(
            adata["src"], adata["edge"], adata["dst"], Direction(adata["direction"])
        )
        definition = schema.edge_definition(adata["edge"], *(
            (adata["src"], adata["dst"])
            if Direction(adata["direction"]) is Direction.OUT
            else (adata["dst"], adata["src"])
        ))
        props: dict[str, np.ndarray] = {}
        prop_valid: dict[str, np.ndarray | None] = {}
        for name, pdata in adata["props"].items():
            props[name] = _read_array(buf, arrays[pdata["values"]])
            prop_valid[name] = (
                _read_array(buf, arrays[pdata["validity"]])
                if pdata["validity"] is not None
                else None
            )
        store._adjacency[key] = AdjacencyList.from_backing(
            key,
            definition.properties,
            num_src=adata["num_src"],
            data_length=adata["data_length"],
            offsets=_read_array(buf, arrays[adata["offsets"]]),
            lengths=_read_array(buf, arrays[adata["lengths"]]),
            targets=_read_array(buf, arrays[adata["targets"]]),
            props=props,
            prop_valid=prop_valid,
            has_tombstones=adata["has_tombstones"],
            created=(
                _read_array(buf, arrays[adata["created"]])
                if adata["created"] is not None
                else None
            ),
            deleted=(
                _read_array(buf, arrays[adata["deleted"]])
                if adata["deleted"] is not None
                else None
            ),
        )
    return store, segment


def detach_snapshot(
    store: GraphStore | None, segment: shared_memory.SharedMemory
) -> None:
    """Drop an attached snapshot's mapping (worker-side cache eviction)."""
    del store
    try:
        segment.close()
    except BufferError:
        # Numpy views still reference the mapping; it is released when
        # they are garbage-collected.
        _disarm(segment)


# ---------------------------------------------------------------------------
# Coordinator-side lifecycle

#: Live exporters, for the aggregate refcount gauge (weak: an exporter's
#: lifetime is its engine's, and a gauge must never extend it).
_EXPORTERS: "weakref.WeakSet[SnapshotExporter]" = weakref.WeakSet()


def _live_segment_bytes() -> float:
    with _LIVE_LOCK:
        return float(sum(seg.size for seg in _LIVE_SEGMENTS.values()))


def _live_segment_count() -> float:
    with _LIVE_LOCK:
        return float(len(_LIVE_SEGMENTS))


def _total_exporter_refs() -> float:
    total = 0
    for exporter in list(_EXPORTERS):
        current = exporter._current
        if current is not None:
            total += max(current.inflight, 0)
    return float(total)


def _register_shm_gauges() -> None:
    """(Re-)register the pool-health shm gauges.

    Called from every :class:`SnapshotExporter` init rather than at import
    time so a test-side ``REGISTRY.reset()`` cannot permanently drop them:
    the next pooled engine brings them back.
    """
    REGISTRY.gauge(
        "ges_shm_segment_bytes",
        "Total bytes of live exported snapshot segments.",
        fn=_live_segment_bytes,
    )
    REGISTRY.gauge(
        "ges_shm_segments",
        "Live exported snapshot segments created by this process.",
        fn=_live_segment_count,
    )
    REGISTRY.gauge(
        "ges_shm_exporter_refs",
        "In-flight query references across all live snapshot exporters.",
        fn=_total_exporter_refs,
    )


class ExportedSnapshot:
    """One live export: manifest + segment + coordinator-side refcount."""

    __slots__ = ("manifest", "segment", "key", "inflight", "retired")

    def __init__(
        self,
        manifest: dict,
        segment: shared_memory.SharedMemory,
        key: tuple[int, int],
    ) -> None:
        self.manifest = manifest
        self.segment = segment
        self.key = key
        self.inflight = 0
        self.retired = False

    @property
    def snapshot_id(self) -> str:
        return self.manifest["snapshot_id"]


class SnapshotExporter:
    """Refcounted snapshot exports keyed by (mutation_epoch, version).

    ``acquire`` reuses the current export when the store hasn't changed
    since it was taken, otherwise retires it and exports afresh.  A retired
    export is unlinked the moment its last in-flight query releases it —
    tying segment lifetime to the engine's pin/GC lifecycle.
    """

    def __init__(self, store: GraphStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._current: ExportedSnapshot | None = None
        self.exports_total = 0
        self.reuses_total = 0
        self._m_exports = REGISTRY.counter(
            "ges_shm_exports_total", "Snapshot segments exported."
        )
        self._m_retires = REGISTRY.counter(
            "ges_shm_retires_total", "Snapshot segments retired."
        )
        _register_shm_gauges()
        _EXPORTERS.add(self)

    def _staleness_key(self, view: GraphReadView) -> tuple[int, int]:
        version = -1 if view.version is None else view.version
        return (self.store.mutation_epoch, version)

    def acquire(self, view: GraphReadView) -> ExportedSnapshot:
        if view.store is not self.store:
            raise StorageError("view does not belong to this exporter's store")
        key = self._staleness_key(view)
        with self._lock:
            current = self._current
            if current is not None and current.key == key and not current.retired:
                current.inflight += 1
                self.reuses_total += 1
                return current
            if current is not None:
                self._retire_locked(current)
            manifest, segment = export_view(view)
            snapshot = ExportedSnapshot(manifest, segment, key)
            snapshot.inflight = 1
            self._current = snapshot
            self.exports_total += 1
            self._m_exports.inc()
            EVENTS.emit(
                "snapshot_export",
                snapshot=snapshot.snapshot_id,
                bytes=segment.size,
                version=manifest["version"],
            )
            return snapshot

    def release(self, snapshot: ExportedSnapshot) -> None:
        with self._lock:
            snapshot.inflight -= 1
            if snapshot.retired and snapshot.inflight <= 0:
                _unlink_segment(snapshot.segment)

    def _retire_locked(self, snapshot: ExportedSnapshot) -> None:
        if snapshot.retired:
            return
        snapshot.retired = True
        self._m_retires.inc()
        EVENTS.emit("snapshot_retire", snapshot=snapshot.snapshot_id)
        if snapshot is self._current:
            self._current = None
        if snapshot.inflight <= 0:
            _unlink_segment(snapshot.segment)

    def retire_current(self) -> None:
        """Force-retire the cached export (pin released / snapshot GC)."""
        with self._lock:
            if self._current is not None:
                self._retire_locked(self._current)

    def release_all(self) -> None:
        """Retire everything (engine shutdown)."""
        self.retire_current()

    def live_segment_names(self) -> list[str]:
        with self._lock:
            if self._current is None:
                return []
            return [self._current.segment.name]
