"""Multi-core execution: shared-memory snapshots + a worker-process pool.

The engine stays single-writer, but read queries can run on a pool of
worker processes that attach the pinned snapshot's columns, validity
bitmaps, and CSR adjacency arrays directly out of
``multiprocessing.shared_memory`` — zero-copy for every fixed-width
array.  Heavy scans are additionally partitioned across workers with a
scatter-gather combine at the coordinator.

Layout:

- :mod:`.shm` — snapshot export/attach + refcounted segment lifecycle.
- :mod:`.pool` — persistent worker processes and the task protocol.
- :mod:`.partition` — vertex partitioning and scatter-plan analysis.
- :mod:`.coordinator` — routing, scatter-gather, merge, and fallback.
"""

from .coordinator import ParallelCoordinator
from .pool import WorkerPool, shared_pool, shutdown_shared_pools
from .shm import (
    SEGMENT_PREFIX,
    SnapshotExporter,
    attach_snapshot,
    export_view,
    system_segment_names,
)

__all__ = [
    "ParallelCoordinator",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pools",
    "SEGMENT_PREFIX",
    "SnapshotExporter",
    "attach_snapshot",
    "export_view",
    "system_segment_names",
]
