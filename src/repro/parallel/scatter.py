"""Scatter-gather execution of a decomposed plan over the worker pool.

The coordinator enumerates the source rows, partitions them
(:mod:`.partition`), ships one partition plan per part, reassembles the
partial blocks **in partition-index order** (never arrival order — that is
what makes results independent of scheduling), merges (aggregate combine
or plain concat), and re-runs the suffix operators in-process via the flat
executor's ``dispatch_flat``.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.flatblock import FlatBlock
from ..exec.base import ExecStats, ExecutionContext, OpTimer, QueryResult, result_from_flat
from ..exec.flat import dispatch_flat
from ..obs.clock import now
from ..plan.logical import Aggregate, LogicalPlan, NodeScan, resolve_labels
from ..storage.graph import GraphReadView
from ..storage.validity import pack_values
from ..testkit.plans import serialize_plan
from .partition import ROWS_PARAM, ScatterPlan, partition_plan, partition_rows
from .pool import (
    SnapshotTask,
    WorkerPool,
    block_from_payload,
    merge_obs_payload,
    merge_stats_payload,
    raise_worker_reply,
)
from .shm import ExportedSnapshot


def _combine_value(fn: str, a: Any, b: Any) -> Any:
    if fn == "count":
        return int(a) + int(b)
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b) if fn == "min" else max(a, b)


def combine_aggregate_blocks(blocks: list[FlatBlock], agg: Aggregate) -> FlatBlock:
    """Exact partial-aggregate merge preserving global group order.

    Partials arrive in partition order; merging them sequentially makes
    each group's output position its *first occurrence in scan order* —
    identical to what single-process hash aggregation produces, for any
    partition count.
    """
    base = blocks[0]
    names = base.schema  # group_by columns then agg outputs, in plan order
    k = len(agg.group_by)
    merged: dict[tuple, list] = {}
    for block in blocks:
        for row in block.to_pylist():
            key = tuple(row[:k])
            accs = merged.get(key)
            if accs is None:
                merged[key] = list(row[k:])
            else:
                for i, spec in enumerate(agg.aggs):
                    accs[i] = _combine_value(spec.fn, accs[i], row[k + i])
    columns: list[list] = [[] for _ in names]
    for key, accs in merged.items():
        for i, value in enumerate(key):
            columns[i].append(value)
        for j, value in enumerate(accs):
            columns[k + j].append(value)
    out = FlatBlock()
    for i, name in enumerate(names):
        dtype = base.dtype(name)
        data, mask = pack_values(columns[i], dtype)
        out.add_array(name, dtype, data, mask)
    return out


def scatter_execute(
    physical: LogicalPlan,
    analysis: ScatterPlan,
    view: GraphReadView,
    params: Mapping[str, Any] | None,
    stats: ExecStats,
    pool: WorkerPool,
    snapshot: ExportedSnapshot,
    num_partitions: int,
    kind: str = "range",
    timeout_s: float | None = None,
    min_rows: int = 0,
    obs: bool = False,
) -> QueryResult | None:
    """Run *physical* via partitioned scatter-gather.

    Returns None when there is nothing worth scattering (empty source,
    or fewer rows than *min_rows*) — the caller should execute whole or
    in-process.  Worker-side typed errors re-raise here; infrastructure
    failures surface as WorkerCrash/WorkerError for the caller's
    fallback policy.
    """
    source = analysis.source
    if isinstance(source, NodeScan):
        rows = view.all_rows(source.label)
    else:  # NodeByRows
        rows = np.asarray((params or {}).get(source.rows_param, ()), dtype=np.int64)
    if len(rows) < max(int(min_rows), 1):
        return None
    parts = partition_rows(rows, num_partitions, kind)
    plan_payload = serialize_plan(partition_plan(analysis))  # PlanError -> caller
    base_params = dict(params or {})
    traced = stats.trace is not None
    tasks = []
    for part in parts:
        task_params = dict(base_params)
        task_params[ROWS_PARAM] = part
        body: dict[str, Any] = {
            "op": "exec",
            "mode": "partial",
            "plan": plan_payload,
            "params": task_params,
            "snapshot_id": snapshot.snapshot_id,
            "version": snapshot.manifest["version"],
            "timeout_s": timeout_s,
        }
        if obs:
            body["obs"] = True
        if traced:
            body["trace"] = True
        tasks.append(
            SnapshotTask(
                body,
                snapshot_id=snapshot.snapshot_id,
                manifest=snapshot.manifest,
            )
        )
    dispatched = now()
    replies = pool.run_many(tasks, timeout_s=timeout_s)
    blocks: list[FlatBlock] = []
    for index, reply in enumerate(replies):  # partition-index order by construction
        if not reply.get("ok"):
            raise_worker_reply(reply)
        merge_stats_payload(stats, reply.get("stats"))
        merge_obs_payload(
            stats, reply.get("obs"), dispatched, partition=index, mode="partial"
        )
        blocks.append(block_from_payload(reply["block"]))

    if analysis.combine is not None:
        block = combine_aggregate_blocks(blocks, analysis.combine)
    else:
        block = blocks[0]
        for other in blocks[1:]:
            block = block.concat(other)
    stats.note_bytes(block.nbytes)

    ctx = ExecutionContext(view, params, stats)
    ctx.var_labels = resolve_labels(physical, view.schema)
    for op in analysis.suffix:
        with OpTimer(ctx, op.op_name) as timer:
            previous = block
            block = dispatch_flat(block, op, ctx)
            timer.out_bytes = block.nbytes + previous.nbytes
    return result_from_flat(block, physical.returns, ctx.stats)
