"""Persistent worker-process pool and its task protocol.

Workers are spawned once (fork-preferred: a warm worker costs ~10 ms, not
the ~500 ms of a spawn-method interpreter boot) and stay resident.  Each
worker attaches exported snapshots lazily and caches the reconstructed
store keyed by snapshot id, so steady-state tasks carry only a snapshot
*id* — the full manifest travels only on a worker's first touch of a
snapshot (or after cache eviction, negotiated via a ``need_manifest``
round-trip).

Two task modes:

* ``whole`` — the worker compiles (or deserializes) and runs a complete
  query through the registry-resolved optimizer + executor, with its own
  small plan cache; the reply carries final columns/rows.
* ``partial`` — the worker deserializes one partition plan (see
  :mod:`.partition`), runs it through ``execute_flat_block``, and ships
  the resulting flat block's raw arrays back for the coordinator to merge.

Failure semantics: library errors raised inside a worker travel back as
``(type-name, message)`` and are re-raised coordinator-side as the same
typed exception.  A dead pipe means the worker was killed mid-task —
every active worker is recycled (kill + respawn) and
:class:`~repro.errors.WorkerCrash` is raised.  A pool-level timeout
composes with the engine's resilience deadlines: the coordinator passes
the ambient deadline budget down, the worker installs it as its own
cooperative deadline, and the parent enforces budget + grace on the pipe
as a backstop before declaring :class:`~repro.errors.QueryTimeout`.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue
import threading
from collections import OrderedDict, deque
from multiprocessing import connection as mp_connection
from time import sleep
from typing import Any, Sequence

from .. import errors as errors_mod
from ..errors import GesError, QueryTimeout, WorkerCrash, WorkerError
from ..exec.base import ExecStats
from ..obs.clock import now
from ..obs.events import EVENTS
from ..obs.metrics import (
    REGISTRY,
    apply_counter_deltas,
    counter_snapshot,
    drain_counter_deltas,
)
from ..obs.tracing import span_from_wire, span_to_wire
from ..core.flatblock import FlatBlock
from ..types import DataType

#: Extra seconds the parent waits on the pipe beyond the task's own
#: deadline budget before declaring the worker wedged.
_DEADLINE_GRACE_S = 2.0

#: Default pipe-level timeout when no deadline is in force.
DEFAULT_TASK_TIMEOUT_S = 120.0

#: Snapshots cached per worker; older attachments are detached.
_WORKER_SNAPSHOT_CACHE = 2

#: Physical plans cached per worker (whole-query mode).
_WORKER_PLAN_CACHE = 128


# ---------------------------------------------------------------------------
# Wire helpers


def block_to_payload(block: FlatBlock) -> dict:
    """A flat block as picklable raw arrays (worker -> coordinator)."""
    return {
        "length": len(block),
        "columns": [
            (name, block.dtype(name).value, block.array(name), block.validity(name))
            for name in block.schema
        ],
    }


def block_from_payload(payload: dict) -> FlatBlock:
    """Rebuild a flat block from its wire payload (coordinator side)."""
    block = FlatBlock()
    for name, dtype_value, values, validity in payload["columns"]:
        block.add_array(name, DataType(dtype_value), values, validity)
    return block


def stats_to_payload(stats: ExecStats) -> dict:
    """The mergeable subset of a worker's ExecStats."""
    return {
        "op_times": dict(stats.op_times),
        "op_sequence": list(stats.op_sequence),
        "peak_intermediate_bytes": stats.peak_intermediate_bytes,
        "defactor_count": stats.defactor_count,
        "degrade_count": stats.degrade_count,
        "flat_tuples": stats.flat_tuples,
        "ftree_slots": stats.ftree_slots,
    }


def merge_stats_payload(stats: ExecStats, payload: dict | None) -> None:
    """Fold a worker's shipped stats into the coordinator's ExecStats."""
    if not payload:
        return
    for name, seconds in payload["op_times"].items():
        stats.op_times[name] = stats.op_times.get(name, 0.0) + seconds
    stats.op_sequence.extend(tuple(entry) for entry in payload["op_sequence"])
    stats.note_bytes(payload["peak_intermediate_bytes"])
    stats.defactor_count += payload["defactor_count"]
    stats.degrade_count += payload["degrade_count"]
    stats.flat_tuples += payload["flat_tuples"]
    stats.ftree_slots += payload["ftree_slots"]


def merge_obs_payload(
    stats: ExecStats,
    obs: dict | None,
    anchor: float,
    partition: int | None = None,
    **attrs: Any,
) -> None:
    """Fold one worker reply's observability payload into the coordinator.

    * Shipped spans are re-anchored at *anchor* (the coordinator's dispatch
      time) and grafted under the currently open span, stamped with the
      worker pid, snapshot attach outcome, and (for scatter) the partition
      index — this is what turns the old "pooled" stub into a real
      cross-process tree.
    * Counter deltas fold into the global registry exactly once per reply.
    * Worker events are absorbed into the coordinator's event log, tagged
      with the worker pid so the merged stream stays attributable.
    * Per-partition worker timings land in ``stats.partition_times``.
    """
    if not obs:
        return
    pid = obs.get("pid")
    if partition is not None:
        stats.partition_times.append(
            (partition, float(obs.get("task_seconds", 0.0)), int(obs.get("rows", 0)))
        )
    wire = obs.get("spans")
    if wire is not None and stats.trace is not None:
        span = span_from_wire(wire, anchor)
        span.attrs["worker_pid"] = pid
        if obs.get("snapshot"):
            span.attrs["snapshot"] = obs["snapshot"]
        if partition is not None:
            span.attrs["partition"] = partition
        span.attrs.update(attrs)
        stats.trace.current.children.append(span)
    apply_counter_deltas(obs.get("metrics"))
    events = obs.get("events")
    if events:
        EVENTS.absorb(events, worker_pid=pid)


def raise_worker_reply(reply: dict) -> None:
    """Re-raise a worker error reply as its original typed exception."""
    etype = reply.get("etype", "WorkerError")
    message = reply.get("message", "worker failed")
    cls = getattr(errors_mod, etype, None)
    if isinstance(cls, type) and issubclass(cls, GesError):
        raise cls(message)
    raise WorkerError(f"worker raised {etype}: {message}")


# ---------------------------------------------------------------------------
# Worker side


def _worker_main(conn: Any) -> None:
    """Worker-process loop: attach snapshots, run tasks, reply."""
    # Inherited chaos-testing fault injectors belong to the parent's story.
    from ..resilience import faults

    faults.ACTIVE = None
    # The forked event log carries the parent's history; this worker's
    # story starts now.  Drained events ship back with each task reply.
    EVENTS.clear()

    snapshots: OrderedDict[str, tuple[Any, Any]] = OrderedDict()  # id -> (store, segment)
    plans: OrderedDict[tuple, Any] = OrderedDict()
    registry = None
    # Counter-shipping baseline for this worker's lifetime: each task
    # drains increments against it in a single registry walk.
    metrics_baseline = counter_snapshot()
    task_counters: dict[str, Any] = {}  # mode -> bound counter instrument

    def get_store(task: dict) -> tuple[Any, str]:
        """(store, "cached"|"attached") for the task's snapshot."""
        from .shm import attach_snapshot, detach_snapshot

        snapshot_id = task["snapshot_id"]
        cached = snapshots.get(snapshot_id)
        if cached is not None:
            snapshots.move_to_end(snapshot_id)
            return cached[0], "cached"
        manifest = task.get("manifest")
        if manifest is None:
            return None, ""  # coordinator must resend with the manifest
        store, segment = attach_snapshot(manifest)
        EVENTS.emit(
            "snapshot_attach", snapshot=snapshot_id, pid=os.getpid()
        )
        snapshots[snapshot_id] = (store, segment)
        while len(snapshots) > _WORKER_SNAPSHOT_CACHE:
            old_id, (old_store, old_segment) = snapshots.popitem(last=False)
            detach_snapshot(old_store, old_segment)
            EVENTS.emit("snapshot_detach", snapshot=old_id, pid=os.getpid())
        return store, "attached"

    def run_task(task: dict) -> dict:
        nonlocal registry
        from ..resilience.watchdog import Deadline, pop_deadline, push_deadline
        from ..testkit.plans import deserialize_plan

        store, attach_kind = get_store(task)
        if store is None:
            return {"ok": False, "need_manifest": True}
        view = store.read_view(task.get("version"))
        stats = ExecStats()
        # Observability capture is opt-in per task: the coordinator sets
        # "obs" when its engine records metrics and "trace" when the query
        # is traced, so the disabled path pays nothing beyond these gets.
        ship_obs = bool(task.get("obs"))
        traced = bool(task.get("trace"))
        task_started = now()
        if traced:
            stats.begin_trace("worker")
        timeout_s = task.get("timeout_s")
        prev, _ = push_deadline(
            Deadline.after(timeout_s, label="pooled task")
            if timeout_s is not None
            else None
        )
        try:
            if registry is None:
                from ..engine.registry import default_registry

                registry = default_registry()
            if ship_obs:
                counter = task_counters.get(task["mode"])
                if counter is None:
                    counter = REGISTRY.counter(
                        "ges_worker_tasks_total",
                        "Tasks executed inside worker processes, by mode.",
                        mode=task["mode"],
                    )
                    task_counters[task["mode"]] = counter
                counter.inc()
            if task["mode"] == "partial":
                from ..exec.flat import execute_flat_block

                plan = deserialize_plan(task["plan"])
                block, ctx = execute_flat_block(
                    plan, view, params=task.get("params"), stats=stats
                )
                reply = {
                    "ok": True,
                    "block": block_to_payload(block),
                    "stats": stats_to_payload(ctx.stats),
                }
                rows_out = len(block)
            else:
                # whole-query mode
                optimizer = registry.resolve(
                    "execution", "optimizer", task.get("optimizer", "none")
                )
                executor = registry.resolve(
                    "execution", "executor", task.get("executor", "flat")
                )
                cypher = task.get("cypher")
                plan_cache_outcome = None
                if cypher is not None:
                    key = (cypher, task.get("optimizer", "none"))
                    physical = plans.get(key)
                    if physical is None:
                        plan_cache_outcome = "miss"
                        parse = registry.resolve("frontend", "parser", "cypher")
                        physical = optimizer(parse(cypher, store.schema))
                        plans[key] = physical
                        while len(plans) > _WORKER_PLAN_CACHE:
                            plans.popitem(last=False)
                    else:
                        plan_cache_outcome = "hit"
                        plans.move_to_end(key)
                else:
                    physical = optimizer(deserialize_plan(task["plan"]))
                result = executor(physical, view, task.get("params"), stats)
                reply = {
                    "ok": True,
                    "columns": list(result.columns),
                    "rows": [tuple(row) for row in result.rows],
                    "stats": stats_to_payload(result.stats),
                }
                rows_out = len(result.rows)
                if plan_cache_outcome is not None and ship_obs:
                    reply["plan_cache"] = plan_cache_outcome
            if ship_obs or traced:
                obs: dict[str, Any] = {
                    "pid": os.getpid(),
                    "task_seconds": now() - task_started,
                    "rows": rows_out,
                    "snapshot": attach_kind,
                }
                if traced and stats.trace is not None:
                    obs["spans"] = span_to_wire(
                        stats.trace.finish(), base=task_started
                    )
                if ship_obs:
                    obs["metrics"] = drain_counter_deltas(metrics_baseline)
                    obs["events"] = EVENTS.drain()
                reply["obs"] = obs
            return reply
        finally:
            pop_deadline(prev)

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        op = task.get("op")
        if op == "stop":
            break
        if op == "ping":
            conn.send({"ok": True, "pong": True, "pid": mp.current_process().pid})
            continue
        if op == "block":
            # Test hook: hold the task for a while (kill -9 target window).
            sleep(float(task.get("seconds", 30.0)))
            conn.send({"ok": True})
            continue
        try:
            reply = run_task(task)
        except BaseException as exc:  # every failure becomes a typed reply
            reply = {
                "ok": False,
                "etype": type(exc).__name__,
                "emodule": type(exc).__module__,
                "message": str(exc),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    # Detach cached snapshots before exiting so SharedMemory.__del__ has
    # nothing left to complain about (views pin the mappings until GC).
    from .shm import detach_snapshot

    for store, segment in snapshots.values():
        detach_snapshot(store, segment)
    snapshots.clear()
    conn.close()


# ---------------------------------------------------------------------------
# Coordinator side


class SnapshotTask:
    """One task plus the snapshot it runs against.

    The pool decides per worker whether the manifest has to ride along
    (first touch / post-eviction) or the snapshot id alone suffices.
    """

    __slots__ = ("payload", "snapshot_id", "manifest")

    def __init__(
        self, payload: dict, snapshot_id: str | None = None, manifest: dict | None = None
    ) -> None:
        self.payload = payload
        self.snapshot_id = snapshot_id
        self.manifest = manifest


class _Worker:
    __slots__ = ("proc", "conn", "wid", "known_snapshots", "tasks")

    def __init__(self, proc: Any, conn: Any, wid: int) -> None:
        self.proc = proc
        self.conn = conn
        self.wid = wid
        self.known_snapshots: set[str] = set()
        self.tasks = 0  # tasks dispatched to this worker incarnation


_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_bytes(pid: int | None) -> int:
    """Resident set size of *pid* via /proc (0 where /proc is absent)."""
    if pid is None:
        return 0
    try:
        with open(f"/proc/{pid}/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return 0


#: The pool whose per-worker gauges are live, keyed by worker count.  The
#: metrics registry keeps one callback gauge per (name, labels) forever,
#: so callbacks route through this indirection — when a pool is replaced
#: (shared-pool recreation after shutdown), the gauges follow the newest
#: pool instead of holding a dead one alive.
_METRIC_POOLS: dict[int, "WorkerPool"] = {}


def _pool_worker(workers: int, wid: int) -> "_Worker | None":
    pool = _METRIC_POOLS.get(workers)
    if pool is None or pool.closed or wid >= len(pool._all):
        return None
    return pool._all[wid]


class WorkerPool:
    """A fixed-size pool of persistent worker processes."""

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        default_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise WorkerError("worker pool needs at least one worker")
        methods = mp.get_all_start_methods()
        method = start_method or ("fork" if "fork" in methods else "spawn")
        self._ctx = mp.get_context(method)
        self.num_workers = workers
        self.start_method = method
        self.default_timeout_s = default_timeout_s
        self._idle: queue.Queue[_Worker] = queue.Queue()
        self._all: list[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        self.respawns = 0
        self.tasks_total = 0
        self.crashes = 0
        self.timeouts = 0
        # Pool-health telemetry: counters bound once, per-worker RSS and
        # task-count callback gauges routed through _METRIC_POOLS so they
        # track the live pool incarnation for this worker count.
        pool_label = str(workers)
        self._m_tasks = REGISTRY.counter(
            "ges_pool_tasks_total", "Tasks dispatched to pool workers.",
            pool=pool_label,
        )
        self._m_respawns = REGISTRY.counter(
            "ges_pool_respawns_total", "Workers killed and respawned.",
            pool=pool_label,
        )
        self._m_crashes = REGISTRY.counter(
            "ges_pool_crashes_total", "Workers that died mid-task.",
            pool=pool_label,
        )
        self._m_timeouts = REGISTRY.counter(
            "ges_pool_timeouts_total", "Pooled tasks that hit the pipe deadline.",
            pool=pool_label,
        )
        _METRIC_POOLS[workers] = self
        for wid in range(workers):
            REGISTRY.gauge(
                "ges_worker_rss_bytes",
                "Resident set size of one pool worker.",
                fn=lambda n=workers, w=wid: float(
                    _rss_bytes(getattr(getattr(_pool_worker(n, w), "proc", None), "pid", None))
                ),
                pool=pool_label,
                wid=str(wid),
            )
            REGISTRY.gauge(
                "ges_worker_tasks",
                "Tasks dispatched to one pool worker's current incarnation.",
                fn=lambda n=workers, w=wid: float(
                    getattr(_pool_worker(n, w), "tasks", 0)
                ),
                pool=pool_label,
                wid=str(wid),
            )
        for wid in range(workers):
            worker = self._spawn(wid)
            self._all.append(worker)
            self._idle.put(worker)

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [w.proc.pid for w in self._all if w.proc.pid is not None]

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, wid: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"ges-worker-{wid}",
        )
        proc.start()
        child_conn.close()
        EVENTS.emit("worker_spawn", wid=wid, pid=proc.pid)
        return _Worker(proc, parent_conn, wid)

    def _recycle(self, worker: _Worker) -> None:
        """Kill a misbehaving worker and put a fresh one in its place."""
        old_pid = worker.proc.pid
        try:
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        with self._lock:
            if self._closed:
                return
            fresh = self._spawn(worker.wid)
            for i, existing in enumerate(self._all):
                if existing is worker:
                    self._all[i] = fresh
                    break
            self.respawns += 1
            self._m_respawns.inc()
        EVENTS.emit(
            "worker_respawn", wid=worker.wid, old_pid=old_pid, new_pid=fresh.proc.pid
        )
        self._idle.put(fresh)

    def _note_crash(self, worker: _Worker) -> None:
        """Account one worker death mid-task (counter + event)."""
        self.crashes += 1
        self._m_crashes.inc()
        EVENTS.emit("worker_crash", wid=worker.wid, pid=worker.proc.pid)

    def _timeout(self, budget: float) -> QueryTimeout:
        """Account one pipe-deadline expiry and build the exception."""
        self.timeouts += 1
        self._m_timeouts.inc()
        EVENTS.emit("pool_task_timeout", budget_s=round(budget, 3))
        return QueryTimeout(
            f"pooled task exceeded its deadline (budget {budget:.3f}s)"
        )

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._all)
            self._all.clear()
        if _METRIC_POOLS.get(self.num_workers) is self:
            _METRIC_POOLS.pop(self.num_workers, None)
        for worker in workers:
            try:
                worker.conn.send({"op": "stop"})
            except Exception:
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        # Drain the idle queue so no stale handles linger.
        while True:
            try:
                self._idle.get_nowait()
            except queue.Empty:
                break

    # -- task execution -------------------------------------------------------

    def _checkout(self, timeout_s: float) -> _Worker:
        if self._closed:
            raise WorkerError("worker pool is shut down")
        try:
            return self._idle.get(timeout=max(timeout_s, 0.001))
        except queue.Empty:
            raise WorkerError(
                f"no idle worker within {timeout_s:.1f}s "
                f"({self.num_workers} workers, all busy)"
            ) from None

    def _dispatch(self, worker: _Worker, task: SnapshotTask, force_manifest: bool) -> None:
        body = dict(task.payload)
        if task.snapshot_id is not None:
            if force_manifest or task.snapshot_id not in worker.known_snapshots:
                body["manifest"] = task.manifest
                worker.known_snapshots.add(task.snapshot_id)
        worker.conn.send(body)
        self.tasks_total += 1
        worker.tasks += 1
        self._m_tasks.inc()

    def run(self, task: SnapshotTask, timeout_s: float | None = None) -> dict:
        """Run one task; returns the reply dict (``ok`` or typed error)."""
        return self.run_many([task], timeout_s=timeout_s)[0]

    def run_many(
        self, tasks: Sequence[SnapshotTask], timeout_s: float | None = None
    ) -> list[dict]:
        """Run *tasks* across the pool, multiplexing replies.

        More tasks than workers queue up and are fed to workers as they
        free.  Raises :class:`QueryTimeout` when the overall budget (plus
        grace) elapses and :class:`WorkerCrash` when a worker dies
        mid-task; in both cases every still-active worker is recycled so
        the pool returns to a clean state.
        """
        if not tasks:
            return []
        budget = timeout_s if timeout_s is not None else self.default_timeout_s
        deadline_t = now() + budget + _DEADLINE_GRACE_S
        results: list[dict | None] = [None] * len(tasks)
        pending = deque(enumerate(tasks))
        active: dict[Any, tuple[_Worker, int]] = {}

        def fail_active(error: Exception) -> None:
            for worker, _ in active.values():
                self._recycle(worker)
            active.clear()
            raise error

        def checkout_and_dispatch(
            task: SnapshotTask, force_manifest: bool = False
        ) -> _Worker:
            """Find a worker that accepts *task*, recycling dead ones.

            A worker killed while idle is only discovered when the send
            fails — that must cost a respawn and a retry, not the batch.
            A failed/partial send leaves the pipe in an unknown state, so
            the failing worker is always recycled.
            """
            attempts = 0
            while True:
                remaining = deadline_t - now()
                if remaining <= 0:
                    fail_active(self._timeout(budget))
                worker = self._checkout(remaining)
                try:
                    self._dispatch(worker, task, force_manifest=force_manifest)
                    return worker
                except Exception as exc:
                    self._recycle(worker)
                    attempts += 1
                    if attempts > self.num_workers:
                        fail_active(
                            WorkerError(f"failed to dispatch task: {exc}")
                        )

        while pending and len(active) < self.num_workers:
            idx, task = pending.popleft()
            worker = checkout_and_dispatch(task)
            active[worker.conn] = (worker, idx)

        while active:
            remaining = deadline_t - now()
            if remaining <= 0:
                fail_active(self._timeout(budget))
            ready = mp_connection.wait(list(active), timeout=remaining)
            if not ready:
                fail_active(self._timeout(budget))
            for conn in ready:
                worker, idx = active.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._note_crash(worker)
                    self._recycle(worker)
                    fail_active(
                        WorkerCrash(
                            f"worker {worker.wid} died mid-task "
                            f"(pid {worker.proc.pid})"
                        )
                    )
                if reply.get("need_manifest"):
                    # The worker evicted this snapshot; resend with payload.
                    task = tasks[idx]
                    worker.known_snapshots.discard(task.snapshot_id)
                    try:
                        self._dispatch(worker, task, force_manifest=True)
                        active[conn] = (worker, idx)
                    except Exception:
                        self._recycle(worker)
                        fresh = checkout_and_dispatch(task, force_manifest=True)
                        active[fresh.conn] = (fresh, idx)
                    continue
                results[idx] = reply
                if pending:
                    nidx, ntask = pending.popleft()
                    try:
                        self._dispatch(worker, ntask, force_manifest=False)
                        active[conn] = (worker, nidx)
                    except Exception:
                        self._recycle(worker)
                        fresh = checkout_and_dispatch(ntask)
                        active[fresh.conn] = (fresh, nidx)
                else:
                    self._idle.put(worker)
        return results  # type: ignore[return-value]

    def ping(self, timeout_s: float = 10.0) -> int:
        """Round-trip every worker; returns how many answered."""
        replies = self.run_many(
            [SnapshotTask({"op": "ping"}) for _ in range(self.num_workers)],
            timeout_s=timeout_s,
        )
        return sum(1 for r in replies if r.get("pong"))


# ---------------------------------------------------------------------------
# Shared pools (one per worker count, process-wide)

_SHARED: dict[int, WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide pool for *workers* workers (created lazily).

    Engines share pools so fuzz/oracle runs that open many pooled engine
    instances do not spawn a process storm.
    """
    with _SHARED_LOCK:
        pool = _SHARED.get(workers)
        if pool is None or pool.closed:
            pool = WorkerPool(workers)
            _SHARED[workers] = pool
        return pool


def shutdown_shared_pools() -> None:
    """Stop every shared pool (test teardown / interpreter exit)."""
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shared_pools)
