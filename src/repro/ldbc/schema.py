"""The LDBC SNB schema as a GES label-property-graph catalog.

One simplification relative to the official schema (documented in
DESIGN.md): Post and Comment are unified into a single ``Message`` label
with an ``isPost`` discriminator, mirroring how several reference
implementations (and the SNB spec's own "Message" supertype) treat them.
This keeps every Expand destination label unambiguous without losing any
query semantics — queries that need posts only filter on ``isPost``.
"""

from __future__ import annotations

from ..storage.catalog import EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef
from ..types import DataType

PERSON = "Person"
MESSAGE = "Message"
FORUM = "Forum"
TAG = "Tag"
TAG_CLASS = "TagClass"
PLACE = "Place"
ORGANISATION = "Organisation"


def build_snb_schema() -> GraphSchema:
    """The full SNB Interactive schema (vertex + edge labels)."""
    schema = GraphSchema()

    schema.add_vertex_label(
        VertexLabelDef(
            PERSON,
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("firstName", DataType.STRING),
                PropertyDef("lastName", DataType.STRING),
                PropertyDef("gender", DataType.STRING),
                PropertyDef("birthday", DataType.DATE),
                PropertyDef("creationDate", DataType.TIMESTAMP),
                PropertyDef("locationIP", DataType.STRING),
                PropertyDef("browserUsed", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            MESSAGE,
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("creationDate", DataType.TIMESTAMP),
                PropertyDef("content", DataType.STRING),
                PropertyDef("length", DataType.INT64),
                PropertyDef("isPost", DataType.BOOL),
                PropertyDef("browserUsed", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            FORUM,
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("title", DataType.STRING),
                PropertyDef("creationDate", DataType.TIMESTAMP),
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            TAG,
            [PropertyDef("id", DataType.INT64), PropertyDef("name", DataType.STRING)],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            TAG_CLASS,
            [PropertyDef("id", DataType.INT64), PropertyDef("name", DataType.STRING)],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            PLACE,
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("name", DataType.STRING),
                PropertyDef("type", DataType.STRING),  # city | country | continent
            ],
            primary_key="id",
        )
    )
    schema.add_vertex_label(
        VertexLabelDef(
            ORGANISATION,
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("name", DataType.STRING),
                PropertyDef("type", DataType.STRING),  # university | company
            ],
            primary_key="id",
        )
    )

    creation_date = PropertyDef("creationDate", DataType.TIMESTAMP)
    schema.add_edge_label(EdgeLabelDef("KNOWS", PERSON, PERSON, [creation_date]))
    schema.add_edge_label(EdgeLabelDef("HAS_CREATOR", MESSAGE, PERSON))
    schema.add_edge_label(EdgeLabelDef("REPLY_OF", MESSAGE, MESSAGE))
    schema.add_edge_label(EdgeLabelDef("CONTAINER_OF", FORUM, MESSAGE))
    schema.add_edge_label(
        EdgeLabelDef("HAS_MEMBER", FORUM, PERSON, [PropertyDef("joinDate", DataType.TIMESTAMP)])
    )
    schema.add_edge_label(EdgeLabelDef("HAS_MODERATOR", FORUM, PERSON))
    schema.add_edge_label(EdgeLabelDef("LIKES", PERSON, MESSAGE, [creation_date]))
    schema.add_edge_label(EdgeLabelDef("HAS_TAG", MESSAGE, TAG))
    schema.add_edge_label(EdgeLabelDef("HAS_TAG", FORUM, TAG))
    schema.add_edge_label(EdgeLabelDef("HAS_INTEREST", PERSON, TAG))
    schema.add_edge_label(EdgeLabelDef("IS_LOCATED_IN", PERSON, PLACE))
    schema.add_edge_label(EdgeLabelDef("IS_LOCATED_IN", MESSAGE, PLACE))
    schema.add_edge_label(EdgeLabelDef("IS_LOCATED_IN", ORGANISATION, PLACE))
    schema.add_edge_label(EdgeLabelDef("IS_PART_OF", PLACE, PLACE))
    schema.add_edge_label(
        EdgeLabelDef("STUDY_AT", PERSON, ORGANISATION, [PropertyDef("classYear", DataType.INT64)])
    )
    schema.add_edge_label(
        EdgeLabelDef("WORK_AT", PERSON, ORGANISATION, [PropertyDef("workFrom", DataType.INT64)])
    )
    schema.add_edge_label(EdgeLabelDef("HAS_TYPE", TAG, TAG_CLASS))
    schema.add_edge_label(EdgeLabelDef("IS_SUBCLASS_OF", TAG_CLASS, TAG_CLASS))
    return schema


#: Id-space bases keep entity ids disjoint across labels, LDBC-style.
ID_BASE = {
    PERSON: 1_000,
    FORUM: 100_000,
    MESSAGE: 1_000_000,
    TAG: 10_000,
    TAG_CLASS: 20_000,
    PLACE: 30_000,
    ORGANISATION: 40_000,
}
