"""Deterministic, scaled-down LDBC SNB data generator.

The paper generates SF1–SF300 graphs (4M–970M vertices) with the official
Hadoop Datagen; that is far beyond a pure-Python testbed, so this module
generates *mini scale factors* that keep the SF names and — crucially — the
structural properties the factorized executor's wins depend on:

* skewed KNOWS degrees (lognormal) with community structure (same-city
  bias), so multi-hop expansions fan out the way SNB's do;
* person → forum → post → comment → like activity cascades with reply
  trees, so the IC queries traverse the same shapes;
* dictionary-based properties (first names with collisions for IC1, tag /
  tag-class hierarchies for IC4/6/12, place hierarchy for IC3/11);
* a three-year activity window with dates correlated along reply chains.

Everything is driven by one seeded NumPy generator: the same (scale, seed)
always produces the identical graph, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..storage.graph import GraphStore
from ..types import date_millis, timestamp_millis
from .schema import (
    FORUM,
    ID_BASE,
    MESSAGE,
    ORGANISATION,
    PERSON,
    PLACE,
    TAG,
    TAG_CLASS,
    build_snb_schema,
)

SIM_START = timestamp_millis(2010, 1, 1)
SIM_END = timestamp_millis(2013, 1, 1)
SIM_SPAN = SIM_END - SIM_START


@dataclass(frozen=True)
class ScaleFactor:
    """Size parameters of one mini scale factor."""

    name: str
    persons: int
    avg_degree: float = 7.0
    forums_per_person: float = 0.7
    posts_per_forum: float = 6.0
    comments_per_post: float = 1.8
    likes_per_message: float = 1.0


#: Mini scale factors: the paper's SF names with ~1000x fewer persons but
#: the same relative ordering and densification trend.
SCALE_FACTORS: dict[str, ScaleFactor] = {
    "SF1": ScaleFactor("SF1", persons=150, avg_degree=6.0),
    "SF10": ScaleFactor(
        "SF10", persons=450, avg_degree=8.0, posts_per_forum=7.0, comments_per_post=2.0
    ),
    "SF30": ScaleFactor(
        "SF30", persons=850, avg_degree=9.0, posts_per_forum=7.5, comments_per_post=2.2
    ),
    "SF100": ScaleFactor(
        "SF100", persons=1_600, avg_degree=10.0, posts_per_forum=8.0, comments_per_post=2.4
    ),
    "SF300": ScaleFactor(
        "SF300", persons=2_800, avg_degree=12.0, posts_per_forum=8.5, comments_per_post=2.6
    ),
}

_CONTINENTS = ["Europe", "Asia", "Africa", "North_America", "South_America", "Oceania"]
_COUNTRIES = {
    "Europe": ["France", "Germany", "Spain", "Italy", "Poland", "Sweden"],
    "Asia": ["China", "India", "Japan", "Vietnam", "Thailand"],
    "Africa": ["Egypt", "Nigeria", "Kenya", "Morocco"],
    "North_America": ["United_States", "Canada", "Mexico"],
    "South_America": ["Brazil", "Argentina", "Chile"],
    "Oceania": ["Australia", "New_Zealand"],
}
_CITIES_PER_COUNTRY = 3

_FIRST_NAMES = [
    "Jan", "Maria", "Chen", "Rahul", "Jose", "Anna", "Wei", "Yang", "Ali", "Sara",
    "Ivan", "Olga", "Ken", "Yuki", "Omar", "Fatima", "Hugo", "Emma", "Luis", "Carmen",
    "Paul", "Julia", "Amit", "Priya", "Lars", "Karin", "Pedro", "Lucia", "Abdul", "Mehmet",
]
_LAST_NAMES = [
    "Smith", "Muller", "Zhang", "Kumar", "Garcia", "Silva", "Kowalski", "Tanaka",
    "Hassan", "Okafor", "Nguyen", "Petrov", "Svensson", "Rossi", "Dubois", "Lopez",
    "Yamamoto", "Chen", "Singh", "Ahmed", "Brown", "Novak", "Costa", "Kim", "Sato",
]
_BROWSERS = ["Firefox", "Chrome", "Safari", "Internet Explorer", "Opera"]

_TAG_CLASSES = {
    "Thing": None,
    "Agent": "Thing",
    "Person": "Agent",
    "Organisation": "Agent",
    "CreativeWork": "Thing",
    "MusicalWork": "CreativeWork",
    "WrittenWork": "CreativeWork",
    "Place": "Thing",
}
_TAGS_PER_CLASS = {
    "Person": ["Napoleon", "Einstein", "Mozart_the_person", "Gandhi", "Cleopatra"],
    "Organisation": ["United_Nations", "NATO", "Red_Cross", "UNESCO"],
    "MusicalWork": ["Symphony_No_9", "Bohemian_Rhapsody", "The_Four_Seasons", "Imagine"],
    "WrittenWork": ["Don_Quixote", "War_and_Peace", "Hamlet", "The_Odyssey", "Faust"],
    "Place": ["Great_Wall", "Eiffel_Tower", "Amazon_River", "Sahara"],
    "CreativeWork": ["Mona_Lisa", "Starry_Night"],
    "Agent": ["Anonymous_Collective"],
    "Thing": ["Zeitgeist"],
}

_UNIVERSITIES = [
    "MIT", "Tsinghua", "ETH", "Oxford", "Stanford", "IIT_Delhi", "Sorbonne",
    "TU_Munich", "Tokyo_University", "KAIST", "Politecnico", "Uppsala",
]
_COMPANIES = [
    "Acme_Corp", "Globex", "Initech", "Umbrella", "Stark_Industries", "Wayne_Enterprises",
    "Tyrell", "Cyberdyne", "Hooli", "Pied_Piper", "Wonka_Industries", "Soylent",
    "Oceanic_Air", "Duff_Brewing",
]


@dataclass
class DatasetInfo:
    """Summary handed to parameter generation and the benchmark tables."""

    scale: ScaleFactor
    seed: int
    num_persons: int = 0
    num_forums: int = 0
    num_messages: int = 0
    num_posts: int = 0
    num_comments: int = 0
    num_knows_pairs: int = 0
    country_names: list[str] = field(default_factory=list)
    tag_names: list[str] = field(default_factory=list)
    tag_class_names: list[str] = field(default_factory=list)
    first_names: list[str] = field(default_factory=list)
    sim_start: int = SIM_START
    sim_end: int = SIM_END

    @property
    def num_vertices(self) -> int:
        return self.num_persons + self.num_forums + self.num_messages


@dataclass
class SnbDataset:
    """A loaded SNB graph plus its generation metadata."""

    store: GraphStore
    info: DatasetInfo


def resolve_scale(scale: str | ScaleFactor) -> ScaleFactor:
    """Accept a scale name or an explicit ScaleFactor."""
    if isinstance(scale, ScaleFactor):
        return scale
    try:
        return SCALE_FACTORS[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale factor {scale!r}; known: {sorted(SCALE_FACTORS)}"
        ) from None


def generate(scale: str | ScaleFactor = "SF1", seed: int = 42) -> SnbDataset:
    """Generate and bulk-load one mini-SNB graph."""
    sf = resolve_scale(scale)
    rng = np.random.default_rng(seed)
    store = GraphStore(build_snb_schema())
    info = DatasetInfo(scale=sf, seed=seed)

    places = _load_places(store)
    tags, tag_classes = _load_tags(store)
    organisations = _load_organisations(store, rng, places)
    persons = _load_persons(store, rng, sf, places)
    knows = _load_knows(store, rng, sf, persons)
    _load_person_tags_and_orgs(store, rng, persons, tags, organisations)
    forums = _load_forums(store, rng, sf, persons, knows, tags)
    messages = _load_messages(store, rng, sf, persons, knows, forums, tags, places)
    _load_likes(store, rng, sf, persons, knows, messages)

    info.num_persons = len(persons["id"])
    info.num_forums = len(forums["id"])
    info.num_messages = len(messages["id"])
    info.num_posts = int(np.sum(messages["isPost"]))
    info.num_comments = info.num_messages - info.num_posts
    info.num_knows_pairs = len(knows["src"]) // 2
    info.country_names = list(places["country_names"])
    info.tag_names = [t for t in tags["name"]]
    info.tag_class_names = list(_TAG_CLASSES)
    info.first_names = list(_FIRST_NAMES)
    return SnbDataset(store, info)


# -- places -------------------------------------------------------------------------


def _load_places(store: GraphStore) -> dict[str, Any]:
    names: list[str] = []
    types: list[str] = []
    part_of_src: list[int] = []
    part_of_dst: list[int] = []

    continent_rows: dict[str, int] = {}
    for continent in _CONTINENTS:
        continent_rows[continent] = len(names)
        names.append(continent)
        types.append("continent")

    country_rows: dict[str, int] = {}
    for continent, countries in _COUNTRIES.items():
        for country in countries:
            row = len(names)
            country_rows[country] = row
            names.append(country)
            types.append("country")
            part_of_src.append(row)
            part_of_dst.append(continent_rows[continent])

    city_rows: list[int] = []
    city_country: list[int] = []
    for country, country_row in country_rows.items():
        for i in range(_CITIES_PER_COUNTRY):
            row = len(names)
            names.append(f"{country}_City_{i}")
            types.append("city")
            part_of_src.append(row)
            part_of_dst.append(country_row)
            city_rows.append(row)
            city_country.append(country_row)

    store.bulk_load_vertices(
        PLACE,
        {
            "id": np.arange(len(names)) + ID_BASE[PLACE],
            "name": np.asarray(names, dtype=object),
            "type": np.asarray(types, dtype=object),
        },
    )
    store.bulk_load_edges(
        "IS_PART_OF",
        PLACE,
        PLACE,
        np.asarray(part_of_src),
        np.asarray(part_of_dst),
    )
    return {
        "city_rows": np.asarray(city_rows),
        "city_country": np.asarray(city_country),
        "country_rows": country_rows,
        "country_names": list(country_rows),
    }


# -- tags ---------------------------------------------------------------------------


def _load_tags(store: GraphStore) -> tuple[dict[str, Any], dict[str, Any]]:
    class_names = list(_TAG_CLASSES)
    class_row = {name: i for i, name in enumerate(class_names)}
    store.bulk_load_vertices(
        TAG_CLASS,
        {
            "id": np.arange(len(class_names)) + ID_BASE[TAG_CLASS],
            "name": np.asarray(class_names, dtype=object),
        },
    )
    subclass_src = []
    subclass_dst = []
    for name, parent in _TAG_CLASSES.items():
        if parent is not None:
            subclass_src.append(class_row[name])
            subclass_dst.append(class_row[parent])
    store.bulk_load_edges(
        "IS_SUBCLASS_OF",
        TAG_CLASS,
        TAG_CLASS,
        np.asarray(subclass_src),
        np.asarray(subclass_dst),
    )

    tag_names: list[str] = []
    tag_class_of: list[int] = []
    for class_name, tags in _TAGS_PER_CLASS.items():
        for tag in tags:
            tag_names.append(tag)
            tag_class_of.append(class_row[class_name])
    store.bulk_load_vertices(
        TAG,
        {
            "id": np.arange(len(tag_names)) + ID_BASE[TAG],
            "name": np.asarray(tag_names, dtype=object),
        },
    )
    store.bulk_load_edges(
        "HAS_TYPE",
        TAG,
        TAG_CLASS,
        np.arange(len(tag_names)),
        np.asarray(tag_class_of),
    )
    return (
        {"name": tag_names, "rows": np.arange(len(tag_names))},
        {"name": class_names, "row": class_row},
    )


# -- organisations --------------------------------------------------------------------


def _load_organisations(
    store: GraphStore, rng: np.random.Generator, places: dict[str, Any]
) -> dict[str, Any]:
    names = _UNIVERSITIES + _COMPANIES
    types = ["university"] * len(_UNIVERSITIES) + ["company"] * len(_COMPANIES)
    store.bulk_load_vertices(
        ORGANISATION,
        {
            "id": np.arange(len(names)) + ID_BASE[ORGANISATION],
            "name": np.asarray(names, dtype=object),
            "type": np.asarray(types, dtype=object),
        },
    )
    # Universities sit in cities; companies in countries (SNB convention).
    org_loc_src = np.arange(len(names))
    uni_cities = rng.choice(places["city_rows"], size=len(_UNIVERSITIES))
    country_rows = np.asarray(list(places["country_rows"].values()))
    company_countries = rng.choice(country_rows, size=len(_COMPANIES))
    org_loc_dst = np.concatenate([uni_cities, company_countries])
    store.bulk_load_edges(
        "IS_LOCATED_IN", ORGANISATION, PLACE, org_loc_src, org_loc_dst
    )
    return {
        "university_rows": np.arange(len(_UNIVERSITIES)),
        "company_rows": np.arange(len(_UNIVERSITIES), len(names)),
        "company_country": dict(
            zip(range(len(_UNIVERSITIES), len(names)), company_countries.tolist())
        ),
    }


# -- persons ----------------------------------------------------------------------------


def _load_persons(
    store: GraphStore, rng: np.random.Generator, sf: ScaleFactor, places: dict[str, Any]
) -> dict[str, Any]:
    n = sf.persons
    first = rng.choice(np.asarray(_FIRST_NAMES, dtype=object), size=n)
    last = rng.choice(np.asarray(_LAST_NAMES, dtype=object), size=n)
    gender = rng.choice(np.asarray(["male", "female"], dtype=object), size=n)
    birthday = np.asarray(
        [
            date_millis(int(y), int(m), int(d))
            for y, m, d in zip(
                rng.integers(1955, 2000, size=n),
                rng.integers(1, 13, size=n),
                rng.integers(1, 29, size=n),
            )
        ]
    )
    creation = SIM_START + rng.integers(0, SIM_SPAN // 2, size=n)
    ip = np.asarray(
        [f"{a}.{b}.{c}.{d}" for a, b, c, d in rng.integers(1, 255, size=(n, 4))],
        dtype=object,
    )
    browser = rng.choice(np.asarray(_BROWSERS, dtype=object), size=n)
    # Zipf-ish city popularity.
    city_rows = places["city_rows"]
    weights = 1.0 / np.arange(1, len(city_rows) + 1)
    weights /= weights.sum()
    person_city = rng.choice(city_rows, size=n, p=weights)

    store.bulk_load_vertices(
        PERSON,
        {
            "id": np.arange(n) + ID_BASE[PERSON],
            "firstName": first,
            "lastName": last,
            "gender": gender,
            "birthday": birthday,
            "creationDate": creation,
            "locationIP": ip,
            "browserUsed": browser,
        },
    )
    store.bulk_load_edges(
        "IS_LOCATED_IN", PERSON, PLACE, np.arange(n), person_city
    )
    return {
        "id": np.arange(n) + ID_BASE[PERSON],
        "city": person_city,
        "creationDate": creation,
    }


def _load_knows(
    store: GraphStore, rng: np.random.Generator, sf: ScaleFactor, persons: dict[str, Any]
) -> dict[str, Any]:
    """Symmetric KNOWS edges: lognormal degrees with same-city bias."""
    n = sf.persons
    target = np.clip(
        rng.lognormal(mean=np.log(sf.avg_degree), sigma=0.7, size=n), 1, n / 4
    ).astype(int)
    city = persons["city"]
    by_city: dict[int, list[int]] = {}
    for row, c in enumerate(city):
        by_city.setdefault(int(c), []).append(row)

    pairs: set[tuple[int, int]] = set()
    for row in range(n):
        wanted = int(target[row])
        same_city = by_city.get(int(city[row]), [])
        for _ in range(wanted):
            if same_city and rng.random() < 0.4 and len(same_city) > 1:
                other = int(same_city[rng.integers(0, len(same_city))])
            else:
                other = int(rng.integers(0, n))
            if other == row:
                continue
            pairs.add((min(row, other), max(row, other)))

    src = np.asarray([p[0] for p in pairs] + [p[1] for p in pairs])
    dst = np.asarray([p[1] for p in pairs] + [p[0] for p in pairs])
    creation = np.maximum(
        persons["creationDate"][src], persons["creationDate"][dst]
    ) + rng.integers(0, SIM_SPAN // 4, size=len(src))
    # Mirror pairs share one creationDate.
    half = len(pairs)
    creation[half:] = creation[:half]
    store.bulk_load_edges(
        "KNOWS", PERSON, PERSON, src, dst, {"creationDate": creation}
    )
    friends: dict[int, list[int]] = {}
    for a, b in pairs:
        friends.setdefault(a, []).append(b)
        friends.setdefault(b, []).append(a)
    return {"src": src, "dst": dst, "friends": friends}


def _load_person_tags_and_orgs(
    store: GraphStore,
    rng: np.random.Generator,
    persons: dict[str, Any],
    tags: dict[str, Any],
    organisations: dict[str, Any],
) -> None:
    n = len(persons["id"])
    interest_src: list[int] = []
    interest_dst: list[int] = []
    study_src: list[int] = []
    study_dst: list[int] = []
    study_year: list[int] = []
    work_src: list[int] = []
    work_dst: list[int] = []
    work_from: list[int] = []
    num_tags = len(tags["rows"])
    for row in range(n):
        for tag in rng.choice(num_tags, size=int(rng.integers(3, 8)), replace=False):
            interest_src.append(row)
            interest_dst.append(int(tag))
        if rng.random() < 0.7:
            study_src.append(row)
            study_dst.append(int(rng.choice(organisations["university_rows"])))
            study_year.append(int(rng.integers(1995, 2013)))
        num_jobs = int(rng.integers(0, 3))
        if num_jobs:
            for company in rng.choice(
                organisations["company_rows"], size=num_jobs, replace=False
            ):
                work_src.append(row)
                work_dst.append(int(company))
                work_from.append(int(rng.integers(1995, 2013)))
    store.bulk_load_edges(
        "HAS_INTEREST", PERSON, TAG, np.asarray(interest_src), np.asarray(interest_dst)
    )
    store.bulk_load_edges(
        "STUDY_AT",
        PERSON,
        ORGANISATION,
        np.asarray(study_src),
        np.asarray(study_dst),
        {"classYear": np.asarray(study_year)},
    )
    store.bulk_load_edges(
        "WORK_AT",
        PERSON,
        ORGANISATION,
        np.asarray(work_src),
        np.asarray(work_dst),
        {"workFrom": np.asarray(work_from)},
    )


# -- forums ------------------------------------------------------------------------------


def _load_forums(
    store: GraphStore,
    rng: np.random.Generator,
    sf: ScaleFactor,
    persons: dict[str, Any],
    knows: dict[str, Any],
    tags: dict[str, Any],
) -> dict[str, Any]:
    n_persons = len(persons["id"])
    n_forums = max(4, int(n_persons * sf.forums_per_person))
    moderators = rng.integers(0, n_persons, size=n_forums)
    creation = np.maximum(
        persons["creationDate"][moderators],
        SIM_START + rng.integers(0, SIM_SPAN // 2, size=n_forums),
    )
    titles = np.asarray(
        [f"Group_{i}_of_{int(m)}" for i, m in enumerate(moderators)], dtype=object
    )
    store.bulk_load_vertices(
        FORUM,
        {
            "id": np.arange(n_forums) + ID_BASE[FORUM],
            "title": titles,
            "creationDate": creation,
        },
    )
    store.bulk_load_edges(
        "HAS_MODERATOR", FORUM, PERSON, np.arange(n_forums), moderators
    )

    member_src: list[int] = []
    member_dst: list[int] = []
    join_dates: list[int] = []
    members_of: list[list[int]] = []
    friends = knows["friends"]
    for forum in range(n_forums):
        moderator = int(moderators[forum])
        candidates = list(friends.get(moderator, []))
        rng.shuffle(candidates)
        extra = rng.integers(0, n_persons, size=max(2, int(rng.integers(2, 10))))
        members = [moderator] + candidates[: int(rng.integers(1, 12))] + [
            int(x) for x in extra
        ]
        unique_members = list(dict.fromkeys(members))
        members_of.append(unique_members)
        for member in unique_members:
            member_src.append(forum)
            member_dst.append(member)
            join_dates.append(
                int(creation[forum] + rng.integers(0, max(SIM_END - creation[forum], 1)))
            )
    store.bulk_load_edges(
        "HAS_MEMBER",
        FORUM,
        PERSON,
        np.asarray(member_src),
        np.asarray(member_dst),
        {"joinDate": np.asarray(join_dates)},
    )

    forum_tag_src: list[int] = []
    forum_tag_dst: list[int] = []
    forum_tags: list[list[int]] = []
    num_tags = len(tags["rows"])
    for forum in range(n_forums):
        chosen = rng.choice(num_tags, size=int(rng.integers(1, 4)), replace=False)
        forum_tags.append([int(t) for t in chosen])
        for tag in chosen:
            forum_tag_src.append(forum)
            forum_tag_dst.append(int(tag))
    store.bulk_load_edges(
        "HAS_TAG", FORUM, TAG, np.asarray(forum_tag_src), np.asarray(forum_tag_dst)
    )
    return {
        "id": np.arange(n_forums) + ID_BASE[FORUM],
        "creationDate": creation,
        "members": members_of,
        "tags": forum_tags,
    }


# -- messages -------------------------------------------------------------------------------


def _load_messages(
    store: GraphStore,
    rng: np.random.Generator,
    sf: ScaleFactor,
    persons: dict[str, Any],
    knows: dict[str, Any],
    forums: dict[str, Any],
    tags: dict[str, Any],
    places: dict[str, Any],
) -> dict[str, Any]:
    n_persons = len(persons["id"])
    n_forums = len(forums["id"])
    country_rows = np.asarray(list(places["country_rows"].values()))
    friends = knows["friends"]
    num_tags = len(tags["rows"])

    creation: list[int] = []
    length: list[int] = []
    is_post: list[bool] = []
    creator: list[int] = []
    located: list[int] = []
    container_src: list[int] = []
    container_dst: list[int] = []
    reply_src: list[int] = []
    reply_dst: list[int] = []
    tag_src: list[int] = []
    tag_dst: list[int] = []

    def add_tags(message: int, candidates: list[int], max_tags: int) -> None:
        if not candidates or max_tags <= 0:
            return
        k = int(rng.integers(0, max_tags + 1))
        if k == 0:
            return
        chosen = rng.choice(candidates, size=min(k, len(candidates)), replace=False)
        for tag in chosen:
            tag_src.append(message)
            tag_dst.append(int(tag))

    # Posts, per forum.
    post_rows_by_forum: list[list[int]] = []
    for forum in range(n_forums):
        members = forums["members"][forum]
        count = int(rng.poisson(sf.posts_per_forum))
        rows: list[int] = []
        for _ in range(count):
            row = len(creation)
            author = int(members[rng.integers(0, len(members))])
            base = max(int(forums["creationDate"][forum]), SIM_START)
            creation.append(int(base + rng.integers(0, max(SIM_END - base, 1))))
            length.append(int(np.clip(rng.lognormal(4.3, 0.8), 10, 2000)))
            is_post.append(True)
            creator.append(author)
            located.append(int(rng.choice(country_rows)))
            container_src.append(forum)
            container_dst.append(row)
            add_tags(row, forums["tags"][forum], 2)
            rows.append(row)
        post_rows_by_forum.append(rows)

    num_posts = len(creation)
    # Comments: reply trees hanging off posts (and other comments).
    num_comments = int(num_posts * sf.comments_per_post)
    for _ in range(num_comments):
        if not creation:
            break
        row = len(creation)
        # Prefer replying to recent messages.
        parent = int(rng.integers(max(0, row - 200), row))
        parent_author = creator[parent]
        friend_pool = friends.get(parent_author, [])
        if friend_pool and rng.random() < 0.6:
            author = int(friend_pool[rng.integers(0, len(friend_pool))])
        else:
            author = int(rng.integers(0, n_persons))
        creation.append(int(creation[parent] + rng.integers(1, SIM_SPAN // 20)))
        length.append(int(np.clip(rng.lognormal(3.6, 0.9), 5, 1500)))
        is_post.append(False)
        creator.append(author)
        located.append(int(rng.choice(country_rows)))
        reply_src.append(row)
        reply_dst.append(parent)
        add_tags(row, list(range(num_tags)), 1)

    n_messages = len(creation)
    # Content carries its declared length (capped) so string payloads are
    # realistic in the memory accounting.
    content = np.asarray(
        [
            f"{'post' if p else 'reply'}_{i}_" + "x" * min(int(length[i]), 140)
            for i, p in enumerate(is_post)
        ],
        dtype=object,
    )
    browser = rng.choice(np.asarray(_BROWSERS, dtype=object), size=n_messages)
    store.bulk_load_vertices(
        MESSAGE,
        {
            "id": np.arange(n_messages) + ID_BASE[MESSAGE],
            "creationDate": np.asarray(creation),
            "content": content,
            "length": np.asarray(length),
            "isPost": np.asarray(is_post),
            "browserUsed": browser,
        },
    )
    store.bulk_load_edges(
        "HAS_CREATOR", MESSAGE, PERSON, np.arange(n_messages), np.asarray(creator)
    )
    store.bulk_load_edges(
        "IS_LOCATED_IN", MESSAGE, PLACE, np.arange(n_messages), np.asarray(located)
    )
    store.bulk_load_edges(
        "CONTAINER_OF", FORUM, MESSAGE, np.asarray(container_src), np.asarray(container_dst)
    )
    store.bulk_load_edges(
        "REPLY_OF", MESSAGE, MESSAGE, np.asarray(reply_src), np.asarray(reply_dst)
    )
    store.bulk_load_edges("HAS_TAG", MESSAGE, TAG, np.asarray(tag_src), np.asarray(tag_dst))
    return {
        "id": np.arange(n_messages) + ID_BASE[MESSAGE],
        "creationDate": np.asarray(creation),
        "creator": np.asarray(creator),
        "isPost": np.asarray(is_post),
    }


def _load_likes(
    store: GraphStore,
    rng: np.random.Generator,
    sf: ScaleFactor,
    persons: dict[str, Any],
    knows: dict[str, Any],
    messages: dict[str, Any],
) -> None:
    n_persons = len(persons["id"])
    friends = knows["friends"]
    like_src: list[int] = []
    like_dst: list[int] = []
    like_date: list[int] = []
    for message in range(len(messages["id"])):
        count = int(rng.poisson(sf.likes_per_message))
        if count == 0:
            continue
        author = int(messages["creator"][message])
        pool = friends.get(author, [])
        likers: set[int] = set()
        for _ in range(count):
            if pool and rng.random() < 0.7:
                likers.add(int(pool[rng.integers(0, len(pool))]))
            else:
                likers.add(int(rng.integers(0, n_persons)))
        likers.discard(author)
        for liker in likers:
            like_src.append(liker)
            like_dst.append(message)
            like_date.append(
                int(messages["creationDate"][message] + rng.integers(1, SIM_SPAN // 30))
            )
    store.bulk_load_edges(
        "LIKES",
        PERSON,
        MESSAGE,
        np.asarray(like_src),
        np.asarray(like_dst),
        {"creationDate": np.asarray(like_date)},
    )
