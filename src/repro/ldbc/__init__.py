"""LDBC SNB Interactive substrate: schema, datagen, queries, driver."""

from .datagen import SCALE_FACTORS, ScaleFactor, SnbDataset, generate
from .driver import BenchmarkDriver, DriverReport
from .params import INTERLEAVES, ParameterGenerator
from .queries import REGISTRY, queries_of
from .schema import build_snb_schema
from .validation import (
    ValidationReport,
    bags_equal,
    normalize_rows,
    rows_bag,
    validate,
)

__all__ = [
    "BenchmarkDriver",
    "DriverReport",
    "INTERLEAVES",
    "ParameterGenerator",
    "REGISTRY",
    "SCALE_FACTORS",
    "ScaleFactor",
    "SnbDataset",
    "ValidationReport",
    "bags_equal",
    "build_snb_schema",
    "generate",
    "normalize_rows",
    "rows_bag",
    "validate",
    "queries_of",
]
