"""LDBC SNB Interactive substrate: schema, datagen, queries, driver."""

from .datagen import SCALE_FACTORS, ScaleFactor, SnbDataset, generate
from .driver import BenchmarkDriver, DriverReport
from .params import INTERLEAVES, ParameterGenerator
from .queries import REGISTRY, queries_of
from .schema import build_snb_schema
from .validation import ValidationReport, validate

__all__ = [
    "BenchmarkDriver",
    "DriverReport",
    "INTERLEAVES",
    "ParameterGenerator",
    "REGISTRY",
    "SCALE_FACTORS",
    "ScaleFactor",
    "SnbDataset",
    "ValidationReport",
    "build_snb_schema",
    "generate",
    "validate",
    "queries_of",
]
