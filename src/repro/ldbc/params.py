"""Parameter curation for the LDBC workload.

The official benchmark curates parameters so queries hit non-degenerate
neighborhoods; this module does the mini-scale equivalent: person
parameters are drawn from persons with at least two friends, dates from
well-populated regions of the simulation window, and tags/countries from
the generated dictionaries.  Everything is seeded and deterministic.

``INTERLEAVES`` carries the spec's relative operation frequencies (an IC1
is issued every 26 update slots, an IC13 every 19, ...); the driver turns
them into mix weights.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..storage.catalog import AdjacencyKey, Direction
from .datagen import SIM_END, SIM_SPAN, SIM_START, SnbDataset
from .schema import ID_BASE, MESSAGE, PERSON

#: LDBC SNB Interactive v1 frequency table: one ICn per this many update
#: operations (spec table 4.1).  Smaller = more frequent.
INTERLEAVES: dict[str, int] = {
    "IC1": 26, "IC2": 37, "IC3": 123, "IC4": 36, "IC5": 57, "IC6": 129,
    "IC7": 87, "IC8": 45, "IC9": 157, "IC10": 30, "IC11": 16, "IC12": 44,
    "IC13": 19, "IC14": 49,
}

#: Short reads fire in bursts after complex reads; updates form the base
#: stream.  These multipliers reproduce the spec's category balance.
CATEGORY_MIX = {"IC": 1.0, "IS": 4.0, "IU": 2.0}


class ParameterGenerator:
    """Seeded parameter factory for all 29 workload queries."""

    def __init__(self, dataset: SnbDataset, seed: int = 7) -> None:
        self.dataset = dataset
        self.rng = np.random.default_rng(seed)
        self._fresh_id = 10_000_000  # id space for IU-created entities
        view = dataset.store.read_view()
        knows = AdjacencyKey(PERSON, "KNOWS", PERSON, Direction.OUT)
        adjacency = dataset.store.adjacency(knows)
        person_rows = view.all_rows(PERSON)
        degrees = np.asarray([adjacency.degree(int(r)) for r in person_rows])
        eligible = person_rows[degrees >= 2]
        self._person_rows = eligible if len(eligible) else person_rows
        self._person_ids = dataset.store.table(PERSON).gather(
            "id", self._person_rows
        )
        self._message_ids = dataset.store.table(MESSAGE).gather(
            "id", view.all_rows(MESSAGE)
        )
        self._num_forums = dataset.info.num_forums
        self._num_tags = len(dataset.info.tag_names)
        self._num_cities = len(
            [r for r in view.all_rows("Place")
             if dataset.store.table("Place").get_property(int(r), "type") == "city"]
        )

    # -- primitive draws ----------------------------------------------------

    def _person_id(self) -> int:
        return int(self.rng.choice(self._person_ids))

    def _message_id(self) -> int:
        return int(self.rng.choice(self._message_ids))

    def _date(self, lo: float, hi: float) -> int:
        return int(SIM_START + SIM_SPAN * self.rng.uniform(lo, hi))

    def fresh_id(self) -> int:
        self._fresh_id += 1
        return self._fresh_id

    # -- per-query parameters -------------------------------------------------

    def params_for(self, name: str) -> dict[str, Any]:
        try:
            builder = getattr(self, f"_params_{name.lower()}")
        except AttributeError:
            raise KeyError(f"no parameter builder for {name!r}") from None
        return builder()

    def _params_ic1(self) -> dict[str, Any]:
        return {
            "personId": self._person_id(),
            "firstName": str(self.rng.choice(self.dataset.info.first_names)),
        }

    def _params_ic2(self) -> dict[str, Any]:
        return {"personId": self._person_id(), "maxDate": self._date(0.5, 0.95)}

    def _params_ic3(self) -> dict[str, Any]:
        x, y = self.rng.choice(self.dataset.info.country_names, size=2, replace=False)
        start = self._date(0.2, 0.6)
        return {
            "personId": self._person_id(),
            "countryX": str(x),
            "countryY": str(y),
            "startDate": start,
            "endDate": int(start + SIM_SPAN * 0.3),
        }

    def _params_ic4(self) -> dict[str, Any]:
        start = self._date(0.3, 0.6)
        return {
            "personId": self._person_id(),
            "startDate": start,
            "endDate": int(start + SIM_SPAN * 0.25),
        }

    def _params_ic5(self) -> dict[str, Any]:
        return {"personId": self._person_id(), "minDate": self._date(0.2, 0.6)}

    def _params_ic6(self) -> dict[str, Any]:
        return {
            "personId": self._person_id(),
            "tagName": str(self.rng.choice(self.dataset.info.tag_names)),
        }

    def _params_ic7(self) -> dict[str, Any]:
        return {"personId": self._person_id()}

    def _params_ic8(self) -> dict[str, Any]:
        return {"personId": self._person_id()}

    def _params_ic9(self) -> dict[str, Any]:
        return {"personId": self._person_id(), "maxDate": self._date(0.5, 0.95)}

    def _params_ic10(self) -> dict[str, Any]:
        return {"personId": self._person_id(), "month": int(self.rng.integers(1, 13))}

    def _params_ic11(self) -> dict[str, Any]:
        return {
            "personId": self._person_id(),
            "countryName": str(self.rng.choice(self.dataset.info.country_names)),
            "workFromYear": int(self.rng.integers(2003, 2013)),
        }

    def _params_ic12(self) -> dict[str, Any]:
        return {
            "personId": self._person_id(),
            "tagClassName": str(self.rng.choice(self.dataset.info.tag_class_names)),
        }

    def _params_ic13(self) -> dict[str, Any]:
        p1, p2 = self.rng.choice(self._person_ids, size=2, replace=False)
        return {"person1Id": int(p1), "person2Id": int(p2)}

    _params_ic14 = _params_ic13

    def _params_is1(self) -> dict[str, Any]:
        return {"personId": self._person_id()}

    _params_is2 = _params_is1
    _params_is3 = _params_is1

    def _params_is4(self) -> dict[str, Any]:
        return {"messageId": self._message_id()}

    _params_is5 = _params_is4
    _params_is6 = _params_is4
    _params_is7 = _params_is4

    def _params_iu1(self) -> dict[str, Any]:
        return {
            "personId": self.fresh_id(),
            "firstName": str(self.rng.choice(self.dataset.info.first_names)),
            "lastName": "Newcomer",
            "creationDate": SIM_END,
            "cityRow": int(self.rng.integers(0, max(self._num_cities, 1))),
            "interestRows": [int(t) for t in self.rng.integers(0, self._num_tags, 3)],
        }

    def _params_iu2(self) -> dict[str, Any]:
        return {
            "personId": self._person_id(),
            "messageId": self._message_id(),
            "creationDate": SIM_END,
        }

    _params_iu3 = _params_iu2

    def _params_iu4(self) -> dict[str, Any]:
        return {
            "forumId": self.fresh_id(),
            "title": "Fresh group",
            "creationDate": SIM_END,
            "moderatorId": self._person_id(),
            "tagRows": [int(self.rng.integers(0, self._num_tags))],
        }

    def _params_iu5(self) -> dict[str, Any]:
        return {
            "forumId": int(ID_BASE["Forum"] + self.rng.integers(0, self._num_forums)),
            "personId": self._person_id(),
            "joinDate": SIM_END,
        }

    def _params_iu6(self) -> dict[str, Any]:
        return {
            "postId": self.fresh_id(),
            "creationDate": SIM_END,
            "content": "fresh post",
            "length": int(self.rng.integers(10, 300)),
            "authorId": self._person_id(),
            "forumId": int(ID_BASE["Forum"] + self.rng.integers(0, self._num_forums)),
            "countryRow": None,
        }

    def _params_iu7(self) -> dict[str, Any]:
        return {
            "commentId": self.fresh_id(),
            "creationDate": SIM_END,
            "content": "fresh reply",
            "length": int(self.rng.integers(5, 200)),
            "authorId": self._person_id(),
            "replyToId": self._message_id(),
        }

    def _params_iu8(self) -> dict[str, Any]:
        p1, p2 = self.rng.choice(self._person_ids, size=2, replace=False)
        return {"person1Id": int(p1), "person2Id": int(p2), "creationDate": SIM_END}
