"""The 7 LDBC SNB Interactive short-read queries (IS1–IS7).

Short reads fetch a vertex's immediate neighborhood; their cost is
negligible next to the IC queries (paper §3), but they dominate the
operation *count* in the benchmark mix and so matter for throughput.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...engine.service import GraphEngineService
from ...exec.base import ExecStats
from ...plan.expressions import Col, Param
from ...plan.logical import (
    Expand,
    GetProperty,
    Limit,
    NodeByIdSeek,
    NodeByRows,
    OrderBy,
    Project,
)
from ...storage.catalog import AdjacencyKey, Direction
from .common import register, run_template

IN = Direction.IN
OUT = Direction.OUT


def _cols(*names: str) -> list[tuple[str, Col]]:
    return [(n, Col(n)) for n in names]


@register("IS1", "IS", "person profile")
def is1(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS1: person profile."""
    result = run_template(
        engine,
        "IS1",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            GetProperty("p", "firstName", "firstName"),
            GetProperty("p", "lastName", "lastName"),
            GetProperty("p", "birthday", "birthday"),
            GetProperty("p", "locationIP", "locationIP"),
            GetProperty("p", "browserUsed", "browserUsed"),
            GetProperty("p", "gender", "gender"),
            GetProperty("p", "creationDate", "creationDate"),
            Expand("p", "city", "IS_LOCATED_IN", OUT, to_label="Place"),
            GetProperty("city", "id", "cityId"),
            Project(
                _cols("firstName", "lastName", "birthday", "locationIP", "browserUsed",
                      "cityId", "gender", "creationDate")
            ),
        ],
        None,
        params,
        stats,
    )
    return result.rows


@register("IS2", "IS", "person's recent messages")
def is2(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS2: person's recent messages."""
    result = run_template(
        engine,
        "IS2",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "id", "msgId"),
            GetProperty("msg", "content", "content"),
            GetProperty("msg", "creationDate", "msgDate"),
            Expand("msg", "parent", "REPLY_OF", OUT, to_label="Message", optional=True),
            GetProperty("parent", "id", "parentId"),
            Project(_cols("msgId", "content", "msgDate", "parentId")),
            OrderBy([("msgDate", False), ("msgId", False)]),
            Limit(10),
        ],
        ["msgId", "content", "msgDate", "parentId"],
        params,
        stats,
    )
    return result.rows


@register("IS3", "IS", "friends of a person")
def is3(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS3: friends of a person."""
    result = run_template(
        engine,
        "IS3",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, edge_props={"friendshipDate": "creationDate"}),
            GetProperty("f", "id", "friendId"),
            GetProperty("f", "firstName", "firstName"),
            GetProperty("f", "lastName", "lastName"),
            Project(_cols("friendId", "firstName", "lastName", "friendshipDate")),
            OrderBy([("friendshipDate", False), ("friendId", True)]),
        ],
        ["friendId", "firstName", "lastName", "friendshipDate"],
        params,
        stats,
    )
    return result.rows


@register("IS4", "IS", "message content")
def is4(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS4: message content."""
    result = run_template(
        engine,
        "IS4",
        [
            NodeByIdSeek("m", "Message", Param("messageId")),
            GetProperty("m", "creationDate", "creationDate"),
            GetProperty("m", "content", "content"),
            Project(_cols("creationDate", "content")),
        ],
        None,
        params,
        stats,
    )
    return result.rows


@register("IS5", "IS", "message creator")
def is5(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS5: message creator."""
    result = run_template(
        engine,
        "IS5",
        [
            NodeByIdSeek("m", "Message", Param("messageId")),
            Expand("m", "p", "HAS_CREATOR", OUT, to_label="Person"),
            GetProperty("p", "id", "personId"),
            GetProperty("p", "firstName", "firstName"),
            GetProperty("p", "lastName", "lastName"),
            Project(_cols("personId", "firstName", "lastName")),
        ],
        None,
        params,
        stats,
    )
    return result.rows


@register("IS6", "IS", "forum of a message")
def is6(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS6: forum of a message."""
    # Walk the reply chain to the root post on the storage layer, then plan
    # the forum + moderator lookup from there.
    view = engine.read_view()
    row = view.vertex_by_key("Message", int(params["messageId"]))
    if row is None:
        return []
    reply_of = AdjacencyKey("Message", "REPLY_OF", "Message", OUT)
    current = int(row)
    for _ in range(100):  # reply chains are short; bound the walk anyway
        parents = view.neighbors(reply_of, current)
        if len(parents) == 0:
            break
        current = int(parents[0])
    stage_params = {**params, "rootPost": np.asarray([current], dtype=np.int64)}
    result = run_template(
        engine,
        "IS6",
        [
            NodeByRows("post", "Message", "rootPost"),
            Expand("post", "forum", "CONTAINER_OF", IN, to_label="Forum"),
            GetProperty("forum", "id", "forumId"),
            GetProperty("forum", "title", "forumTitle"),
            Expand("forum", "mod", "HAS_MODERATOR", OUT, to_label="Person"),
            GetProperty("mod", "id", "moderatorId"),
            GetProperty("mod", "firstName", "firstName"),
            GetProperty("mod", "lastName", "lastName"),
            Project(_cols("forumId", "forumTitle", "moderatorId", "firstName", "lastName")),
        ],
        None,
        stage_params,
        stats,
    )
    return result.rows


@register("IS7", "IS", "replies to a message")
def is7(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IS7: replies to a message."""
    # Friends of the message author, for the "replier knows author" flag.
    author = run_template(
        engine,
        ("IS7", "authorFriends"),
        [
            NodeByIdSeek("m", "Message", Param("messageId")),
            Expand("m", "a", "HAS_CREATOR", OUT, to_label="Person"),
            Expand("a", "af", "KNOWS", OUT),
            GetProperty("af", "id", "authorFriendId"),
            Project(_cols("authorFriendId")),
        ],
        ["authorFriendId"],
        params,
        stats,
    )
    author_friends = frozenset(r[0] for r in author.rows)
    result = run_template(
        engine,
        ("IS7", "replies"),
        [
            NodeByIdSeek("m", "Message", Param("messageId")),
            Expand("m", "c", "REPLY_OF", IN, to_label="Message"),
            GetProperty("c", "id", "commentId"),
            GetProperty("c", "content", "content"),
            GetProperty("c", "creationDate", "commentDate"),
            Expand("c", "r", "HAS_CREATOR", OUT, to_label="Person"),
            GetProperty("r", "id", "replierId"),
            GetProperty("r", "firstName", "firstName"),
            GetProperty("r", "lastName", "lastName"),
            Project(
                _cols("commentId", "content", "commentDate", "replierId", "firstName",
                      "lastName")
            ),
            OrderBy([("commentDate", False), ("replierId", True)]),
        ],
        ["commentId", "content", "commentDate", "replierId", "firstName", "lastName"],
        params,
        stats,
    )
    return [row + (row[3] in author_friends,) for row in result.rows]
