"""The 8 LDBC SNB Interactive update queries (IU1–IU8).

Updates run as MV2PL write transactions: the write set is known up front
(LDBC updates are inserts with given targets), locks are vertex-level, and
commits stamp new edges/vertices with the commit version so concurrent
snapshot readers never see half-applied updates.
"""

from __future__ import annotations

from typing import Any

from ...engine.service import GraphEngineService
from ...exec.base import ExecStats
from ...obs.clock import now
from ...storage.graph import VertexRef
from .common import register


def _timed(
    engine: GraphEngineService, stats: ExecStats, name: str, fn
) -> list[tuple]:
    """Run one update unit under the engine's retry policy (if any).

    Each ``fn`` begins its own transaction and commits it, so a retry
    re-runs the whole unit on a fresh transaction — a failed attempt's
    staging can never leak into the next.  Retries count toward the
    operation's measured service time, as they would in a real service.
    """
    policy = getattr(engine, "retry_policy", None)
    started = now()
    if policy is None:
        fn()
    else:
        policy.run(fn, on_retry=getattr(engine, "_count_retry", None))
    elapsed = now() - started
    stats.record_op(name, elapsed, 0)
    stats.total_seconds += elapsed
    return []


def _person_ref(engine: GraphEngineService, person_id: int) -> VertexRef:
    row = engine.read_view().vertex_by_key("Person", int(person_id))
    if row is None:
        raise KeyError(f"unknown person {person_id}")
    return VertexRef("Person", row)


def _message_ref(engine: GraphEngineService, message_id: int) -> VertexRef:
    row = engine.read_view().vertex_by_key("Message", int(message_id))
    if row is None:
        raise KeyError(f"unknown message {message_id}")
    return VertexRef("Message", row)


def _forum_ref(engine: GraphEngineService, forum_id: int) -> VertexRef:
    row = engine.read_view().vertex_by_key("Forum", int(forum_id))
    if row is None:
        raise KeyError(f"unknown forum {forum_id}")
    return VertexRef("Forum", row)


@register("IU1", "IU", "add person")
def iu1(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU1: add person."""
    def apply() -> None:
        txn = engine.transaction()
        handle = txn.add_vertex(
            "Person",
            {
                "id": params["personId"],
                "firstName": params["firstName"],
                "lastName": params["lastName"],
                "gender": params.get("gender", "male"),
                "birthday": params.get("birthday", 0),
                "creationDate": params["creationDate"],
                "locationIP": params.get("locationIP", "0.0.0.0"),
                "browserUsed": params.get("browserUsed", "Firefox"),
            },
        )
        city_row = params.get("cityRow")
        if city_row is not None:
            txn.add_edge("IS_LOCATED_IN", handle, VertexRef("Place", int(city_row)))
        for tag_row in params.get("interestRows", ()):
            txn.add_edge("HAS_INTEREST", handle, VertexRef("Tag", int(tag_row)))
        txn.commit()

    return _timed(engine, stats, "IU1", apply)


def _add_like(engine: GraphEngineService, params: dict[str, Any]) -> None:
    txn = engine.transaction()
    txn.add_edge(
        "LIKES",
        _person_ref(engine, params["personId"]),
        _message_ref(engine, params["messageId"]),
        {"creationDate": params["creationDate"]},
    )
    txn.commit()


@register("IU2", "IU", "add like to post")
def iu2(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU2: add like to post."""
    return _timed(engine, stats, "IU2", lambda: _add_like(engine, params))


@register("IU3", "IU", "add like to comment")
def iu3(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU3: add like to comment."""
    return _timed(engine, stats, "IU3", lambda: _add_like(engine, params))


@register("IU4", "IU", "add forum")
def iu4(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU4: add forum."""
    def apply() -> None:
        txn = engine.transaction()
        handle = txn.add_vertex(
            "Forum",
            {
                "id": params["forumId"],
                "title": params.get("title", "New group"),
                "creationDate": params["creationDate"],
            },
        )
        txn.add_edge("HAS_MODERATOR", handle, _person_ref(engine, params["moderatorId"]))
        for tag_row in params.get("tagRows", ()):
            txn.add_edge("HAS_TAG", handle, VertexRef("Tag", int(tag_row)))
        txn.commit()

    return _timed(engine, stats, "IU4", apply)


@register("IU5", "IU", "add forum membership")
def iu5(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU5: add forum membership."""
    def apply() -> None:
        txn = engine.transaction()
        txn.add_edge(
            "HAS_MEMBER",
            _forum_ref(engine, params["forumId"]),
            _person_ref(engine, params["personId"]),
            {"joinDate": params["joinDate"]},
        )
        txn.commit()

    return _timed(engine, stats, "IU5", apply)


@register("IU6", "IU", "add post")
def iu6(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU6: add post."""
    def apply() -> None:
        txn = engine.transaction()
        handle = txn.add_vertex(
            "Message",
            {
                "id": params["postId"],
                "creationDate": params["creationDate"],
                "content": params.get("content", ""),
                "length": params.get("length", 0),
                "isPost": True,
                "browserUsed": params.get("browserUsed", "Firefox"),
            },
        )
        txn.add_edge("HAS_CREATOR", handle, _person_ref(engine, params["authorId"]))
        forum_id = params.get("forumId")
        if forum_id is not None:
            txn.add_edge("CONTAINER_OF", _forum_ref(engine, forum_id), handle)
        country_row = params.get("countryRow")
        if country_row is not None:
            txn.add_edge("IS_LOCATED_IN", handle, VertexRef("Place", int(country_row)))
        txn.commit()

    return _timed(engine, stats, "IU6", apply)


@register("IU7", "IU", "add comment")
def iu7(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU7: add comment."""
    def apply() -> None:
        txn = engine.transaction()
        handle = txn.add_vertex(
            "Message",
            {
                "id": params["commentId"],
                "creationDate": params["creationDate"],
                "content": params.get("content", ""),
                "length": params.get("length", 0),
                "isPost": False,
                "browserUsed": params.get("browserUsed", "Firefox"),
            },
        )
        txn.add_edge("HAS_CREATOR", handle, _person_ref(engine, params["authorId"]))
        txn.add_edge("REPLY_OF", handle, _message_ref(engine, params["replyToId"]))
        txn.commit()

    return _timed(engine, stats, "IU7", apply)


@register("IU8", "IU", "add friendship")
def iu8(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IU8: add friendship."""
    def apply() -> None:
        txn = engine.transaction()
        a = _person_ref(engine, params["person1Id"])
        b = _person_ref(engine, params["person2Id"])
        props = {"creationDate": params["creationDate"]}
        # KNOWS is symmetric: insert both directed edges, as the loader does.
        txn.add_edge("KNOWS", a, b, props)
        txn.add_edge("KNOWS", b, a, props)
        txn.commit()

    return _timed(engine, stats, "IU8", apply)
