"""The 14 LDBC SNB Interactive complex-read queries (IC1–IC14).

Each implementation follows the official v1 semantics, occasionally
simplified in the *returned columns* (full profile payloads trimmed to the
identifying fields) but never in the traversal / filter / aggregation
structure — that structure is what drives the paper's Figures 2–3, 11–12
and Table 2, and the per-query factorization behaviour (which queries stay
factorized, which de-factor) matches the paper's observations:

* IC1/IC2/IC9/IC14: deep expansions with node-local filters — factorization
  shines, fused TopK avoids the flat sort;
* IC5/IC6/IC4: aggregation confined to one f-Tree node — the
  AggregateProjectTop fusion counts via index vectors without enumerating;
* IC3/IC10/IC12: aggregates spanning f-Tree nodes — the executor must
  de-factor, so their reduction ratios collapse (paper Table 2);
* IC13/IC14: stored procedures on the storage layer (excluded from
  intermediate-result accounting, as in the paper).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...engine.service import GraphEngineService
from ...exec.base import ExecStats
from ...plan.expressions import BoolOp, Col, Func, InSet, Lit, Param
from ...plan.logical import (
    AggSpec,
    Aggregate,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
)
from ...storage.catalog import Direction
from .common import register, run_template

IN = Direction.IN
OUT = Direction.OUT


def _col_items(*names: str) -> list[tuple[str, Col]]:
    return [(n, Col(n)) for n in names]


@register("IC1", "IC", "transitive friends with a given first name")
def ic1(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """Friends up to 3 hops named ``firstName``, ordered by distance."""
    collected: list[tuple] = []
    for distance in (1, 2, 3):
        # Each hop distance builds a structurally different plan (the hop
        # bounds and the Lit(distance) projection differ), so it is keyed
        # as its own template.
        result = run_template(
            engine,
            ("IC1", distance),
            [
                NodeByIdSeek("p", "Person", Param("personId")),
                Expand("p", "f", "KNOWS", OUT, min_hops=distance, max_hops=distance,
                       exclude_start=True),
                GetProperty("f", "firstName", "name"),
                Filter(Col("name") == Param("firstName")),
                GetProperty("f", "id", "friendId"),
                GetProperty("f", "lastName", "lastName"),
                GetProperty("f", "birthday", "birthday"),
                Expand("f", "city", "IS_LOCATED_IN", OUT, to_label="Place"),
                GetProperty("city", "name", "cityName"),
                Project(
                    _col_items("friendId", "lastName", "birthday", "cityName")
                    + [("distance", Lit(distance))]
                ),
                OrderBy([("lastName", True), ("friendId", True)]),
            ],
            ["distance", "lastName", "friendId", "birthday", "cityName"],
            params,
            stats,
        )
        collected.extend(result.rows)
        if len(collected) >= 20:
            break
    collected.sort(key=lambda r: (r[0], r[1], r[2]))
    return collected[:20]


def _person_props(view, row: int) -> tuple[int, str, str]:
    return (
        view.get_property("Person", row, "id"),
        view.get_property("Person", row, "firstName"),
        view.get_property("Person", row, "lastName"),
    )


@register("IC2", "IC", "recent messages by friends")
def ic2(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC2: recent messages by friends."""
    # Hot stage: top-20 on ids + sort keys only (late materialization).
    result = run_template(
        engine,
        "IC2",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "creationDate", "msgDate"),
            Filter(Col("msgDate") <= Param("maxDate")),
            GetProperty("msg", "id", "msgId"),
            Project(_col_items("f", "msg", "msgId", "msgDate")),
            OrderBy([("msgDate", False), ("msgId", True)]),
            Limit(20),
        ],
        ["f", "msg", "msgId", "msgDate"],
        params,
        stats,
    )
    # Cold stage: display properties for the 20 survivors.
    view = engine.read_view()
    rows = []
    for f_row, msg_row, msg_id, msg_date in result.rows:
        friend_id, first, last = _person_props(view, f_row)
        content = view.get_property("Message", msg_row, "content")
        rows.append((friend_id, first, last, msg_id, content, msg_date))
    return rows


@register("IC3", "IC", "friends who posted from two countries")
def ic3(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """Friends/foafs with messages from both country X and Y in a window,
    excluding persons located in X or Y."""
    # Per-invocation values ride in as parameters (never as embedded
    # literals) so both stages keep a stable, plan-cacheable template.
    countries = frozenset({params["countryX"], params["countryY"]})
    stage_params = {**params, "countryNames": countries}
    excluded = run_template(
        engine,
        ("IC3", "excluded"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Expand("f", "city", "IS_LOCATED_IN", OUT, to_label="Place"),
            Expand("city", "country", "IS_PART_OF", OUT, to_label="Place"),
            GetProperty("country", "name", "countryName"),
            Filter(InSet(Col("countryName"), Param("countryNames"))),
            Project(_col_items("f")),
        ],
        ["f"],
        stage_params,
        stats,
    )
    excluded_rows = frozenset(r[0] for r in excluded.rows)
    stage_params["excludedRows"] = excluded_rows

    stage = run_template(
        engine,
        ("IC3", "counts"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Filter(InSet(Col("f"), Param("excludedRows"), negate=True)),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "creationDate", "msgDate"),
            Expand("msg", "place", "IS_LOCATED_IN", OUT, to_label="Place"),
            GetProperty("place", "name", "placeName"),
            # One WHERE conjunction over message *and* place attributes —
            # it spans f-Tree nodes, so the factorized executor de-factors
            # before filtering (paper: IC3 reverts to flat execution).
            Filter(
                BoolOp(
                    "and",
                    [
                        Col("msgDate") >= Param("startDate"),
                        Col("msgDate") < Param("endDate"),
                        InSet(Col("placeName"), Param("countryNames")),
                    ],
                )
            ),
            GetProperty("f", "id", "friendId"),
            # Group keys span the friend and place nodes: the factorized
            # executor must de-factor here (paper: IC3 reverts to flat).
            Aggregate(["friendId", "placeName"], [AggSpec("msgCount", "count")]),
        ],
        ["friendId", "placeName", "msgCount"],
        stage_params,
        stats,
    )
    per_friend: dict[int, dict[str, int]] = {}
    for friend_id, place, count in stage.rows:
        per_friend.setdefault(friend_id, {})[place] = count
    rows = [
        (fid, counts[params["countryX"]], counts[params["countryY"]],
         counts[params["countryX"]] + counts[params["countryY"]])
        for fid, counts in per_friend.items()
        if counts.get(params["countryX"], 0) > 0 and counts.get(params["countryY"], 0) > 0
    ]
    rows.sort(key=lambda r: (-r[3], r[0]))
    return rows[:20]


@register("IC4", "IC", "new topics in friends' posts")
def ic4(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC4: new topics in friends' posts."""
    def tag_stage(stage_key, date_filter, extra_ops, returns, stage_params=params):
        # The two stages thread different filters and tails through one
        # helper, so each keys its own template.
        return run_template(
            engine,
            ("IC4", stage_key),
            [
                NodeByIdSeek("p", "Person", Param("personId")),
                Expand("p", "f", "KNOWS", OUT),
                Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
                GetProperty("msg", "isPost", "isPost"),
                Filter(Col("isPost") == Lit(True)),
                GetProperty("msg", "creationDate", "msgDate"),
                Filter(date_filter),
                Expand("msg", "t", "HAS_TAG", OUT, to_label="Tag"),
                GetProperty("t", "name", "tagName"),
            ]
            + extra_ops,
            returns,
            stage_params,
            stats,
        )

    old = tag_stage(
        "old",
        Col("msgDate") < Param("startDate"),
        [Project(_col_items("tagName")), Distinct(["tagName"])],
        ["tagName"],
    )
    old_tags = frozenset(r[0] for r in old.rows)
    result = tag_stage(
        "new",
        BoolOp("and", [Col("msgDate") >= Param("startDate"),
                       Col("msgDate") < Param("endDate")]),
        [
            Filter(InSet(Col("tagName"), Param("oldTags"), negate=True)),
            Aggregate(["tagName"], [AggSpec("postCount", "count")]),
            OrderBy([("postCount", False), ("tagName", True)]),
            Limit(10),
        ],
        ["tagName", "postCount"],
        {**params, "oldTags": old_tags},
    )
    return result.rows


@register("IC5", "IC", "new groups of friends")
def ic5(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """Forums that friends/foafs joined after a date, ranked by the number
    of posts those members created in them — the paper's flagship
    AggregateProjectTop query."""
    foafs = run_template(
        engine,
        ("IC5", "foafs"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Project(_col_items("f")),
        ],
        ["f"],
        params,
        stats,
    )
    foaf_rows = [r[0] for r in foafs.rows]
    if not foaf_rows:
        return []
    stage_params = {**params, "foafRows": np.asarray(foaf_rows, dtype=np.int64)}
    joined = run_template(
        engine,
        ("IC5", "joined"),
        [
            NodeByRows("f", "Person", "foafRows"),
            Expand("f", "forum", "HAS_MEMBER", IN, to_label="Forum",
                   edge_props={"joinDate": "joinDate"}),
            Filter(Col("joinDate") > Param("minDate")),
            Project(_col_items("forum")),
        ],
        ["forum"],
        stage_params,
        stats,
    )
    forum_rows = sorted(set(r[0] for r in joined.rows))
    if not forum_rows:
        return []
    stage_params["forumRows"] = np.asarray(forum_rows, dtype=np.int64)
    stage_params["foafSet"] = frozenset(foaf_rows)
    result = run_template(
        engine,
        ("IC5", "rank"),
        [
            NodeByRows("forum", "Forum", "forumRows"),
            GetProperty("forum", "id", "forumId"),
            GetProperty("forum", "title", "title"),
            Expand("forum", "msg", "CONTAINER_OF", OUT, to_label="Message"),
            GetProperty("msg", "isPost", "isPost"),
            Filter(Col("isPost") == Lit(True)),
            Expand("msg", "creator", "HAS_CREATOR", OUT, to_label="Person"),
            Filter(InSet(Col("creator"), Param("foafSet"))),
            # Group keys live in the root node: the factorized executor
            # counts via index vectors without enumerating a single tuple.
            Aggregate(["forumId", "title"], [AggSpec("postCount", "count")]),
            OrderBy([("postCount", False), ("forumId", True)]),
            Limit(20),
        ],
        ["forumId", "title", "postCount"],
        stage_params,
        stats,
    )
    return result.rows


@register("IC6", "IC", "tag co-occurrence in friends' posts")
def ic6(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC6: tag co-occurrence in friends' posts."""
    tagged = run_template(
        engine,
        ("IC6", "tagged"),
        [
            NodeScan("t", "Tag"),
            GetProperty("t", "name", "tName"),
            Filter(Col("tName") == Param("tagName")),
            Expand("t", "msg", "HAS_TAG", IN, to_label="Message"),
            Project(_col_items("msg")),
        ],
        ["msg"],
        params,
        stats,
    )
    tagged_posts = frozenset(r[0] for r in tagged.rows)
    stage_params = {**params, "taggedPosts": tagged_posts}
    result = run_template(
        engine,
        ("IC6", "cooccur"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "isPost", "isPost"),
            Filter(
                BoolOp("and", [Col("isPost") == Lit(True),
                               InSet(Col("msg"), Param("taggedPosts"))])
            ),
            Expand("msg", "other", "HAS_TAG", OUT, to_label="Tag"),
            GetProperty("other", "name", "otherTag"),
            Filter(Col("otherTag") != Param("tagName")),
            Aggregate(["otherTag"], [AggSpec("postCount", "count")]),
            OrderBy([("postCount", False), ("otherTag", True)]),
            Limit(10),
        ],
        ["otherTag", "postCount"],
        stage_params,
        stats,
    )
    return result.rows


@register("IC7", "IC", "recent likers of a person's messages")
def ic7(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC7: recent likers of a person's messages."""
    friends = run_template(
        engine,
        ("IC7", "friends"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT),
            GetProperty("f", "id", "friendId"),
            Project(_col_items("friendId")),
        ],
        ["friendId"],
        params,
        stats,
    )
    friend_ids = frozenset(r[0] for r in friends.rows)
    result = run_template(
        engine,
        ("IC7", "likers"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "msg", "HAS_CREATOR", IN, to_label="Message"),
            Expand("msg", "liker", "LIKES", IN, to_label="Person",
                   edge_props={"likeDate": "creationDate"}),
            GetProperty("liker", "id", "likerId"),
            GetProperty("liker", "firstName", "firstName"),
            GetProperty("liker", "lastName", "lastName"),
            Aggregate(
                ["likerId", "firstName", "lastName"],
                [AggSpec("latestLike", "max", "likeDate")],
            ),
            OrderBy([("latestLike", False), ("likerId", True)]),
            Limit(20),
        ],
        ["likerId", "firstName", "lastName", "latestLike"],
        params,
        stats,
    )
    return [
        (liker_id, first, last, latest, liker_id not in friend_ids)
        for liker_id, first, last, latest in result.rows
    ]


@register("IC8", "IC", "recent replies to a person's messages")
def ic8(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC8: recent replies to a person's messages."""
    result = run_template(
        engine,
        "IC8",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "m", "HAS_CREATOR", IN, to_label="Message"),
            Expand("m", "c", "REPLY_OF", IN, to_label="Message"),
            GetProperty("c", "creationDate", "replyDate"),
            GetProperty("c", "id", "replyId"),
            Project(_col_items("c", "replyDate", "replyId")),
            OrderBy([("replyDate", False), ("replyId", True)]),
            Limit(20),
        ],
        ["c", "replyDate", "replyId"],
        params,
        stats,
    )
    from ...storage.catalog import AdjacencyKey

    view = engine.read_view()
    creator = AdjacencyKey("Message", "HAS_CREATOR", "Person", OUT)
    rows = []
    for c_row, reply_date, reply_id in result.rows:
        content = view.get_property("Message", c_row, "content")
        authors = view.neighbors(creator, int(c_row))
        author_id, first, last = _person_props(view, int(authors[0]))
        rows.append((author_id, first, last, reply_date, reply_id, content))
    return rows


@register("IC9", "IC", "recent messages by transitive friends")
def ic9(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC9: recent messages by transitive friends."""
    result = run_template(
        engine,
        "IC9",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "creationDate", "msgDate"),
            Filter(Col("msgDate") < Param("maxDate")),
            GetProperty("msg", "id", "msgId"),
            Project(_col_items("f", "msg", "msgId", "msgDate")),
            OrderBy([("msgDate", False), ("msgId", True)]),
            Limit(20),
        ],
        ["f", "msg", "msgId", "msgDate"],
        params,
        stats,
    )
    view = engine.read_view()
    rows = []
    for f_row, msg_row, msg_id, msg_date in result.rows:
        friend_id, first, last = _person_props(view, f_row)
        content = view.get_property("Message", msg_row, "content")
        rows.append((friend_id, first, last, msg_id, content, msg_date))
    return rows


@register("IC10", "IC", "friend recommendation by common interests")
def ic10(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC10: friend recommendation by common interests."""
    month = int(params["month"])
    next_month = month % 12 + 1
    interests = run_template(
        engine,
        ("IC10", "interests"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "t", "HAS_INTEREST", OUT, to_label="Tag"),
            Project(_col_items("t")),
        ],
        ["t"],
        params,
        stats,
    )
    interest_rows = frozenset(r[0] for r in interests.rows)

    birthday_filter = BoolOp(
        "or",
        [
            BoolOp("and", [Func("month", [Col("birthday")]) == Param("birthdayMonth"),
                           Func("day", [Col("birthday")]) >= Lit(21)]),
            BoolOp("and", [Func("month", [Col("birthday")]) == Param("birthdayNextMonth"),
                           Func("day", [Col("birthday")]) < Lit(22)]),
        ],
    )
    # birthday_filter is rebuilt per call but structurally constant (the
    # month bounds ride in as params), so one template instance suffices.
    candidates = run_template(
        engine,
        ("IC10", "candidates"),
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=2, max_hops=2, exclude_start=True),
            GetProperty("f", "birthday", "birthday"),
            Filter(birthday_filter),
            GetProperty("f", "id", "friendId"),
            GetProperty("f", "gender", "gender"),
            Project(_col_items("f", "friendId", "gender")),
        ],
        ["f", "friendId", "gender"],
        {**params, "birthdayMonth": month, "birthdayNextMonth": next_month},
        stats,
    )
    if not candidates.rows:
        return []
    candidate_rows = np.asarray([r[0] for r in candidates.rows], dtype=np.int64)
    info = {r[0]: (r[1], r[2]) for r in candidates.rows}
    stage_params = {
        **params,
        "candidateRows": candidate_rows,
        "interestSet": interest_rows,
    }
    common = run_template(
        engine,
        ("IC10", "common"),
        [
            NodeByRows("f", "Person", "candidateRows"),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "isPost", "isPost"),
            GetProperty("msg", "id", "msgId"),
            Expand("msg", "t", "HAS_TAG", OUT, to_label="Tag"),
            # WHERE conjunction over message and tag nodes, then a count
            # DISTINCT spanning nodes: IC10 stays flat (paper Table 2).
            Filter(
                BoolOp(
                    "and",
                    [Col("isPost") == Lit(True), InSet(Col("t"), Param("interestSet"))],
                )
            ),
            Aggregate(["f"], [AggSpec("common", "count_distinct", "msgId")]),
        ],
        ["f", "common"],
        stage_params,
        stats,
    )
    common_by_row = {r[0]: r[1] for r in common.rows}
    totals = run_template(
        engine,
        ("IC10", "totals"),
        [
            NodeByRows("f", "Person", "candidateRows"),
            Expand("f", "msg", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("msg", "isPost", "isPost"),
            Filter(Col("isPost") == Lit(True)),
            Aggregate(["f"], [AggSpec("total", "count")]),
        ],
        ["f", "total"],
        stage_params,
        stats,
    )
    totals_by_row = {r[0]: r[1] for r in totals.rows}
    rows = []
    for row in candidate_rows.tolist():
        friend_id, gender = info[row]
        common_posts = common_by_row.get(row, 0)
        total_posts = totals_by_row.get(row, 0)
        score = common_posts - (total_posts - common_posts)
        rows.append((friend_id, gender, score))
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows[:10]


@register("IC11", "IC", "job referral")
def ic11(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC11: job referral."""
    result = run_template(
        engine,
        "IC11",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT, min_hops=1, max_hops=2, exclude_start=True),
            Expand("f", "org", "WORK_AT", OUT, to_label="Organisation",
                   edge_props={"workFrom": "workFrom"}),
            Filter(Col("workFrom") < Param("workFromYear")),
            Expand("org", "place", "IS_LOCATED_IN", OUT, to_label="Place"),
            GetProperty("place", "name", "countryName"),
            Filter(Col("countryName") == Param("countryName")),
            GetProperty("f", "id", "friendId"),
            GetProperty("f", "firstName", "firstName"),
            GetProperty("f", "lastName", "lastName"),
            GetProperty("org", "name", "orgName"),
            Project(
                _col_items("friendId", "firstName", "lastName", "orgName", "workFrom")
            ),
            OrderBy([("workFrom", True), ("friendId", True), ("orgName", False)]),
            Limit(10),
        ],
        ["friendId", "firstName", "lastName", "orgName", "workFrom"],
        params,
        stats,
    )
    return result.rows


@register("IC12", "IC", "expert search in a tag-class subtree")
def ic12(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC12: expert search in a tag-class subtree."""
    # Stage A: descendant tag classes of the parameter class (storage walk).
    view = engine.read_view()
    from ...storage.catalog import AdjacencyKey

    subclass_in = AdjacencyKey("TagClass", "IS_SUBCLASS_OF", "TagClass", IN)
    table = view.store.table("TagClass")
    roots = [
        row
        for row in view.all_rows("TagClass")
        if table.get_property(int(row), "name") == params["tagClassName"]
    ]
    descendant_rows: set[int] = set()
    frontier = [int(r) for r in roots]
    while frontier:
        current = frontier.pop()
        if current in descendant_rows:
            continue
        descendant_rows.add(current)
        frontier.extend(int(x) for x in view.neighbors(subclass_in, current))
    stage_params = {**params, "classRows": frozenset(descendant_rows)}

    result = run_template(
        engine,
        "IC12",
        [
            NodeByIdSeek("p", "Person", Param("personId")),
            Expand("p", "f", "KNOWS", OUT),
            Expand("f", "c", "HAS_CREATOR", IN, to_label="Message"),
            GetProperty("c", "isPost", "cIsPost"),
            Filter(Col("cIsPost") == Lit(False)),
            GetProperty("c", "id", "commentId"),
            Expand("c", "parent", "REPLY_OF", OUT, to_label="Message"),
            GetProperty("parent", "isPost", "parentIsPost"),
            Filter(Col("parentIsPost") == Lit(True)),
            Expand("parent", "t", "HAS_TAG", OUT, to_label="Tag"),
            Expand("t", "tc", "HAS_TYPE", OUT, to_label="TagClass"),
            Filter(InSet(Col("tc"), Param("classRows"))),
            GetProperty("f", "id", "friendId"),
            # count DISTINCT comments per friend spans nodes -> de-factor.
            Aggregate(["friendId"], [AggSpec("replyCount", "count_distinct", "commentId")]),
            OrderBy([("replyCount", False), ("friendId", True)]),
            Limit(20),
        ],
        ["friendId", "replyCount"],
        stage_params,
        stats,
    )
    return result.rows


@register("IC13", "IC", "single shortest path (stored procedure)")
def ic13(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC13: single shortest path (stored procedure)."""
    result = run_template(
        engine,
        "IC13",
        [
            ProcedureCall(
                "shortest_path_length",
                {"person1_id": Param("person1Id"), "person2_id": Param("person2Id")},
            )
        ],
        ["length"],
        params,
        stats,
    )
    return result.rows


@register("IC14", "IC", "trusted connection paths (stored procedure)")
def ic14(engine: GraphEngineService, params: dict[str, Any], stats: ExecStats) -> list[tuple]:
    """IC14: trusted connection paths (stored procedure)."""
    result = run_template(
        engine,
        "IC14",
        [
            ProcedureCall(
                "weighted_shortest_paths",
                {"person1_id": Param("person1Id"), "person2_id": Param("person2Id")},
            )
        ],
        ["pathPersonIds", "pathWeight"],
        params,
        stats,
    )
    return result.rows
