"""LDBC SNB Interactive workload queries: IC1–IC14, IS1–IS7, IU1–IU8.

Importing this package populates :data:`REGISTRY` with all 29 queries.
"""

from . import ic, isq, iu  # noqa: F401  — imports register the queries
from .common import REGISTRY, LdbcQueryDef, queries_of, run_plan, run_template

__all__ = ["REGISTRY", "LdbcQueryDef", "queries_of", "run_plan", "run_template"]
