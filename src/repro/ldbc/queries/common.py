"""Shared plumbing for the LDBC workload implementations.

Each query is a plain function ``(engine, params, stats) -> rows`` that
builds one or more logical plans and runs them through the engine — the
same function therefore executes on all three GES variants, and multi-stage
queries accumulate their statistics into one :class:`ExecStats` exactly
like one physical plan would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

from ...engine.service import GraphEngineService
from ...exec.base import ExecStats, QueryResult
from ...plan.logical import LogicalOp, LogicalPlan

QueryFn = Callable[[GraphEngineService, dict[str, Any], ExecStats], list[tuple[Any, ...]]]


@dataclass(frozen=True)
class LdbcQueryDef:
    """One registered workload query."""

    name: str  # e.g. "IC5"
    category: str  # "IC" | "IS" | "IU"
    fn: QueryFn
    description: str = ""


#: Global registry: name -> definition, filled by the ic/is/iu modules.
REGISTRY: dict[str, LdbcQueryDef] = {}


def register(name: str, category: str, description: str = "") -> Callable[[QueryFn], QueryFn]:
    """Decorator adding a workload query to :data:`REGISTRY`."""

    def decorator(fn: QueryFn) -> QueryFn:
        REGISTRY[name] = LdbcQueryDef(name, category, fn, description)
        return fn

    return decorator


def queries_of(category: str) -> list[LdbcQueryDef]:
    """All registered queries of one category (IC/IS/IU)."""
    return [q for q in REGISTRY.values() if q.category == category]


def run_plan(
    engine: GraphEngineService,
    ops: Sequence[LogicalOp],
    returns: list[str] | None,
    params: dict[str, Any],
    stats: ExecStats,
) -> QueryResult:
    """Execute one stage plan, folding its stats into the query's."""
    plan = LogicalPlan(list(ops), returns=returns)
    return engine.execute(plan, params, stats=stats)


#: Process-wide prepared plan templates, keyed per query stage.
_TEMPLATES: dict[Hashable, LogicalPlan] = {}


def run_template(
    engine: GraphEngineService,
    key: Hashable,
    ops: Sequence[LogicalOp],
    returns: list[str] | None,
    params: dict[str, Any],
    stats: ExecStats,
) -> QueryResult:
    """Execute one *prepared* stage plan (one plan instance per *key*).

    LDBC operations are parameterized templates: the plan shape never
    changes between invocations, only the ``Param`` bindings do.  The
    first call per *key* wraps *ops* into a :class:`LogicalPlan`; every
    later call reuses that same immutable instance, so the engine's plan
    cache amortizes the structural fingerprint (memoized on the instance)
    and the optimized physical pipeline across the whole benchmark
    stream.  Any per-invocation data must therefore ride in *params*,
    never inside the ops themselves — a stage whose op list varies per
    call must use :func:`run_plan` (or key each variant separately, as
    IC1 does with its hop distance).
    """
    plan = _TEMPLATES.get(key)
    if plan is None:
        plan = LogicalPlan(list(ops), returns=returns)
        _TEMPLATES[key] = plan
    return engine.execute(plan, params, stats=stats)
