"""Shared plumbing for the LDBC workload implementations.

Each query is a plain function ``(engine, params, stats) -> rows`` that
builds one or more logical plans and runs them through the engine — the
same function therefore executes on all three GES variants, and multi-stage
queries accumulate their statistics into one :class:`ExecStats` exactly
like one physical plan would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ...engine.service import GraphEngineService
from ...exec.base import ExecStats, QueryResult
from ...plan.logical import LogicalOp, LogicalPlan

QueryFn = Callable[[GraphEngineService, dict[str, Any], ExecStats], list[tuple[Any, ...]]]


@dataclass(frozen=True)
class LdbcQueryDef:
    """One registered workload query."""

    name: str  # e.g. "IC5"
    category: str  # "IC" | "IS" | "IU"
    fn: QueryFn
    description: str = ""


#: Global registry: name -> definition, filled by the ic/is/iu modules.
REGISTRY: dict[str, LdbcQueryDef] = {}


def register(name: str, category: str, description: str = "") -> Callable[[QueryFn], QueryFn]:
    """Decorator adding a workload query to :data:`REGISTRY`."""

    def decorator(fn: QueryFn) -> QueryFn:
        REGISTRY[name] = LdbcQueryDef(name, category, fn, description)
        return fn

    return decorator


def queries_of(category: str) -> list[LdbcQueryDef]:
    """All registered queries of one category (IC/IS/IU)."""
    return [q for q in REGISTRY.values() if q.category == category]


def run_plan(
    engine: GraphEngineService,
    ops: Sequence[LogicalOp],
    returns: list[str] | None,
    params: dict[str, Any],
    stats: ExecStats,
) -> QueryResult:
    """Execute one stage plan, folding its stats into the query's."""
    plan = LogicalPlan(list(ops), returns=returns)
    return engine.execute(plan, params, stats=stats)
