"""Cross-engine result validation — the driver's correctness audit.

The LDBC driver "audits the correctness ... of the queries to ensure the
benchmark is valid" (paper §2.2).  With four executors over one store,
the strongest available audit is mutual agreement: every read query, for
every parameter draw, must return identical rows on the flat, factorized,
fused, and Volcano engines.  :func:`validate` runs that audit and returns
a structured report; the benchmark suite and the CLI expose it.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from ..baselines.volcano import VolcanoEngine
from ..engine.service import open_all_variants
from ..exec.base import ExecStats
from .datagen import SnbDataset
from .params import ParameterGenerator
from .queries import REGISTRY, queries_of


def normalize_value(value: Any) -> Any:
    """One comparison-safe scalar: NumPy scalars unboxed, NaN → None.

    IEEE NaN compares unequal to itself, so raw row comparison reports a
    false mismatch whenever both engines correctly return the same NULL
    float.  There is exactly one NULL class at the result boundary — the
    flat engines surface it as NaN for float columns while the row engine
    surfaces ``None`` (optional fills, empty ``avg``) — so normalization
    collapses NaN to ``None``, which is self-equal and hashable (rows can
    live in bags).
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def normalize_row(row: Iterable[Any]) -> tuple:
    """A row with every value normalized (see :func:`normalize_value`)."""
    return tuple(normalize_value(v) for v in row)


def normalize_rows(rows: Iterable[Iterable[Any]]) -> list[tuple]:
    """All rows normalized, order preserved."""
    return [normalize_row(row) for row in rows]


def rows_bag(rows: Iterable[Iterable[Any]]) -> Counter:
    """Multiset of normalized rows — the oracle's order-insensitive view."""
    return Counter(normalize_rows(rows))


def bags_equal(left: Iterable[Iterable[Any]], right: Iterable[Iterable[Any]]) -> bool:
    """Bag (multiset) equality of two row lists under normalization."""
    return rows_bag(left) == rows_bag(right)


@dataclass
class Mismatch:
    """One disagreement found by the audit."""

    query: str
    variant: str
    params: dict
    expected_rows: int
    actual_rows: int


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    checks: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    errors: list[tuple[str, str, str]] = field(default_factory=list)  # (query, variant, error)

    @property
    def passed(self) -> bool:
        return not self.mismatches and not self.errors

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}: {self.checks} checks, {len(self.mismatches)} mismatches, "
            f"{len(self.errors)} errors"
        )


def validate(
    dataset: SnbDataset,
    queries: Sequence[str] | None = None,
    draws: int = 3,
    seed: int = 7,
    include_volcano: bool = True,
) -> ValidationReport:
    """Audit read-query agreement across all engine variants.

    ``queries`` defaults to every registered IC and IS query.  Update
    queries are excluded: they mutate the store, so agreement is checked
    end-to-end by the driver tests instead.
    """
    if queries is None:
        queries = [q.name for q in queries_of("IC")] + [q.name for q in queries_of("IS")]
    engines = dict(open_all_variants(dataset.store))
    if include_volcano:
        engines["Volcano"] = VolcanoEngine(dataset.store)
    generator = ParameterGenerator(dataset, seed=seed)

    report = ValidationReport()
    for name in queries:
        definition = REGISTRY[name]
        if definition.category == "IU":
            raise ValueError(f"{name} is an update query; validation covers reads only")
        for _ in range(draws):
            params = generator.params_for(name)
            results = {}
            for variant, engine in engines.items():
                try:
                    results[variant] = definition.fn(engine, params, ExecStats())
                except Exception as exc:  # noqa: BLE001 — audit records, not raises
                    report.errors.append((name, variant, repr(exc)))
                    results[variant] = None
            baseline = results.get("GES")
            normalized_baseline = (
                normalize_rows(baseline) if baseline is not None else None
            )
            for variant, rows in results.items():
                report.checks += 1
                if rows is None or normalized_baseline is None:
                    continue
                if normalize_rows(rows) != normalized_baseline:
                    report.mismatches.append(
                        Mismatch(name, variant, params, len(baseline), len(rows))
                    )
    return report
