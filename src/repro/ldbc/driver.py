"""The LDBC SNB Interactive benchmark driver.

Reproduces the protocol of §2.2/§6: the driver builds an operation stream
mixing IC/IS/IU queries according to the spec frequencies, fires them at
the system under test, logs per-operation latency, audits the run (all
operations answered, result sanity), and computes a throughput score.

Throughput scoring follows the Time-Compression-Ratio rule: the reported
ops/s is the highest arrival rate at which at most 5 % of operations start
more than one second late.  We measure real single-worker service times by
executing the whole stream, then find that rate with the discrete-event
N-server simulation from :mod:`repro.exec.runtime` (the substitution for
the paper's 96-vCPU cluster; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..engine.service import GraphEngineService
from ..errors import DriverError, GesError
from ..exec.base import ExecStats
from ..resilience.watchdog import Deadline, deadline_scope
from ..exec.runtime import simulate_service
from ..obs.clock import now
from ..obs.metrics import Histogram, REGISTRY as METRICS
from .datagen import SnbDataset
from .params import CATEGORY_MIX, INTERLEAVES, ParameterGenerator
from .queries import REGISTRY  # noqa: F401  (imports register all queries)
from .queries.common import queries_of

#: LDBC audit rule: an operation is delayed when it starts late.  The spec
#: uses 1 s on full-scale graphs; since mini-scale service times are ~1000x
#: smaller, the bound is compressed with the same ratio as the data (a
#: fixed floor keeps it meaningful for sub-millisecond mixes).
ON_TIME_FLOOR_SECONDS = 0.005
ON_TIME_SERVICE_MULTIPLIER = 10.0
MAX_DELAYED_FRACTION = 0.05


@dataclass
class Operation:
    """One scheduled benchmark operation."""

    index: int
    name: str
    category: str
    params: dict[str, Any]


@dataclass
class OperationLog:
    """Measured outcome of one operation.

    ``error`` is None on success; on a typed engine failure (timeout,
    admission rejection, aborted transaction, …) it carries the error
    class name plus message and ``rows`` is 0 — per-query error
    accounting instead of the whole run aborting (LDBC SNB measures
    sustainable throughput under an SLA *with* an error budget).
    """

    name: str
    category: str
    service_seconds: float
    rows: int
    peak_bytes: int
    compile_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    error: str | None = None


@dataclass
class DriverReport:
    """Everything a benchmark run produced."""

    variant: str
    scale: str
    logs: list[OperationLog] = field(default_factory=list)
    wall_seconds: float = 0.0

    # -- basic aggregates -----------------------------------------------------

    def latencies(self, name: str | None = None, category: str | None = None) -> np.ndarray:
        values = [
            log.service_seconds
            for log in self.logs
            if (name is None or log.name == name)
            and (category is None or log.category == category)
        ]
        return np.asarray(values, dtype=np.float64)

    def mean_latency_ms(self, name: str) -> float:
        lat = self.latencies(name)
        return float(lat.mean() * 1e3) if len(lat) else float("nan")

    def percentile_latency_ms(self, name: str, pct: float) -> float:
        """Exact percentile over the raw samples, in milliseconds.

        Well-defined on degenerate streams: nan with no samples, the
        sample itself with exactly one.
        """
        lat = self.latencies(name)
        return float(np.percentile(lat, pct) * 1e3) if len(lat) else float("nan")

    # -- histogram-primitive view (repro.obs.metrics) -------------------------

    def latency_histogram(
        self, name: str | None = None, category: str | None = None
    ) -> Histogram:
        """The matching operations' latencies folded into a log-bucketed
        :class:`~repro.obs.metrics.Histogram` (the primitive the metrics
        registry exports)."""
        histogram = Histogram()
        for value in self.latencies(name, category):
            histogram.observe(float(value))
        return histogram

    def latency_summary(
        self, name: str | None = None, category: str | None = None
    ) -> dict[str, float]:
        """n / mean / p50 / p95 / p99 milliseconds via the histogram primitives.

        Defined for every stream shape: all-nan percentiles on an empty
        selection, exact values on a singleton (the histogram clamps its
        estimates to the observed range).
        """
        histogram = self.latency_histogram(name, category)
        summary = histogram.summary()
        return {
            "n": int(summary["count"]),
            "mean_ms": summary["mean"] * 1e3,
            "p50_ms": summary["p50"] * 1e3,
            "p95_ms": summary["p95"] * 1e3,
            "p99_ms": summary["p99"] * 1e3,
            "errors": self.error_count(name, category),
        }

    def error_count(
        self, name: str | None = None, category: str | None = None
    ) -> int:
        """How many matching operations failed (typed engine errors)."""
        return len(
            [
                log
                for log in self.logs
                if log.error is not None
                and (name is None or log.name == name)
                and (category is None or log.category == category)
            ]
        )

    def count(self, category: str | None = None) -> int:
        return len([log for log in self.logs if category is None or log.category == category])

    @property
    def closed_loop_throughput(self) -> float:
        """Back-to-back ops/s on one worker (no scheduling)."""
        total = sum(log.service_seconds for log in self.logs)
        return len(self.logs) / total if total > 0 else 0.0

    # -- compile-pipeline breakdown ------------------------------------------

    @property
    def compile_seconds(self) -> float:
        """Total time spent in parse/bind/optimize (or cache lookups)."""
        return sum(log.compile_seconds for log in self.logs)

    @property
    def compile_fraction(self) -> float:
        """Share of total service time that was compilation."""
        total = sum(log.service_seconds for log in self.logs)
        return self.compile_seconds / total if total > 0 else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Plan-cache hit rate over every compile in the run (0 when the
        cache was disabled — no lookups happen)."""
        hits = sum(log.plan_cache_hits for log in self.logs)
        misses = sum(log.plan_cache_misses for log in self.logs)
        total = hits + misses
        return hits / total if total else 0.0

    # -- LDBC TCR throughput score -----------------------------------------------

    def throughput_score(self, workers: int = 1) -> float:
        """Best sustainable ops/s: ≤5 % of operations start too late.

        The audit simulation runs over the finite measured stream, so the
        result is additionally capped at the steady-state service capacity
        ``workers / mean_service`` — a finite backlog can hide inside a
        short run, but no system sustains more than its capacity.
        """
        services = np.asarray([log.service_seconds for log in self.logs])
        if len(services) == 0:
            return 0.0
        capacity = workers / max(float(services.mean()), 1e-9)
        low = 1e-3
        high = capacity * 4
        while self._feasible(services, high, workers) and high < capacity * 64:
            high *= 2
        for _ in range(40):
            mid = (low + high) / 2
            if self._feasible(services, mid, workers):
                low = mid
            else:
                high = mid
        return min(low, capacity)

    @staticmethod
    def _feasible(services: np.ndarray, rate: float, workers: int) -> bool:
        n = len(services)
        arrivals = np.arange(n) / rate
        sim = simulate_service(arrivals, services, workers)
        start_delay = sim.completion_times - services - arrivals
        on_time = max(
            ON_TIME_FLOOR_SECONDS, ON_TIME_SERVICE_MULTIPLIER * float(services.mean())
        )
        delayed = (start_delay > on_time).mean()
        return bool(delayed <= MAX_DELAYED_FRACTION)

    def throughput_trace(
        self, rate: float, workers: int, window_seconds: float = 10.0
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Windowed completed-ops/s per category at a given arrival rate
        (the Figure 14 stability trace).  An empty report yields an empty
        mapping (there is no window to histogram)."""
        if not self.logs:
            return {}
        services = np.asarray([log.service_seconds for log in self.logs])
        arrivals = np.arange(len(services)) / rate
        sim = simulate_service(arrivals, services, workers)
        horizon = float(sim.completion_times.max())
        edges = np.arange(0.0, horizon + window_seconds, window_seconds)
        if len(edges) < 2:  # sub-window stream: one window covers it all
            edges = np.asarray([0.0, window_seconds])
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        categories = {log.category for log in self.logs} | {"ALL"}
        for category in sorted(categories):
            mask = np.asarray(
                [category in ("ALL", log.category) for log in self.logs]
            )
            counts, _ = np.histogram(sim.completion_times[mask], bins=edges)
            out[category] = (edges[:-1], counts / window_seconds)
        return out


class BenchmarkDriver:
    """Builds the operation mix and fires it at one engine."""

    def __init__(
        self,
        engine: GraphEngineService,
        dataset: SnbDataset,
        seed: int = 7,
        include_updates: bool = True,
        include_shorts: bool = True,
        query_timeout: float | None = None,
    ) -> None:
        self.engine = engine
        self.dataset = dataset
        self.seed = seed
        self.include_updates = include_updates
        self.include_shorts = include_shorts
        #: Per-operation deadline in seconds (None = unbounded); installed
        #: as the ambient watchdog deadline around each operation.
        self.query_timeout = query_timeout

    def build_schedule(self, num_operations: int) -> list[Operation]:
        """The operation mix: IC per spec interleaves, IS bursts, IU stream."""
        rng = np.random.default_rng(self.seed)
        gen = ParameterGenerator(self.dataset, seed=self.seed)

        ic_defs = queries_of("IC")
        ic_weights = np.asarray([1.0 / INTERLEAVES[q.name] for q in ic_defs])
        ic_weights /= ic_weights.sum()
        is_defs = queries_of("IS")
        iu_defs = queries_of("IU")

        category_names = ["IC"]
        category_weights = [CATEGORY_MIX["IC"]]
        if self.include_shorts:
            category_names.append("IS")
            category_weights.append(CATEGORY_MIX["IS"])
        if self.include_updates:
            category_names.append("IU")
            category_weights.append(CATEGORY_MIX["IU"])
        weights = np.asarray(category_weights, dtype=float)
        weights /= weights.sum()

        operations: list[Operation] = []
        for index in range(num_operations):
            category = str(rng.choice(category_names, p=weights))
            if category == "IC":
                query = ic_defs[int(rng.choice(len(ic_defs), p=ic_weights))]
            elif category == "IS":
                query = is_defs[int(rng.integers(0, len(is_defs)))]
            else:
                query = iu_defs[int(rng.integers(0, len(iu_defs)))]
            operations.append(
                Operation(index, query.name, query.category, gen.params_for(query.name))
            )
        return operations

    def run(self, num_operations: int = 200) -> DriverReport:
        """Execute the stream back-to-back, measuring true service times.

        Each operation's latency also lands in the process metrics
        registry (``ges_ldbc_latency_seconds{category,query}`` plus the
        per-category operation counter), so a CLI ``metrics`` export after
        a run carries per-LDBC-query-type p50/p95/p99.
        """
        operations = self.build_schedule(num_operations)
        report = DriverReport(
            variant=self.engine.variant, scale=self.dataset.info.scale.name
        )
        metrics_on = getattr(self.engine, "config", None) is None or self.engine.config.metrics
        latency_hists: dict[str, Histogram] = {}
        category_counters: dict[str, Any] = {}
        wall_start = now()
        for op in operations:
            definition = REGISTRY[op.name]
            stats = ExecStats()
            deadline = (
                Deadline.after(self.query_timeout, label=op.name)
                if self.query_timeout is not None
                else None
            )
            started = now()
            failure: str | None = None
            rows: list = []
            try:
                with deadline_scope(deadline):
                    rows = definition.fn(self.engine, op.params, stats)
            except GesError as exc:
                # Typed engine failures (timeouts, admission rejections,
                # aborts) are part of a benchmark run under load: account
                # them per-operation and keep the run going.
                failure = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # raw exception: the run itself is broken
                error = DriverError(f"{op.name} failed with params {op.params}")
                # Attach the engine's flight recorder: the recent ring holds
                # exactly the operations leading up to this failure.
                flight = getattr(self.engine, "flight", None)
                error.flight_dump = flight.dump() if flight is not None else None
                raise error from exc
            elapsed = now() - started
            report.logs.append(
                OperationLog(
                    op.name,
                    op.category,
                    elapsed,
                    len(rows),
                    stats.peak_intermediate_bytes,
                    compile_seconds=stats.compile_seconds,
                    plan_cache_hits=stats.plan_cache_hits,
                    plan_cache_misses=stats.plan_cache_misses,
                    error=failure,
                )
            )
            if metrics_on:
                hist = latency_hists.get(op.name)
                if hist is None:
                    hist = METRICS.histogram(
                        "ges_ldbc_latency_seconds",
                        "Per-LDBC-query service time.",
                        category=op.category,
                        query=op.name,
                    )
                    latency_hists[op.name] = hist
                hist.observe(elapsed)
                counter = category_counters.get(op.category)
                if counter is None:
                    counter = METRICS.counter(
                        "ges_ldbc_operations_total",
                        "LDBC operations executed, by category.",
                        category=op.category,
                    )
                    category_counters[op.category] = counter
                counter.inc()
                if failure is not None:
                    METRICS.counter(
                        "ges_ldbc_errors_total",
                        "LDBC operations that failed with a typed engine error.",
                        category=op.category,
                    ).inc()
        report.wall_seconds = now() - wall_start
        self._audit(report, operations)
        return report

    @staticmethod
    def _audit(report: DriverReport, operations: list[Operation]) -> None:
        """The driver-side validity checks (paper §2.2: 'audits the
        correctness and latency of the queries')."""
        if len(report.logs) != len(operations):
            raise DriverError("operation count mismatch — run is invalid")
        if any(log.service_seconds < 0 for log in report.logs):
            raise DriverError("negative latency measured — run is invalid")
