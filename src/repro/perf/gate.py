"""The noise-aware regression gate over the perf trajectory.

The comparator answers one question per (variant, query) cell: is the
latest record's p50 outside the noise band implied by the cell's own
history?  The band is derived, not guessed:

* Each record carries the cell's MAD (median absolute deviation) across
  its interleaved repeats.  ``MAD × 1.4826`` is a robust stand-in for the
  standard deviation (exact under normality, outlier-immune otherwise).
* The cell's relative dispersion is the *median* ``1.4826 × MAD / p50``
  across the baseline records and the new record — a historically noisy
  cell gets a wide band, a tight cell a narrow one, and one freak record
  (a scheduler storm during that run) cannot poison every later
  comparison the way a max would.
* The band is ``max(band_floor, band_k × dispersion)``.  The floor
  absorbs the quantization noise of sub-millisecond Python timings;
  ``band_k`` sets how many "sigmas" of robust dispersion a change must
  clear before the gate calls it real.

Verdicts: ``regressed`` (ratio > 1 + band), ``improved`` (ratio <
1 / (1 + band)), ``unchanged`` otherwise, ``new`` when the cell has no
baseline.  A relative band alone misfires on the fastest cells — a
0.15 ms query that drifts to 0.25 ms is a 1.7x ratio but a 0.1 ms
absolute shift, beneath what a Python timer on a shared machine can
attribute to the code — so shifts smaller than ``min_effect_ms`` are
always ``unchanged`` regardless of ratio.  Only records made under the identical workload (name, version,
scale) are comparable — a workload edit can never masquerade as a perf
change.  A machine-fingerprint mismatch is surfaced as a warning in the
report (cross-machine comparisons answer a different question).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: MAD -> sigma consistency constant (normal distribution).
MAD_SIGMA = 1.4826

#: Default gate tuning.  The floor must swallow timer quantization on the
#: sub-millisecond queries of the mini-scale workloads; a genuine 2x
#: operator slowdown clears it by a wide margin.
DEFAULT_BAND_FLOOR = 0.30
DEFAULT_BAND_K = 5.0
DEFAULT_MIN_EFFECT_MS = 0.25


@dataclass
class Verdict:
    """One (variant, query) comparison."""

    variant: str
    query: str
    verdict: str  # regressed | improved | unchanged | new
    p50_ms: float
    baseline_p50_ms: float | None
    ratio: float | None
    band: float | None

    def __str__(self) -> str:
        if self.verdict == "new":
            return (
                f"{self.variant}/{self.query}: new "
                f"(p50 {self.p50_ms:.3f} ms, no baseline)"
            )
        return (
            f"{self.variant}/{self.query}: {self.verdict} "
            f"(p50 {self.p50_ms:.3f} ms vs {self.baseline_p50_ms:.3f} ms, "
            f"x{self.ratio:.2f}, band +/-{self.band * 100:.0f}%)"
        )


@dataclass
class GateReport:
    """Outcome of one gate run."""

    workload: str
    baseline_count: int
    verdicts: list[Verdict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def of(self, verdict: str) -> list[Verdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def has_regressions(self) -> bool:
        return bool(self.of("regressed"))

    def summary(self) -> str:
        counts = {
            kind: len(self.of(kind))
            for kind in ("regressed", "improved", "unchanged", "new")
        }
        status = "REGRESSED" if self.has_regressions else "OK"
        return (
            f"{status}: workload={self.workload} baselines={self.baseline_count} "
            + " ".join(f"{kind}={n}" for kind, n in counts.items())
        )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _workload_key(record: dict[str, Any]) -> tuple[Any, Any, Any]:
    workload = record["workload"]
    return (workload["name"], workload["version"], workload["scale"])


def compare_records(
    latest: dict[str, Any],
    baselines: list[dict[str, Any]],
    band_floor: float = DEFAULT_BAND_FLOOR,
    band_k: float = DEFAULT_BAND_K,
    min_effect_ms: float = DEFAULT_MIN_EFFECT_MS,
) -> GateReport:
    """Gate *latest* against compatible *baselines* (see module docstring)."""
    key = _workload_key(latest)
    usable = [r for r in baselines if _workload_key(r) == key]
    report = GateReport(
        workload=f"{key[0]} v{key[1]} @ {key[2]}", baseline_count=len(usable)
    )
    skipped = len(baselines) - len(usable)
    if skipped:
        report.notes.append(
            f"{skipped} baseline record(s) skipped: different workload identity"
        )
    fingerprints = {r["machine"].get("fingerprint") for r in usable}
    latest_fp = latest["machine"].get("fingerprint")
    if usable and fingerprints != {latest_fp}:
        report.notes.append(
            "machine fingerprint differs from baseline(s) — "
            "cross-machine deltas are not perf regressions"
        )
    if latest.get("injected_slowdowns"):
        report.notes.append(
            f"latest record carries injected slowdowns: "
            f"{latest['injected_slowdowns']} (gate self-test mode)"
        )

    for variant, block in sorted(latest["variants"].items()):
        for query, stats in sorted(block["queries"].items()):
            history = [
                r["variants"][variant]["queries"][query]
                for r in usable
                if query in r["variants"].get(variant, {}).get("queries", {})
            ]
            if not history:
                report.verdicts.append(
                    Verdict(variant, query, "new", stats["p50_ms"], None, None, None)
                )
                continue
            center = _median([h["p50_ms"] for h in history])
            dispersions = [
                MAD_SIGMA * h["mad_ms"] / h["p50_ms"]
                for h in history + [stats]
                if h["p50_ms"] > 0
            ]
            band = max(
                band_floor,
                band_k * (_median(dispersions) if dispersions else 0.0),
            )
            ratio = stats["p50_ms"] / center if center > 0 else float("inf")
            if abs(stats["p50_ms"] - center) <= min_effect_ms:
                verdict = "unchanged"
            elif ratio > 1 + band:
                verdict = "regressed"
            elif ratio < 1 / (1 + band):
                verdict = "improved"
            else:
                verdict = "unchanged"
            report.verdicts.append(
                Verdict(variant, query, verdict, stats["p50_ms"], center, ratio, band)
            )
    return report


def compare_trajectory(
    records: list[dict[str, Any]],
    band_floor: float = DEFAULT_BAND_FLOOR,
    band_k: float = DEFAULT_BAND_K,
    min_effect_ms: float = DEFAULT_MIN_EFFECT_MS,
) -> GateReport:
    """Gate the newest record against every prior compatible record."""
    if len(records) < 2:
        raise ValueError(
            "comparing needs at least two trajectory records "
            f"(found {len(records)}); run `repro perf record` twice"
        )
    return compare_records(
        records[-1],
        records[:-1],
        band_floor=band_floor,
        band_k=band_k,
        min_effect_ms=min_effect_ms,
    )


def render_report(report: GateReport, verbose: bool = False) -> str:
    """Human-readable gate output: regressions always, the rest on demand."""
    lines = [report.summary()]
    lines.extend(f"  note: {note}" for note in report.notes)
    for kind in ("regressed", "improved", "new", "unchanged"):
        verdicts = report.of(kind)
        if not verdicts:
            continue
        if kind == "unchanged" and not verbose:
            continue
        if kind in ("regressed", "improved") or verbose:
            lines.extend(f"  {v}" for v in verdicts)
        else:
            lines.append(f"  {kind}: {len(verdicts)} cell(s)")
    return "\n".join(lines)


def render_history(records: list[dict[str, Any]]) -> str:
    """``repro perf report``: one line per record, newest last."""
    if not records:
        return "trajectory is empty — run `repro perf record` first"
    lines = [
        f"{'#':>3} {'recorded_at':25} {'git_sha':12} {'machine':16} "
        f"{'workload':20} {'variants':28} {'elapsed':>8}"
    ]
    for i, record in enumerate(records):
        workload = record["workload"]
        ops = ", ".join(
            f"{v}:{b['ops_per_second']:.0f}/s"
            for v, b in sorted(record["variants"].items())
        )
        flag = " [injected]" if record.get("injected_slowdowns") else ""
        lines.append(
            f"{i:>3} {record['recorded_at']:25} {record['git_sha'][:12]:12} "
            f"{record['machine'].get('fingerprint', '?'):16} "
            f"{workload['name'] + ' v' + str(workload['version']) + ' ' + workload['scale']:20} "
            f"{ops:28} {record['elapsed_seconds']:>7.1f}s{flag}"
        )
    return "\n".join(lines)
