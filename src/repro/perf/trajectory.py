"""``BENCH_trajectory.json``: the repo's append-only perf history.

One file at the repo root, one JSON object::

    {"schema_version": 1, "records": [ <record>, <record>, ... ]}

Every ``repro perf record`` run appends exactly one record (see
:mod:`repro.perf.recorder` for its contents); the regression gate reads
the whole history to derive noise bands.  Records are validated on both
append *and* load — a hand-edited or truncated trajectory fails loudly
instead of silently feeding the gate garbage baselines.

The validator is deliberately hand-rolled (no jsonschema dependency):
:func:`validate_record` checks key presence, types, and the per-query
stat block shape, raising :class:`TrajectoryError` with a path-like
location (``variants.GES.queries.IC5.p50_ms``) on the first violation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

TRAJECTORY_SCHEMA_VERSION = 1

#: Per-query stat block: key -> required number-ness.
_QUERY_STAT_KEYS = ("samples", "p50_ms", "p95_ms", "mean_ms", "mad_ms")
_WORKLOAD_KEYS = (
    "name", "version", "scale", "seed", "param_seed",
    "warmup", "repeats", "draws", "read_queries", "update_queries", "variants",
)


class TrajectoryError(ValueError):
    """A malformed trajectory file or record."""


def default_trajectory_path() -> Path:
    """``BENCH_trajectory.json`` at the repo root (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "BENCH_trajectory.json"


def _require(condition: bool, where: str, expected: str) -> None:
    if not condition:
        raise TrajectoryError(f"trajectory record invalid at {where}: {expected}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: Any) -> dict[str, Any]:
    """Structurally validate one trajectory record; returns it unchanged."""
    _require(isinstance(record, dict), "<record>", "must be an object")
    _require(
        record.get("schema_version") == TRAJECTORY_SCHEMA_VERSION,
        "schema_version",
        f"must be {TRAJECTORY_SCHEMA_VERSION}",
    )
    for key in ("workload", "machine", "variants"):
        _require(isinstance(record.get(key), dict), key, "must be an object")
    for key in ("recorded_at", "git_sha"):
        _require(isinstance(record.get(key), str), key, "must be a string")
    _require(
        _is_number(record.get("elapsed_seconds")),
        "elapsed_seconds",
        "must be a number",
    )
    _require(
        isinstance(record.get("injected_slowdowns"), dict),
        "injected_slowdowns",
        "must be an object",
    )
    workload = record["workload"]
    for key in _WORKLOAD_KEYS:
        _require(key in workload, f"workload.{key}", "is required")
    _require(
        isinstance(workload["version"], int), "workload.version", "must be an int"
    )
    machine = record["machine"]
    _require(
        isinstance(machine.get("fingerprint"), str),
        "machine.fingerprint",
        "must be a string",
    )
    _require(len(record["variants"]) > 0, "variants", "must not be empty")
    for variant, block in record["variants"].items():
        where = f"variants.{variant}"
        _require(isinstance(block, dict), where, "must be an object")
        _require(
            isinstance(block.get("queries"), dict) and block["queries"],
            f"{where}.queries",
            "must be a non-empty object",
        )
        _require(
            _is_number(block.get("ops_per_second")),
            f"{where}.ops_per_second",
            "must be a number",
        )
        _require(
            _is_number(block.get("peak_fblock_bytes")),
            f"{where}.peak_fblock_bytes",
            "must be a number",
        )
        for key in ("plan_cache_hit_rate", "compression_ratio"):
            value = block.get(key)
            _require(
                value is None or _is_number(value),
                f"{where}.{key}",
                "must be a number or null",
            )
        for query, stats in block["queries"].items():
            qwhere = f"{where}.queries.{query}"
            _require(isinstance(stats, dict), qwhere, "must be an object")
            for key in _QUERY_STAT_KEYS:
                _require(
                    _is_number(stats.get(key)),
                    f"{qwhere}.{key}",
                    "must be a number",
                )
            _require(
                stats["samples"] >= 1, f"{qwhere}.samples", "must be >= 1"
            )
    return record


def load_trajectory(path: str | Path | None = None) -> list[dict[str, Any]]:
    """All records in the trajectory file (empty list when absent)."""
    path = Path(path) if path is not None else default_trajectory_path()
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"{path} is not valid JSON: {exc}") from exc
    _require(isinstance(payload, dict), "<file>", "must be an object")
    _require(
        payload.get("schema_version") == TRAJECTORY_SCHEMA_VERSION,
        "schema_version",
        f"must be {TRAJECTORY_SCHEMA_VERSION}",
    )
    records = payload.get("records")
    _require(isinstance(records, list), "records", "must be an array")
    return [validate_record(record) for record in records]


def append_record(
    record: dict[str, Any], path: str | Path | None = None
) -> Path:
    """Validate *record*, append it to the trajectory, return the path."""
    path = Path(path) if path is not None else default_trajectory_path()
    validate_record(record)
    records = load_trajectory(path)
    records.append(record)
    payload = {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "records": records,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
