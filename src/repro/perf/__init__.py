"""Continuous performance observability (`repro perf record|compare|report`).

Three pillars (DESIGN.md, "Performance methodology"):

* :mod:`repro.perf.workload` — pinned, versioned workload specs: fixed
  scale, seeds, and parameter streams covering IC/IS/IU on all three
  paper variants plus the Volcano baseline, so every recorded run
  measures *exactly* the same work.
* :mod:`repro.perf.recorder` — the noise-aware measurement protocol
  (warmup discard, interleaved repeats, MAD-based dispersion, machine
  fingerprint) appending one record per run to ``BENCH_trajectory.json``.
* :mod:`repro.perf.gate` — the regression gate: derives per-query noise
  bands from the trajectory's historical dispersion and emits
  regressed / improved / unchanged verdicts with a non-zero exit code
  on regression.

:mod:`repro.perf.trajectory` owns the trajectory file itself (schema
validation, append, load).
"""

from .gate import GateReport, Verdict, compare_trajectory, render_report
from .recorder import machine_fingerprint, record_run
from .trajectory import (
    TRAJECTORY_SCHEMA_VERSION,
    TrajectoryError,
    append_record,
    default_trajectory_path,
    load_trajectory,
    validate_record,
)
from .workload import WORKLOADS, WorkloadSpec

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "record_run",
    "machine_fingerprint",
    "TRAJECTORY_SCHEMA_VERSION",
    "TrajectoryError",
    "append_record",
    "load_trajectory",
    "validate_record",
    "default_trajectory_path",
    "compare_trajectory",
    "GateReport",
    "Verdict",
    "render_report",
]
