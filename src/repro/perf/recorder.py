"""The trajectory recorder: one noise-controlled measurement per run.

Measurement protocol (the controls the LDBC SNB benchmarking paper shows
graph-DB comparisons die without):

* **Warmup discard** — the first ``spec.warmup`` repeats run the full
  workload but record nothing: allocator warmup, plan-cache population,
  and adjacency-page faults land there instead of in the numbers.
* **Interleaved repeats** — the loop order is repeat → query → variant →
  draw, so the engine variants alternate within milliseconds of each
  other and slow drift (thermal, background load) hits all variants
  equally instead of biasing whichever ran last.
* **Robust statistics** — each (variant, query) cell reports the median
  (p50), p95, mean, and the median absolute deviation (MAD) of its
  ``repeats × draws`` samples.  The MAD is the dispersion the regression
  gate turns into noise bands: it ignores the occasional
  scheduler-hiccup outlier that would inflate a standard deviation.
* **GC quiescence** — the collector is forced once up front, then
  disabled for the duration of the run (restored after).  On the
  millisecond-scale queries of the mini workloads, a single gen-2 GC
  pause is bigger than the effects under measurement; with the collector
  off, allocation noise shows up as a slow drift the interleaving already
  averages out instead of as random multi-millisecond spikes.
* **Machine fingerprint** — platform, CPU count, and Python build are
  recorded (plus a stable digest) so the gate can tell "this commit got
  slower" from "this record came from a different machine".

Everything else in the record is bookkeeping the paper's evaluation
reports per variant: closed-loop ops/s, plan-cache hit rate, factorization
compression ratio, and peak f-Block bytes — plus the git SHA, so the
trajectory doubles as the repo's perf history.
"""

from __future__ import annotations

import gc
import hashlib
import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Any, Mapping

import numpy as np

from .. import GES, EngineConfig
from ..baselines import VolcanoEngine
from ..exec.base import ExecStats, set_injected_slowdowns
from ..ldbc.queries import REGISTRY
from ..obs.clock import now, wall_time
from .trajectory import TRAJECTORY_SCHEMA_VERSION
from .workload import WORKLOADS, WorkloadSpec, materialize

_CONFIGS = {
    "GES": EngineConfig.ges,
    "GES_f": EngineConfig.ges_f,
    "GES_f*": EngineConfig.ges_f_star,
}


def machine_fingerprint() -> dict[str, Any]:
    """Where this record was measured, with a stable identity digest.

    Only slow-moving facts participate in the digest (platform triple,
    machine, CPU count, Python version) — not load averages or hostnames
    that would fracture one machine's history into many.
    """
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest_src = "|".join(f"{k}={info[k]}" for k in sorted(info))
    info["fingerprint"] = hashlib.sha256(digest_src.encode()).hexdigest()[:16]
    return info


def git_sha() -> str:
    """The commit under measurement (``unknown`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:  # noqa: BLE001 — the record is still useful without it
        return "unknown"


def _make_engine(variant: str, store) -> Any:
    if variant == "Volcano":
        return VolcanoEngine(store)
    return GES(store, _CONFIGS[variant]())


def _cell_stats(samples: list[float]) -> dict[str, float]:
    """p50/p95/mean/MAD milliseconds over one (variant, query) cell."""
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    p50 = float(np.median(arr))
    return {
        "samples": int(len(arr)),
        "p50_ms": p50,
        "p95_ms": float(np.percentile(arr, 95)),
        "mean_ms": float(arr.mean()),
        "mad_ms": float(np.median(np.abs(arr - p50))),
    }


def record_run(
    spec: WorkloadSpec | str = "full",
    inject_slowdowns: Mapping[str, float] | None = None,
    on_event: Any = None,
) -> dict[str, Any]:
    """Execute one pinned workload under the noise protocol; return the record.

    ``inject_slowdowns`` (e.g. ``{"Expand": 2.0}``) installs real
    busy-wait operator slowdowns for the duration of the run — the
    regression gate's self-test — and is recorded into the entry so a
    doctored record can never pass as an honest one.
    """
    if isinstance(spec, str):
        spec = WORKLOADS[spec]
    emit = on_event if on_event is not None else (lambda _msg: None)
    run_started = now()

    work = materialize(spec)
    engines = {v: _make_engine(v, work.datasets[v].store) for v in spec.variants}
    samples: dict[tuple[str, str], list[float]] = {}
    totals: dict[str, dict[str, float]] = {
        v: {
            "ops": 0, "seconds": 0.0, "peak_bytes": 0,
            "cache_hits": 0, "cache_misses": 0,
            "flat_tuples": 0, "ftree_slots": 0,
        }
        for v in spec.variants
    }

    set_injected_slowdowns(inject_slowdowns)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        queries = list(spec.read_queries) + list(spec.update_queries)
        for rep in range(spec.warmup + spec.repeats):
            measured = rep >= spec.warmup
            for query in queries:
                is_update = query in spec.update_queries
                fn = REGISTRY[query].fn
                for variant in spec.variants_for(query):
                    engine = engines[variant]
                    acc = totals[variant]
                    for draw in range(spec.draws):
                        params = (
                            work.update_params_at(query, rep, draw)
                            if is_update
                            else work.read_params[query][draw]
                        )
                        stats = ExecStats()
                        started = now()
                        fn(engine, dict(params), stats)
                        elapsed = now() - started
                        if measured:
                            samples.setdefault((variant, query), []).append(elapsed)
                            acc["ops"] += 1
                            acc["seconds"] += elapsed
                        acc["peak_bytes"] = max(
                            acc["peak_bytes"], stats.peak_intermediate_bytes
                        )
                        acc["cache_hits"] += stats.plan_cache_hits
                        acc["cache_misses"] += stats.plan_cache_misses
                        acc["flat_tuples"] += stats.flat_tuples
                        acc["ftree_slots"] += stats.ftree_slots
            emit(
                f"repeat {rep + 1}/{spec.warmup + spec.repeats}"
                + ("" if measured else " (warmup, discarded)")
            )
    finally:
        set_injected_slowdowns(None)
        if gc_was_enabled:
            gc.enable()

    variants: dict[str, Any] = {}
    for variant in spec.variants:
        acc = totals[variant]
        lookups = acc["cache_hits"] + acc["cache_misses"]
        variants[variant] = {
            "queries": {
                query: _cell_stats(samples[(variant, query)])
                for query in queries
                if (variant, query) in samples
            },
            "ops_per_second": (
                acc["ops"] / acc["seconds"] if acc["seconds"] > 0 else 0.0
            ),
            "plan_cache_hit_rate": (
                acc["cache_hits"] / lookups if lookups else None
            ),
            "compression_ratio": (
                acc["flat_tuples"] / acc["ftree_slots"]
                if acc["ftree_slots"]
                else None
            ),
            "peak_fblock_bytes": int(acc["peak_bytes"]),
        }

    return {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "workload": spec.identity(),
        "recorded_at": datetime.fromtimestamp(
            wall_time(), tz=timezone.utc
        ).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "machine": machine_fingerprint(),
        "injected_slowdowns": dict(inject_slowdowns or {}),
        "elapsed_seconds": now() - run_started,
        "variants": variants,
    }
