"""Pinned, versioned benchmark workloads for the perf trajectory.

A trajectory is only comparable across commits if every run measures the
*same* work: same graph (scale + datagen seed), same queries, same
parameter draws, same repeat protocol.  A :class:`WorkloadSpec` pins all
of that and carries a ``version`` that MUST be bumped whenever any pinned
ingredient changes — the regression gate refuses to compare records made
under different (name, version) pairs, so a workload edit can never
masquerade as a perf change (the parameter-curve trap the LDBC SNB
benchmarking paper warns about).

Two specs ship:

* ``full`` — all 14 IC + 7 IS reads on GES / GES_f / GES_f* / Volcano
  and all 8 IU updates on the three GES variants, at SF10.  The record
  committed to ``BENCH_trajectory.json`` at the repo root uses this.
* ``smoke`` — a small pinned subset at SF1 for CI's perf-smoke job and
  tests (~seconds per record).

Updates are excluded from the Volcano baseline (it executes read plans
only).  IU parameters allocate fresh entity ids, so each (repeat, draw)
slot gets its own pre-drawn parameter dict — replayed identically on
every variant (each variant runs against its own copy of the dataset)
and identically across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..ldbc import ParameterGenerator, generate
from ..ldbc.datagen import SnbDataset

#: Engine variants a workload can target.  Order is the interleave order.
READ_VARIANTS = ("GES", "GES_f", "GES_f*", "Volcano")
UPDATE_VARIANTS = ("GES", "GES_f", "GES_f*")


@dataclass(frozen=True)
class WorkloadSpec:
    """One pinned workload: bump ``version`` on ANY change to the rest."""

    name: str
    version: int
    scale: str
    seed: int  # datagen seed — pins the graph
    param_seed: int  # parameter-stream seed — pins the draws
    warmup: int  # leading repeats discarded (JIT/caches/page faults)
    repeats: int  # measured repeats (interleaved across variants)
    draws: int  # parameter draws per query per repeat
    read_queries: tuple[str, ...]
    update_queries: tuple[str, ...]
    variants: tuple[str, ...] = READ_VARIANTS

    @property
    def samples_per_query(self) -> int:
        """Measured timing samples each (variant, query) cell collects."""
        return self.repeats * self.draws

    def identity(self) -> dict[str, Any]:
        """The comparability key recorded into every trajectory entry."""
        return {
            "name": self.name,
            "version": self.version,
            "scale": self.scale,
            "seed": self.seed,
            "param_seed": self.param_seed,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "draws": self.draws,
            "read_queries": list(self.read_queries),
            "update_queries": list(self.update_queries),
            "variants": list(self.variants),
        }

    def variants_for(self, query: str) -> tuple[str, ...]:
        """Updates never run on Volcano (read-plan baseline)."""
        if query in self.update_queries:
            return tuple(v for v in self.variants if v in UPDATE_VARIANTS)
        return self.variants


_IC = tuple(f"IC{i}" for i in range(1, 15))
_IS = tuple(f"IS{i}" for i in range(1, 8))
_IU = tuple(f"IU{i}" for i in range(1, 9))

#: The pinned workloads.  NEVER edit a spec in place without bumping its
#: ``version`` — the gate keys noise bands on (name, version).
WORKLOADS: dict[str, WorkloadSpec] = {
    "full": WorkloadSpec(
        name="full",
        version=1,
        scale="SF10",
        seed=42,
        param_seed=1234,
        warmup=2,
        repeats=5,
        draws=3,
        read_queries=_IC + _IS,
        update_queries=_IU,
    ),
    "smoke": WorkloadSpec(
        name="smoke",
        version=2,  # v1 used warmup=1/repeats=3 — too few samples for a stable p50
        scale="SF1",
        seed=42,
        param_seed=1234,
        warmup=2,
        repeats=5,
        draws=2,
        read_queries=("IC1", "IC2", "IC5", "IC9", "IS1", "IS2", "IS3"),
        update_queries=("IU1", "IU2"),
    ),
}


@dataclass
class MaterializedWorkload:
    """A spec turned into concrete datasets and parameter draws."""

    spec: WorkloadSpec
    datasets: dict[str, SnbDataset] = field(default_factory=dict)
    #: read params: query -> one params dict per draw (reused every repeat
    #: — reads are idempotent, so re-running the same draw is the point).
    read_params: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    #: update params: query -> one params dict per (repeat, draw) slot —
    #: updates insert fresh entities, so each slot needs fresh ids.
    update_params: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def update_params_at(self, query: str, repeat: int, draw: int) -> dict[str, Any]:
        return self.update_params[query][repeat * self.spec.draws + draw]


def materialize(spec: WorkloadSpec) -> MaterializedWorkload:
    """Generate the pinned datasets and draw the pinned parameter streams.

    Draw order is fixed (read queries in spec order, then update queries),
    so the same spec always yields byte-identical parameter streams.  Each
    variant gets its *own* dataset copy (updates mutate the store; sharing
    one store would let variant A's inserts pollute variant B's reads).
    """
    out = MaterializedWorkload(spec=spec)
    for variant in spec.variants:
        out.datasets[variant] = generate(spec.scale, seed=spec.seed)
    # One generator, one fixed draw order — any dataset copy works for
    # drawing (they are identical), use the first variant's.
    gen = ParameterGenerator(out.datasets[spec.variants[0]], seed=spec.param_seed)
    for query in spec.read_queries:
        out.read_params[query] = [gen.params_for(query) for _ in range(spec.draws)]
    slots = (spec.warmup + spec.repeats) * spec.draws
    for query in spec.update_queries:
        out.update_params[query] = [gen.params_for(query) for _ in range(slots)]
    return out
