"""Command-line interface for the GES reproduction.

Subcommands::

    python -m repro.cli generate --scale SF10 --out /tmp/snb10
    python -m repro.cli query --scale SF1 "MATCH (p:Person) RETURN count(*) AS n"
    python -m repro.cli bench --scale SF10 --ops 200 --variant "GES_f*"
    python -m repro.cli profile IC5 --scale SF1 --variant all
    python -m repro.cli metrics --scale SF1 --ops 100 --format prom
    python -m repro.cli fuzz --seed 0 --iterations 200 --corpus tests/corpus
    python -m repro.cli perf record --workload smoke
    python -m repro.cli perf compare
    python -m repro.cli perf report
    python -m repro.cli flightrec --scale SF1 --ops 50 --format json
    python -m repro.cli top --scale SF1 --workers 2 --once

``query``, ``bench``, and ``profile`` accept either ``--scale`` (generate
a mini-SNB graph in memory) or ``--graph DIR`` (load a snapshot written by
``generate --out``).  ``profile`` renders the per-operator span tree of
one query (an LDBC name like ``IC5`` or raw Cypher); ``metrics`` runs a
short driver workload and exports the process metrics registry as
Prometheus text or JSON.  ``perf`` drives the continuous-performance
trajectory (record a pinned workload into ``BENCH_trajectory.json``,
gate the newest record against history, print the history); ``flightrec``
runs a workload and dumps the engine's always-on flight recorder.
"""

from __future__ import annotations

import argparse
import sys

from . import GES, EngineConfig
from .baselines import VolcanoEngine
from .exec.base import ExecStats
from .ldbc import BenchmarkDriver, SCALE_FACTORS, generate, validate
from .obs import get_registry, metrics_json, prometheus_text, render_span_tree
from .obs.clock import now
from .storage import GraphStore, load_graph, save_graph

VARIANTS = {
    "GES": EngineConfig.ges,
    "GES_f": EngineConfig.ges_f,
    "GES_f*": EngineConfig.ges_f_star,
}


def _resolve_store(args: argparse.Namespace) -> tuple[GraphStore, object | None]:
    if getattr(args, "graph", None):
        return load_graph(args.graph), None
    dataset = generate(args.scale, seed=args.seed)
    return dataset.store, dataset


def _make_engine(
    store: GraphStore, variant: str, plan_cache: bool = True, workers: int = 1
):
    if variant == "Volcano":
        if workers > 1:
            raise SystemExit("the Volcano baseline has no worker pool")
        return VolcanoEngine(store)
    try:
        config = VARIANTS[variant](plan_cache=plan_cache, workers=workers)
    except KeyError:
        raise SystemExit(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)} or Volcano"
        )
    return GES(store, config)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a mini-SNB graph, print stats, optionally snapshot it."""
    started = now()
    dataset = generate(args.scale, seed=args.seed)
    elapsed = now() - started
    info = dataset.info
    print(
        f"{args.scale}: {info.num_persons} persons, {info.num_forums} forums, "
        f"{info.num_messages} messages ({info.num_posts} posts), "
        f"{info.num_knows_pairs} friendships [{elapsed:.2f}s]"
    )
    print(f"vertices={dataset.store.vertex_count} edges={dataset.store.edge_count}")
    if args.out:
        path = save_graph(dataset.store, args.out)
        print(f"snapshot written to {path}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Run one Cypher query and print rows (stats go to stderr)."""
    store, _ = _resolve_store(args)
    engine = _make_engine(
        store,
        args.variant,
        plan_cache=not args.no_plan_cache,
        workers=args.workers,
    )
    if engine.variant == "Volcano":
        raise SystemExit("the Volcano baseline takes logical plans, not Cypher")
    params = _parse_params(args.param)
    result = engine.execute(args.cypher, params)
    if args.format == "json":
        import json

        print(json.dumps(result.to_dicts(), indent=2, default=str))
    else:
        print("\t".join(result.columns))
        for row in result.rows:
            print("\t".join(str(v) for v in row))
    cache_note = ""
    if engine.plan_cache is not None:
        cache_note = " (plan cache " + ("hit)" if result.stats.cache_hit else "miss)")
    print(
        f"-- {len(result.rows)} rows, {result.stats.total_seconds * 1e3:.2f} ms, "
        f"compile {result.stats.compile_seconds * 1e3:.2f} ms{cache_note}, "
        f"peak intermediate {result.stats.peak_intermediate_bytes} B",
        file=sys.stderr,
    )
    if getattr(engine, "parallel", None) is not None:
        routing = engine.parallel.describe()
        print(
            f"-- pool: {routing['workers']} workers, "
            f"{routing['scatter_queries']} scatter / "
            f"{routing['whole_queries']} whole, "
            f"{routing['fallbacks']} fallbacks",
            file=sys.stderr,
        )
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the LDBC driver and print the throughput report."""
    dataset = generate(args.scale, seed=args.seed)
    engine = _make_engine(
        dataset.store,
        args.variant,
        plan_cache=not args.no_plan_cache,
        workers=args.workers,
    )
    driver = BenchmarkDriver(engine, dataset, seed=args.seed)
    report = driver.run(num_operations=args.ops)
    print(
        f"{args.variant} on {args.scale}: {len(report.logs)} ops in "
        f"{report.wall_seconds:.2f}s, closed-loop {report.closed_loop_throughput:.0f} "
        f"ops/s, TCR score {report.throughput_score(args.workers):.0f} ops/s "
        f"({args.workers} worker{'s' if args.workers != 1 else ''})"
    )
    for category in ("IC", "IS", "IU"):
        summary = report.latency_summary(category=category)
        if summary["n"]:
            print(
                f"  {category}: n={summary['n']} mean={summary['mean_ms']:.2f}ms "
                f"p50={summary['p50_ms']:.2f}ms p95={summary['p95_ms']:.2f}ms "
                f"p99={summary['p99_ms']:.2f}ms"
            )
    print(
        f"  compile: {report.compile_seconds * 1e3:.2f}ms total "
        f"({report.compile_fraction * 100:.1f}% of service time)"
    )
    if getattr(engine, "plan_cache", None) is not None:
        cache = engine.plan_cache.describe()
        print(
            f"  plan cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(rate {cache['hit_rate'] * 100:.1f}%), {cache['size']}/{cache['capacity']} "
            f"entries, {cache['evictions']} evictions"
        )
    else:
        print("  plan cache: disabled")
    if getattr(engine, "parallel", None) is not None:
        routing = engine.parallel.describe()
        print(
            f"  pool: {routing['workers']} workers, "
            f"{routing['pooled_queries']} pooled queries "
            f"({routing['scatter_queries']} scatter), "
            f"{routing['fallbacks']} fallbacks"
        )
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return 0


def _parse_params(bindings: list[str] | None) -> dict[str, object]:
    params: dict[str, object] = {}
    for binding in bindings or []:
        name, _, value = binding.partition("=")
        params[name] = int(value) if value.lstrip("-").isdigit() else value
    return params


def cmd_profile(args: argparse.Namespace) -> int:
    """Render the per-operator span tree of one query (EXPLAIN ANALYZE).

    The target is either a registered LDBC query name (``IC5`` — parameters
    drawn from the dataset's generator) or raw Cypher text (parameters via
    ``--param``); ``--variant all`` profiles every paper variant on the
    same store.  ``--format json`` emits the span tree in the same
    serialization the flight recorder dumps (``obs.export.span_tree_json``).
    """
    import json

    from .engine.service import profile_summary
    from .ldbc import ParameterGenerator, REGISTRY
    from .obs import span_tree_json

    store, dataset = _resolve_store(args)
    variants = list(VARIANTS) if args.variant == "all" else [args.variant]
    is_ldbc = args.target in REGISTRY
    if is_ldbc:
        if dataset is None:
            raise SystemExit("profiling an LDBC query needs --scale, not --graph")
        params = ParameterGenerator(dataset, seed=args.seed).params_for(args.target)
    else:
        params = _parse_params(args.param)
    profiles = []
    for variant in variants:
        engine = _make_engine(store, variant)
        if is_ldbc:
            stats = ExecStats()
            stats.begin_trace()
            REGISTRY[args.target].fn(engine, dict(params), stats)
            root = stats.trace.finish()
            if args.format == "json":
                profiles.append(
                    {"variant": variant, "query": args.target}
                    | span_tree_json(root)
                )
                continue
            print(f"EXPLAIN ANALYZE ({variant}) — {args.target}")
            print(render_span_tree(root))
            print(profile_summary(stats))
        else:
            if args.format == "json":
                stats = ExecStats()
                stats.begin_trace()
                engine.execute(args.target, params, stats=stats)
                profiles.append(
                    {"variant": variant, "query": args.target}
                    | span_tree_json(stats.trace.finish())
                )
                continue
            print(engine.explain_analyze(args.target, params))
        print()
    if args.format == "json":
        print(json.dumps(profiles, indent=2, default=str))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a short LDBC workload, then export the process metrics registry."""
    import json

    variants = list(VARIANTS) if args.variant == "all" else [args.variant]
    for variant in variants:
        # Fresh store per variant: the stream's IU inserts mutate it.
        dataset = generate(args.scale, seed=args.seed)
        engine = _make_engine(dataset.store, variant, workers=args.workers)
        try:
            BenchmarkDriver(engine, dataset, seed=args.seed).run(args.ops)
        finally:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    registry = get_registry()
    if args.format in ("prom", "both"):
        print(prometheus_text(registry), end="")
    if args.format in ("json", "both"):
        print(json.dumps(metrics_json(registry), indent=2, default=str))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the differential fuzzing + concurrency-stress campaign.

    Every query is executed on all four engines (flat, factorized, fused,
    Volcano) plus plan-cache-off / tracing-on configurations over the same
    snapshot; any bag inequality is shrunk to a minimal repro and — when
    ``--corpus`` is given — archived as a self-contained JSON entry that
    ``pytest -m corpus`` replays forever.
    """
    from .testkit import FuzzConfig, PROFILES, run_fuzz

    if args.profile not in PROFILES:
        raise SystemExit(
            f"unknown profile {args.profile!r}; choose from {sorted(PROFILES)}"
        )
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        profile=args.profile,
        stress_runs=args.stress_runs,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus,
    )
    on_event = print if args.verbose else None
    report = run_fuzz(config, on_event=on_event)
    print(report.summary())
    for failure in report.failures:
        print(f"  iteration {failure.iteration}: {failure.query}")
        for mismatch in failure.mismatches[:5]:
            print(f"    {mismatch}")
        if failure.path is not None:
            print(f"    archived: {failure.path}")
    for stress in report.stress:
        if not stress.passed:
            print(f"  stress: {stress.summary()}")
            for violation in stress.violations[:5]:
                print(f"    {violation}")
    return 0 if report.passed else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the deterministic fault-injection campaign.

    Seeded transient faults fire inside the memory pool, lock manager,
    plan cache, and executor while generated queries and update batches
    run against a resilient engine; every answer is checked against a
    fault-free reference run.  An injected fault must be retried,
    degraded, or surfaced as a typed ``GesError`` — never a wrong answer,
    never a raw exception.  ``--seeds N`` sweeps seeds ``seed..seed+N-1``.
    """
    from .testkit import ChaosConfig, PROFILES, run_chaos

    if args.profile not in PROFILES:
        raise SystemExit(
            f"unknown profile {args.profile!r}; choose from {sorted(PROFILES)}"
        )
    failed = 0
    for seed in range(args.seed, args.seed + max(1, args.seeds)):
        config = ChaosConfig(
            seed=seed,
            iterations=args.iterations,
            graphs=args.graphs,
            profile=args.profile,
            fault_probability=args.fault_probability,
            stress_runs=args.stress_runs,
            crash_runs=args.crash_runs,
            verbose=args.verbose,
        )
        report = run_chaos(config)
        print(report.summary())
        if args.verbose:
            fired = ", ".join(
                f"{site}={count}" for site, count in sorted(report.fired.items())
            )
            print(f"  fired by site: {fired or 'none'}")
        if not report.passed:
            failed += 1
            for violation in report.violations[:10]:
                print(f"  {violation}")
    if args.seeds > 1:
        status = "PASS" if failed == 0 else "FAIL"
        print(f"{status}: {args.seeds - failed}/{args.seeds} seeds clean")
    return 0 if failed == 0 else 1


def _parse_slowdowns(specs: list[str] | None) -> dict[str, float]:
    """``--inject-slowdown Expand=2.0`` → ``{"Expand": 2.0}``."""
    factors: dict[str, float] = {}
    for spec in specs or []:
        op, sep, factor = spec.partition("=")
        if not sep or not op:
            raise SystemExit(
                f"bad --inject-slowdown {spec!r}: expected OPERATOR=FACTOR"
            )
        try:
            factors[op] = float(factor)
        except ValueError:
            raise SystemExit(
                f"bad --inject-slowdown factor {factor!r}: expected a number"
            ) from None
    return factors


def cmd_perf_record(args: argparse.Namespace) -> int:
    """Record one pinned-workload run into the trajectory file."""
    from .perf import WORKLOADS, append_record, record_run

    if args.workload not in WORKLOADS:
        raise SystemExit(
            f"unknown workload {args.workload!r}; choose from {sorted(WORKLOADS)}"
        )
    slowdowns = _parse_slowdowns(args.inject_slowdown)
    if slowdowns:
        print(
            f"WARNING: recording with injected slowdowns {slowdowns} "
            "(gate self-test mode — the record is flagged)",
            file=sys.stderr,
        )
    on_event = (lambda msg: print(f"  {msg}", file=sys.stderr)) if args.verbose else None
    record = record_run(
        args.workload, inject_slowdowns=slowdowns or None, on_event=on_event
    )
    path = append_record(record, args.trajectory)
    spec = WORKLOADS[args.workload]
    queries = len(spec.read_queries) + len(spec.update_queries)
    print(
        f"recorded {args.workload} v{spec.version} @ {spec.scale}: "
        f"{queries} queries x {len(spec.variants)} variants, "
        f"{record['elapsed_seconds']:.1f}s -> {path}"
    )
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    """Gate the newest trajectory record against history (exit 1 on regression)."""
    from .perf import TrajectoryError, compare_trajectory, load_trajectory, render_report

    try:
        records = load_trajectory(args.trajectory)
        report = compare_trajectory(
            records,
            band_floor=args.band_floor,
            band_k=args.band_k,
            min_effect_ms=args.min_effect_ms,
        )
    except (TrajectoryError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(render_report(report, verbose=args.verbose))
    return 1 if report.has_regressions else 0


def cmd_perf_report(args: argparse.Namespace) -> int:
    """Print the trajectory history, one line per record."""
    from .perf import load_trajectory
    from .perf.gate import render_history

    print(render_history(load_trajectory(args.trajectory)))
    return 0


def cmd_flightrec(args: argparse.Namespace) -> int:
    """Run a short workload, then dump the engine's flight recorder.

    The dump is the ring's retained span trees + metric snapshots for the
    last N completed queries and every slow query — the same payload the
    fuzz harness attaches to failure artifacts.
    """
    import json

    from .obs.flightrec import render_flight_dump

    dataset = generate(args.scale, seed=args.seed)
    engine = _make_engine(dataset.store, args.variant)
    if getattr(engine, "flight", None) is None:
        raise SystemExit(
            f"variant {args.variant!r} has no flight recorder "
            "(EngineConfig.flight_recorder is 0)"
        )
    BenchmarkDriver(engine, dataset, seed=args.seed).run(args.ops)
    dump = engine.flight.dump(last=args.last)
    if args.format == "json":
        text = json.dumps(dump, indent=2, default=str)
    else:
        text = render_flight_dump(dump)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"flight-recorder dump written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live process dashboard: pool health, latency percentiles, events.

    Runs an LDBC workload on a (optionally pooled) engine and renders the
    ``repro.obs.top`` dashboard over the process metrics registry and the
    structured event log.  ``--once`` runs the workload to completion and
    prints a single frame (the CI smoke mode); without it the frame is
    redrawn every ``--interval`` seconds while the workload runs.
    """
    from .obs.top import render_top_frame, run_top

    dataset = generate(args.scale, seed=args.seed)
    engine = _make_engine(dataset.store, args.variant, workers=args.workers)
    driver = BenchmarkDriver(engine, dataset, seed=args.seed)
    try:
        if args.once:
            driver.run(args.ops)
            print(render_top_frame(event_limit=args.events))
        else:
            run_top(
                lambda: driver.run(args.ops), interval_s=args.interval
            )
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Audit a durable database directory (read-only).

    Verifies every checkpoint manifest (per-file SHA-256) and scans every
    WAL segment for torn or corrupt records, printing the exact byte
    offset recovery would truncate at.  Exit 0 means a recovery of this
    directory would proceed with zero data-loss caveats.
    """
    import json

    from .durability import fsck

    report = fsck(args.path)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    print(f"fsck {report.path}")
    for entry in report.checkpoints:
        print(f"  checkpoint {entry['name']}: {entry['status']}")
    for entry in report.segments:
        if "status" in entry:
            print(f"  segment {entry['name']}: {entry['status']}")
        elif entry["clean"]:
            print(
                f"  segment {entry['name']}: clean, {entry['records']} record(s), "
                f"last version {entry['last_version']}"
            )
        else:
            print(
                f"  segment {entry['name']}: TORN at byte {entry['torn_offset']} "
                f"({entry['torn_reason']}); {entry['records']} valid record(s)"
            )
    for problem in report.problems:
        print(f"  problem: {problem}")
    print("ok" if report.ok else "NOT OK")
    return 0 if report.ok else 1


def cmd_validate(args: argparse.Namespace) -> int:
    """Audit read-query agreement across all engine variants."""
    dataset = generate(args.scale, seed=args.seed)
    report = validate(dataset, draws=args.draws, seed=args.seed)
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"  mismatch: {mismatch.query} on {mismatch.variant}")
    for query, variant, error in report.errors:
        print(f"  error: {query} on {variant}: {error}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(prog="repro-ges", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a mini LDBC SNB graph")
    gen.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", help="write a snapshot directory")
    gen.set_defaults(fn=cmd_generate)

    query = sub.add_parser("query", help="run a Cypher query")
    query.add_argument("cypher")
    query.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    query.add_argument("--graph", help="snapshot directory instead of --scale")
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--variant", default="GES_f*")
    query.add_argument("--param", action="append", metavar="NAME=VALUE")
    query.add_argument("--format", choices=("table", "json"), default="table")
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for scatter-gather execution (1 = in-process)",
    )
    query.add_argument(
        "--no-plan-cache", action="store_true", help="disable the plan cache (ablation)"
    )
    query.set_defaults(fn=cmd_query)

    bench = sub.add_parser("bench", help="run the LDBC benchmark driver")
    bench.add_argument("--scale", default="SF10", choices=sorted(SCALE_FACTORS))
    bench.add_argument("--ops", type=int, default=200)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--variant", default="GES_f*")
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: pools the engine and scales the TCR score",
    )
    bench.add_argument(
        "--no-plan-cache", action="store_true", help="disable the plan cache (ablation)"
    )
    bench.set_defaults(fn=cmd_bench)

    profile = sub.add_parser(
        "profile", help="EXPLAIN ANALYZE: span tree of one query"
    )
    profile.add_argument("target", help="LDBC query name (e.g. IC5) or Cypher text")
    profile.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    profile.add_argument("--graph", help="snapshot directory instead of --scale")
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument(
        "--variant", default="GES_f*", help="engine variant, or 'all' for all three"
    )
    profile.add_argument("--param", action="append", metavar="NAME=VALUE")
    profile.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json = the span-tree serialization the flight recorder dumps",
    )
    profile.set_defaults(fn=cmd_profile)

    metrics = sub.add_parser(
        "metrics", help="run a workload and export the metrics registry"
    )
    metrics.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    metrics.add_argument("--ops", type=int, default=100)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--variant", default="GES_f*", help="engine variant, or 'all' for all three"
    )
    metrics.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (pool-health gauges light up when > 1)",
    )
    metrics.add_argument("--format", choices=("prom", "json", "both"), default="prom")
    metrics.set_defaults(fn=cmd_metrics)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing + concurrency stress campaign"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iterations", type=int, default=200)
    fuzz.add_argument(
        "--profile", default="quick", help="graph size profile (quick/default/dense)"
    )
    fuzz.add_argument("--stress-runs", type=int, default=1)
    fuzz.add_argument("--corpus", help="directory for minimized repro entries")
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="archive raw failures unminimized"
    )
    fuzz.add_argument("--verbose", action="store_true", help="per-graph progress")
    fuzz.set_defaults(fn=cmd_fuzz)

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection campaign with checked answers"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--seeds", type=int, default=1, help="sweep seed..seed+N-1")
    chaos.add_argument("--iterations", type=int, default=100)
    chaos.add_argument("--graphs", type=int, default=2)
    chaos.add_argument(
        "--profile", default="quick", help="graph size profile (quick/default/dense)"
    )
    chaos.add_argument(
        "--fault-probability", type=float, default=0.05,
        help="per-site probability an instrumented call fires a transient",
    )
    chaos.add_argument("--stress-runs", type=int, default=2)
    chaos.add_argument(
        "--crash-runs", type=int, default=1,
        help="kill -9 crash-recovery sweeps per seed (0 disables)",
    )
    chaos.add_argument("--verbose", action="store_true", help="per-site fire counts")
    chaos.set_defaults(fn=cmd_chaos)

    fsck = sub.add_parser(
        "fsck", help="audit a durable database directory (checkpoints + WAL)"
    )
    fsck.add_argument("path", help="database directory created by GES.open")
    fsck.add_argument("--format", choices=("text", "json"), default="text")
    fsck.set_defaults(fn=cmd_fsck)

    perf = sub.add_parser(
        "perf", help="continuous-performance trajectory: record/compare/report"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_record = perf_sub.add_parser(
        "record", help="run a pinned workload, append one trajectory record"
    )
    perf_record.add_argument(
        "--workload", default="full", help="pinned workload spec (full/smoke)"
    )
    perf_record.add_argument(
        "--trajectory", help="trajectory file (default: BENCH_trajectory.json)"
    )
    perf_record.add_argument(
        "--inject-slowdown",
        action="append",
        metavar="OPERATOR=FACTOR",
        help="busy-wait slowdown for the gate self-test (e.g. Expand=2.0)",
    )
    perf_record.add_argument(
        "--verbose", action="store_true", help="per-repeat progress on stderr"
    )
    perf_record.set_defaults(fn=cmd_perf_record)

    perf_compare = perf_sub.add_parser(
        "compare", help="gate the newest record against history (exit 1 on regression)"
    )
    perf_compare.add_argument("--trajectory")
    perf_compare.add_argument("--band-floor", type=float, default=0.30)
    perf_compare.add_argument("--band-k", type=float, default=5.0)
    perf_compare.add_argument(
        "--min-effect-ms",
        type=float,
        default=0.25,
        help="absolute p50 shifts below this are always 'unchanged'",
    )
    perf_compare.add_argument(
        "--verbose", action="store_true", help="print every cell, not just changes"
    )
    perf_compare.set_defaults(fn=cmd_perf_compare)

    perf_report = perf_sub.add_parser(
        "report", help="print the trajectory history, one line per record"
    )
    perf_report.add_argument("--trajectory")
    perf_report.set_defaults(fn=cmd_perf_report)

    flightrec = sub.add_parser(
        "flightrec", help="run a workload, dump the engine flight recorder"
    )
    flightrec.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    flightrec.add_argument("--ops", type=int, default=50)
    flightrec.add_argument("--seed", type=int, default=7)
    flightrec.add_argument("--variant", default="GES_f*")
    flightrec.add_argument(
        "--last", type=int, help="only the newest N records from the recent ring"
    )
    flightrec.add_argument("--format", choices=("text", "json"), default="text")
    flightrec.add_argument("--out", help="write the dump to a file instead of stdout")
    flightrec.set_defaults(fn=cmd_flightrec)

    top = sub.add_parser(
        "top", help="live dashboard: pool health, latency percentiles, events"
    )
    top.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    top.add_argument("--ops", type=int, default=50)
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--variant", default="GES_f*")
    top.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (pool-health section lights up when > 1)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="run the workload, print one frame, exit (CI smoke mode)",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, help="live redraw period (seconds)"
    )
    top.add_argument(
        "--events", type=int, default=8, help="events shown in the final frame"
    )
    top.set_defaults(fn=cmd_top)

    check = sub.add_parser("validate", help="audit engine agreement on reads")
    check.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    check.add_argument("--seed", type=int, default=7)
    check.add_argument("--draws", type=int, default=2)
    check.set_defaults(fn=cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
