"""Command-line interface for the GES reproduction.

Three subcommands::

    python -m repro.cli generate --scale SF10 --out /tmp/snb10
    python -m repro.cli query --scale SF1 "MATCH (p:Person) RETURN count(*) AS n"
    python -m repro.cli bench --scale SF10 --ops 200 --variant "GES_f*"

``query`` and ``bench`` accept either ``--scale`` (generate a mini-SNB
graph in memory) or ``--graph DIR`` (load a snapshot written by
``generate --out``).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from . import GES, EngineConfig
from .baselines import VolcanoEngine
from .ldbc import BenchmarkDriver, SCALE_FACTORS, generate, validate
from .storage import GraphStore, load_graph, save_graph

VARIANTS = {
    "GES": EngineConfig.ges,
    "GES_f": EngineConfig.ges_f,
    "GES_f*": EngineConfig.ges_f_star,
}


def _resolve_store(args: argparse.Namespace) -> tuple[GraphStore, object | None]:
    if getattr(args, "graph", None):
        return load_graph(args.graph), None
    dataset = generate(args.scale, seed=args.seed)
    return dataset.store, dataset


def _make_engine(store: GraphStore, variant: str, plan_cache: bool = True):
    if variant == "Volcano":
        return VolcanoEngine(store)
    try:
        config = VARIANTS[variant](plan_cache=plan_cache)
    except KeyError:
        raise SystemExit(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)} or Volcano"
        )
    return GES(store, config)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a mini-SNB graph, print stats, optionally snapshot it."""
    started = time.perf_counter()
    dataset = generate(args.scale, seed=args.seed)
    elapsed = time.perf_counter() - started
    info = dataset.info
    print(
        f"{args.scale}: {info.num_persons} persons, {info.num_forums} forums, "
        f"{info.num_messages} messages ({info.num_posts} posts), "
        f"{info.num_knows_pairs} friendships [{elapsed:.2f}s]"
    )
    print(f"vertices={dataset.store.vertex_count} edges={dataset.store.edge_count}")
    if args.out:
        path = save_graph(dataset.store, args.out)
        print(f"snapshot written to {path}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Run one Cypher query and print rows (stats go to stderr)."""
    store, _ = _resolve_store(args)
    engine = _make_engine(store, args.variant, plan_cache=not args.no_plan_cache)
    if engine.variant == "Volcano":
        raise SystemExit("the Volcano baseline takes logical plans, not Cypher")
    params = {}
    for binding in args.param or []:
        name, _, value = binding.partition("=")
        params[name] = int(value) if value.lstrip("-").isdigit() else value
    result = engine.execute(args.cypher, params)
    if args.format == "json":
        import json

        print(json.dumps(result.to_dicts(), indent=2, default=str))
    else:
        print("\t".join(result.columns))
        for row in result.rows:
            print("\t".join(str(v) for v in row))
    cache_note = ""
    if engine.plan_cache is not None:
        cache_note = " (plan cache " + ("hit)" if result.stats.cache_hit else "miss)")
    print(
        f"-- {len(result.rows)} rows, {result.stats.total_seconds * 1e3:.2f} ms, "
        f"compile {result.stats.compile_seconds * 1e3:.2f} ms{cache_note}, "
        f"peak intermediate {result.stats.peak_intermediate_bytes} B",
        file=sys.stderr,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the LDBC driver and print the throughput report."""
    dataset = generate(args.scale, seed=args.seed)
    engine = _make_engine(dataset.store, args.variant, plan_cache=not args.no_plan_cache)
    driver = BenchmarkDriver(engine, dataset, seed=args.seed)
    report = driver.run(num_operations=args.ops)
    print(
        f"{args.variant} on {args.scale}: {len(report.logs)} ops in "
        f"{report.wall_seconds:.2f}s, closed-loop {report.closed_loop_throughput:.0f} "
        f"ops/s, TCR score {report.throughput_score(args.workers):.0f} ops/s "
        f"({args.workers} worker{'s' if args.workers != 1 else ''})"
    )
    for category in ("IC", "IS", "IU"):
        lat = report.latencies(category=category)
        if len(lat):
            print(
                f"  {category}: n={len(lat)} mean={lat.mean() * 1e3:.2f}ms "
                f"p95={float(np.percentile(lat, 95)) * 1e3:.2f}ms"
            )
    print(
        f"  compile: {report.compile_seconds * 1e3:.2f}ms total "
        f"({report.compile_fraction * 100:.1f}% of service time)"
    )
    if getattr(engine, "plan_cache", None) is not None:
        cache = engine.plan_cache.describe()
        print(
            f"  plan cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(rate {cache['hit_rate'] * 100:.1f}%), {cache['size']}/{cache['capacity']} "
            f"entries, {cache['evictions']} evictions"
        )
    else:
        print("  plan cache: disabled")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Audit read-query agreement across all engine variants."""
    dataset = generate(args.scale, seed=args.seed)
    report = validate(dataset, draws=args.draws, seed=args.seed)
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"  mismatch: {mismatch.query} on {mismatch.variant}")
    for query, variant, error in report.errors:
        print(f"  error: {query} on {variant}: {error}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(prog="repro-ges", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a mini LDBC SNB graph")
    gen.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", help="write a snapshot directory")
    gen.set_defaults(fn=cmd_generate)

    query = sub.add_parser("query", help="run a Cypher query")
    query.add_argument("cypher")
    query.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    query.add_argument("--graph", help="snapshot directory instead of --scale")
    query.add_argument("--seed", type=int, default=42)
    query.add_argument("--variant", default="GES_f*")
    query.add_argument("--param", action="append", metavar="NAME=VALUE")
    query.add_argument("--format", choices=("table", "json"), default="table")
    query.add_argument(
        "--no-plan-cache", action="store_true", help="disable the plan cache (ablation)"
    )
    query.set_defaults(fn=cmd_query)

    bench = sub.add_parser("bench", help="run the LDBC benchmark driver")
    bench.add_argument("--scale", default="SF10", choices=sorted(SCALE_FACTORS))
    bench.add_argument("--ops", type=int, default=200)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--variant", default="GES_f*")
    bench.add_argument("--workers", type=int, default=1)
    bench.add_argument(
        "--no-plan-cache", action="store_true", help="disable the plan cache (ablation)"
    )
    bench.set_defaults(fn=cmd_bench)

    check = sub.add_parser("validate", help="audit engine agreement on reads")
    check.add_argument("--scale", default="SF1", choices=sorted(SCALE_FACTORS))
    check.add_argument("--seed", type=int, default=7)
    check.add_argument("--draws", type=int, default=2)
    check.set_defaults(fn=cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
