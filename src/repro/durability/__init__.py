"""Durability subsystem: write-ahead log, atomic checkpoints, recovery.

The pieces, bottom-up:

* :mod:`repro.durability.wal` — segment format and the appender
  (length-prefixed, CRC32-checksummed records; ``fsync``/``batch`` modes).
* :mod:`repro.durability.records` — commit payload serde + replay.
* :mod:`repro.durability.checkpoint` — crash-atomic snapshots with
  per-file SHA-256 manifests, retention, and WAL pruning.
* :mod:`repro.durability.recovery` — ``recover``/``init_db``/``fsck``.
* :mod:`repro.durability.hooks` — seeded SIGKILL crash points for the
  kill -9 harness (:mod:`repro.testkit.crashtest`).

:class:`DurabilityManager` ties them together for the engine: the
transaction manager calls :meth:`~DurabilityManager.log_commit` under its
commit guard before mutations apply (write-ahead, by construction), and
the service calls :meth:`~DurabilityManager.checkpoint` to fold the log
into a fresh snapshot and :meth:`~DurabilityManager.close` on shutdown.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import StorageError, WalCorrupt
from ..obs.events import EVENTS
from ..storage.graph import GraphStore
from . import hooks
from .checkpoint import CheckpointInfo, prune, wal_dir, write_checkpoint
from .records import commit_payload, replay_commit
from .recovery import FsckReport, RecoveryResult, fsck, init_db, recover
from .wal import WAL_MODES, WalWriter, create_segment, scan_segment

if TYPE_CHECKING:
    from ..txn.transaction import Transaction

__all__ = [
    "CheckpointInfo",
    "DurabilityManager",
    "FsckReport",
    "RecoveryResult",
    "StorageError",
    "WAL_MODES",
    "WalCorrupt",
    "commit_payload",
    "fsck",
    "hooks",
    "init_db",
    "recover",
    "replay_commit",
]


class DurabilityManager:
    """One durable database directory, held open by one engine.

    Single-writer by construction: every :meth:`log_commit` happens under
    the transaction manager's commit guard, and checkpoints take the same
    guard through the service.  All crash sites of the protocol live in
    the code paths this class drives.
    """

    def __init__(
        self,
        db: Path,
        writer: WalWriter,
        mode: str,
        batch_every: int = 8,
        keep: int = 2,
    ) -> None:
        self.db = Path(db)
        self.writer = writer
        self.mode = mode
        self.batch_every = batch_every
        self.keep = keep
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    @classmethod
    def initialise(
        cls,
        path: str | Path,
        store: GraphStore,
        mode: str = "fsync",
        batch_every: int = 8,
        keep: int = 2,
    ) -> "DurabilityManager":
        """Create a fresh database directory seeded with *store*."""
        if mode not in WAL_MODES:
            raise StorageError(f"unknown durability mode {mode!r}; choose from {WAL_MODES}")
        db = init_db(path, store)
        writer = WalWriter(
            wal_dir(db) / "wal-000000000000.log",
            epoch=0,
            mode=mode,
            batch_every=batch_every,
        )
        return cls(db, writer, mode, batch_every=batch_every, keep=keep)

    @classmethod
    def attach(
        cls,
        db: Path,
        result: RecoveryResult,
        mode: str = "fsync",
        batch_every: int = 8,
        keep: int = 2,
    ) -> "DurabilityManager":
        """Resume appending after :func:`recover` ran on *db*.

        Appends continue on the recovered active segment (already
        truncated to its valid prefix); if recovery found no usable
        segment, a fresh one is cut at the checkpoint epoch.
        """
        if mode not in WAL_MODES:
            raise StorageError(f"unknown durability mode {mode!r}; choose from {WAL_MODES}")
        segment = result.active_segment
        if segment is None or not segment.exists():
            segment = create_segment(wal_dir(db), result.checkpoint.epoch)
        scan = scan_segment(segment)
        writer = WalWriter(
            segment,
            epoch=scan.epoch,
            mode=mode,
            batch_every=batch_every,
            start_offset=scan.valid_length,
        )
        return cls(Path(db), writer, mode, batch_every=batch_every, keep=keep)

    # -- the write path ------------------------------------------------------------

    def log_commit(self, txn: "Transaction", version: int) -> None:
        """Make one staged commit durable *before* it applies.

        Called under the commit guard.  In ``fsync`` mode the record is on
        disk when this returns; in ``batch`` mode it is flushed with a
        bounded fsync lag.
        """
        self.writer.append(commit_payload(txn, version))

    def checkpoint(self, store: GraphStore, version: int) -> CheckpointInfo:
        """Fold everything up to *version* into checkpoint ``ckpt-<version>``.

        Protocol (each step crash-atomic, see module docstrings):
        sync the WAL → write + rename the snapshot → cut a fresh WAL
        segment for the new epoch → prune retired checkpoints/segments.
        Calling twice at the same version is a no-op.
        """
        if self._closed:
            raise StorageError("durability manager is closed")
        if version == self.writer.epoch:
            return CheckpointInfo(
                path=self.db / "checkpoints" / f"ckpt-{version:012d}", epoch=version
            )
        self.writer.sync()
        info = write_checkpoint(store, self.db, version)
        self.writer.switch_segment(wal_dir(self.db), version)
        hooks.crashpoint("checkpoint.segment_switched")
        prune(self.db, keep=self.keep)
        EVENTS.emit("checkpoint_complete", epoch=version)
        return info

    def sync(self) -> None:
        """Force every appended record onto disk (batch-mode flush)."""
        if not self._closed:
            self.writer.sync()

    def close(self) -> None:
        if self._closed:
            return
        self.writer.close()
        self._closed = True

    def describe(self) -> dict[str, Any]:
        return {
            "path": str(self.db),
            "mode": self.mode,
            "batch_every": self.batch_every,
            "checkpoint_keep": self.keep,
            "wal_segment": self.writer.path.name,
            "wal_epoch": self.writer.epoch,
        }
