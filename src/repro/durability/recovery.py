"""Crash recovery: newest valid checkpoint + longest valid WAL prefix.

``recover`` is the only read path for a durable database directory.  The
algorithm, in order:

1. Verify the ``GESDB.json`` marker.
2. Sweep hidden checkpoint temp dirs (strandings from a kill mid-write;
   never visible to loaders, always safe to delete).
3. Walk checkpoints newest-first; the first whose manifest verifies
   end-to-end (per-file SHA-256, epoch match) is loaded.  An invalid
   newest checkpoint is *not* fatal — retention keeps a fallback.
4. Replay WAL segments with epoch >= the chosen checkpoint, ascending.
   Records apply in order under their recorded commit version; records
   already folded into the checkpoint (version <= current) are skipped.
   The first torn record stops replay **cleanly**: the segment is
   truncated to its longest valid prefix, any later segments (written
   after the tear, now causally disconnected) are set aside as
   ``.orphan``, and nothing partial is ever applied.

Recovery is deterministic: the same directory bytes always produce the
same store, and ``fsck`` (read-only) names the exact torn byte offset a
repair would truncate to.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import StorageError
from ..obs.events import EVENTS
from ..obs.metrics import REGISTRY
from ..storage.graph import GraphStore
from ..storage.io import load_graph
from . import wal as wal_mod
from .checkpoint import (
    CheckpointInfo,
    checkpoints_dir,
    list_checkpoints,
    read_marker,
    sweep_temp_dirs,
    validate_checkpoint,
    wal_dir,
    write_checkpoint,
    write_marker,
)


@dataclass
class RecoveryResult:
    """What ``recover`` did: the store plus a full forensic account."""

    store: GraphStore
    #: Highest commit version present in the recovered store.
    version: int
    checkpoint: CheckpointInfo
    #: WAL records applied during replay.
    replayed: int = 0
    #: Records skipped as already folded into the checkpoint (or duplicated).
    skipped: int = 0
    #: Segments truncated to their longest valid prefix.
    repaired: list[str] = field(default_factory=list)
    #: Segments set aside as ``.orphan`` (written after a mid-log tear).
    orphaned: list[str] = field(default_factory=list)
    #: Checkpoint temp dirs swept away.
    swept: list[str] = field(default_factory=list)
    #: Checkpoints that failed verification and were skipped over.
    invalid_checkpoints: list[str] = field(default_factory=list)
    #: The segment an appender should resume on (may need creating).
    active_segment: Path | None = None


def init_db(path: str | Path, store: GraphStore) -> Path:
    """Create a durable database directory seeded with *store*.

    Writes the marker, checkpoint ``ckpt-0`` (the initial state — commits
    recorded later always have version >= 1), and WAL segment
    ``wal-0``.  Refuses to initialise over an existing database.
    """
    db = Path(path)
    if db.exists() and (db / "GESDB.json").exists():
        raise StorageError(f"{db} is already a GES database")
    db.mkdir(parents=True, exist_ok=True)
    write_marker(db)
    write_checkpoint(store, db, epoch=0)
    wals = wal_dir(db)
    wals.mkdir(parents=True, exist_ok=True)
    wal_mod.create_segment(wals, epoch=0)
    EVENTS.emit("db_initialised", path=str(db))
    return db


def _choose_checkpoint(
    db: Path, invalid: list[str]
) -> CheckpointInfo:
    infos = list_checkpoints(db)
    if not infos:
        raise StorageError(f"no checkpoints under {checkpoints_dir(db)}")
    for info in reversed(infos):
        try:
            validate_checkpoint(info)
        except StorageError as exc:
            invalid.append(info.path.name)
            EVENTS.emit(
                "checkpoint_invalid", name=info.path.name, error=str(exc)
            )
            continue
        return info
    raise StorageError(
        f"no valid checkpoint under {checkpoints_dir(db)}: "
        f"all of {[i.path.name for i in infos]} failed verification"
    )


def recover(path: str | Path, repair: bool = True) -> RecoveryResult:
    """Rebuild the store from *path* (see module docstring for protocol).

    With ``repair=False`` torn segments are replayed up to their valid
    prefix but left byte-for-byte untouched on disk (fsck-style dry run).
    """
    from .records import replay_commit

    db = Path(path)
    read_marker(db)
    m_replays = REGISTRY.counter(
        "ges_wal_replays_total", "WAL records replayed during recovery."
    )
    m_torn = REGISTRY.counter(
        "ges_wal_torn_tails_total", "Torn WAL tails detected during recovery."
    )
    EVENTS.emit("recovery_started", path=str(db))
    swept = sweep_temp_dirs(db)
    invalid: list[str] = []
    chosen = _choose_checkpoint(db, invalid)
    store = load_graph(chosen.path)
    result = RecoveryResult(
        store=store,
        version=chosen.epoch,
        checkpoint=chosen,
        swept=swept,
        invalid_checkpoints=invalid,
    )

    wals = wal_dir(db)
    all_segments = list(wal_mod.iter_segments(wals))
    older = [s for s in all_segments if wal_mod.segment_epoch(s) < chosen.epoch]
    newer = [s for s in all_segments if wal_mod.segment_epoch(s) >= chosen.epoch]
    # A crash between a checkpoint's rename and its WAL segment switch
    # leaves post-checkpoint commits in the *previous* epoch's segment, so
    # the newest older segment replays too; version-based skipping makes
    # that free when it holds nothing new.
    segments = older[-1:] + newer
    for index, segment in enumerate(segments):
        scan = wal_mod.scan_segment(segment)
        for record in scan.records:
            if record.version <= result.version:
                result.skipped += 1
                continue
            replay_commit(store, record.payload)
            result.version = record.version
            result.replayed += 1
            m_replays.inc()
        result.active_segment = segment
        if scan.clean:
            continue
        # Torn tail: truncate to the valid prefix and stop.  Segments
        # written after this one postdate the tear and are causally
        # disconnected from the surviving history — set them aside.
        m_torn.inc()
        if repair:
            wal_mod.repair_segment(scan)
            for later in segments[index + 1 :]:
                orphan = later.with_suffix(later.suffix + ".orphan")
                os.rename(later, orphan)
                result.orphaned.append(later.name)
            if result.orphaned:
                wal_mod.fsync_dir(wals)
        result.repaired.append(segment.name)
        break
    EVENTS.emit(
        "recovery_complete",
        path=str(db),
        checkpoint_epoch=chosen.epoch,
        version=result.version,
        replayed=result.replayed,
        skipped=result.skipped,
        repaired=result.repaired,
        orphaned=result.orphaned,
    )
    return result


# -- fsck ---------------------------------------------------------------------------


@dataclass
class FsckReport:
    """Read-only integrity audit of a durable database directory."""

    path: str
    checkpoints: list[dict[str, Any]] = field(default_factory=list)
    segments: list[dict[str, Any]] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "ok": self.ok,
            "checkpoints": self.checkpoints,
            "segments": self.segments,
            "problems": self.problems,
        }


def fsck(path: str | Path) -> FsckReport:
    """Audit every checkpoint and WAL segment under *path* — read-only.

    Reports, per checkpoint, whether its manifest verifies; per segment,
    the record count, last version, and — for torn segments — the exact
    byte offset and reason a repair would truncate at.  Stray temp dirs
    and orphaned segments are flagged.  ``report.ok`` is True iff a
    recovery would proceed with zero data-loss caveats.
    """
    db = Path(path)
    report = FsckReport(path=str(db))
    try:
        read_marker(db)
    except StorageError as exc:
        report.problems.append(str(exc))
        return report

    valid_epochs: list[int] = []
    for info in list_checkpoints(db):
        entry: dict[str, Any] = {"name": info.path.name, "epoch": info.epoch}
        try:
            validate_checkpoint(info)
            entry["status"] = "ok"
            valid_epochs.append(info.epoch)
        except StorageError as exc:
            entry["status"] = f"invalid: {exc}"
            report.problems.append(f"checkpoint {info.path.name}: {exc}")
        report.checkpoints.append(entry)
    if not valid_epochs:
        report.problems.append("no valid checkpoint: recovery would fail")

    ckpts = checkpoints_dir(db)
    if ckpts.is_dir():
        for member in ckpts.iterdir():
            if member.is_dir() and member.name.startswith("."):
                report.problems.append(
                    f"stray checkpoint temp dir {member.name} (crash leftover)"
                )

    wals = wal_dir(db)
    segments = list(wal_mod.iter_segments(wals))
    for position, segment in enumerate(segments):
        try:
            scan = wal_mod.scan_segment(segment)
        except StorageError as exc:
            report.segments.append({"name": segment.name, "status": f"unreadable: {exc}"})
            report.problems.append(f"segment {segment.name}: {exc}")
            continue
        entry = {
            "name": segment.name,
            "epoch": scan.epoch,
            "records": len(scan.records),
            "last_version": scan.last_version,
            "clean": scan.clean,
        }
        if not scan.clean:
            entry["torn_offset"] = scan.torn_offset
            entry["torn_reason"] = scan.torn_reason
            entry["valid_length"] = scan.valid_length
            severity = "tail" if position == len(segments) - 1 else "mid-log"
            report.problems.append(
                f"segment {segment.name}: torn at byte {scan.torn_offset} "
                f"({scan.torn_reason}, {severity}); "
                f"recovery keeps the first {len(scan.records)} record(s)"
            )
        report.segments.append(entry)
    if wals.is_dir():
        for member in sorted(wals.iterdir()):
            if member.name.endswith(".orphan"):
                report.problems.append(
                    f"orphaned segment {member.name} (set aside by a past recovery)"
                )
    return report
