"""Atomic checkpoints: durable snapshots that bound WAL replay.

A durable database directory looks like::

    db/
      GESDB.json                   marker: this directory is a GES database
      checkpoints/
        ckpt-000000000000/         snapshot at epoch 0 (the initial state)
        ckpt-000000000042/         snapshot at epoch 42
      wal/
        wal-000000000000.log       commits after epoch 0
        wal-000000000042.log       commits after epoch 42

A checkpoint at epoch *V* is a full graph snapshot whose manifest records
``epoch: V`` — every commit with version ``<= V`` is folded in.  The
write protocol is crash-atomic: the snapshot is assembled in a hidden
temp directory inside ``checkpoints/``, each file is fsynced, a per-file
SHA-256 ``MANIFEST.json`` is emitted, the directory itself is fsynced,
and only then is it renamed to ``ckpt-<V>``.  Kill -9 at any point leaves
either no new checkpoint (temp dir swept by recovery) or a complete one.

Retention keeps the newest ``keep`` checkpoints so recovery can fall back
to an older epoch if the newest manifest fails verification; WAL segments
older than the oldest retained checkpoint are pruned with it.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..errors import StorageError
from ..obs.events import EVENTS
from ..storage.io import (
    _write_snapshot_files,
    fsync_dir,
    fsync_file,
    verify_manifest,
    write_manifest,
)
from ..storage.graph import GraphStore
from . import wal as wal_mod
from .hooks import crashpoint

CHECKPOINTS_DIRNAME = "checkpoints"
WAL_DIRNAME = "wal"
MARKER_NAME = "GESDB.json"
MARKER_FORMAT = 1

_CKPT_PREFIX = "ckpt-"


def checkpoints_dir(db: Path) -> Path:
    """The ``checkpoints/`` directory of database *db*."""
    return Path(db) / CHECKPOINTS_DIRNAME


def wal_dir(db: Path) -> Path:
    """The ``wal/`` directory of database *db*."""
    return Path(db) / WAL_DIRNAME


def marker_path(db: Path) -> Path:
    """Path of the ``GESDB.json`` marker of database *db*."""
    return Path(db) / MARKER_NAME


def checkpoint_name(epoch: int) -> str:
    """Directory name of the checkpoint at *epoch* (``ckpt-<12 digits>``)."""
    return f"{_CKPT_PREFIX}{epoch:012d}"


def checkpoint_epoch(path: Path) -> int:
    """Epoch encoded in a checkpoint directory name, or ``StorageError``."""
    name = Path(path).name
    if not name.startswith(_CKPT_PREFIX):
        raise StorageError(f"not a checkpoint directory name: {path}")
    try:
        return int(name[len(_CKPT_PREFIX):])
    except ValueError as exc:
        raise StorageError(f"bad checkpoint directory name {path}") from exc


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint, identified by path + folded-in epoch."""

    path: Path
    epoch: int


def write_marker(db: Path) -> None:
    """Stamp *db* as a GES database directory (idempotent, fsynced)."""
    target = marker_path(db)
    with open(target, "w") as handle:
        json.dump({"magic": "GESDB", "format": MARKER_FORMAT}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_dir(Path(db))


def read_marker(db: Path) -> dict:
    """Parse and sanity-check the database marker; typed errors only."""
    target = marker_path(db)
    if not target.exists():
        raise StorageError(f"{db} is not a GES database (no {MARKER_NAME})")
    try:
        with open(target) as handle:
            marker = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable database marker {target}: {exc}") from exc
    if marker.get("magic") != "GESDB":
        raise StorageError(f"{target} is not a GES database marker")
    if marker.get("format") != MARKER_FORMAT:
        raise StorageError(
            f"unsupported database format {marker.get('format')!r} at {target}"
        )
    return marker


def list_checkpoints(db: Path) -> list[CheckpointInfo]:
    """Completed (renamed-into-place) checkpoints, ascending by epoch."""
    ckpts = checkpoints_dir(db)
    if not ckpts.is_dir():
        return []
    found = [
        CheckpointInfo(path=member, epoch=checkpoint_epoch(member))
        for member in ckpts.iterdir()
        if member.is_dir() and member.name.startswith(_CKPT_PREFIX)
    ]
    return sorted(found, key=lambda info: info.epoch)


def validate_checkpoint(info: CheckpointInfo) -> dict:
    """Verify a checkpoint end-to-end; returns its manifest.

    Raises :class:`StorageError` when the manifest is absent (checkpoints
    are always v3), any file fails its SHA-256, or the manifest epoch does
    not match the directory name.
    """
    manifest = verify_manifest(info.path)
    if manifest is None:
        raise StorageError(f"checkpoint {info.path} has no MANIFEST.json")
    if int(manifest.get("epoch", -1)) != info.epoch:
        raise StorageError(
            f"checkpoint {info.path} manifest epoch {manifest.get('epoch')!r} "
            f"does not match its directory name"
        )
    return manifest


def sweep_temp_dirs(db: Path) -> list[str]:
    """Remove crash leftovers: hidden temp dirs under ``checkpoints/``.

    A kill -9 between temp-write and rename strands a ``.ckpt-*.tmp-*``
    directory; it was never visible to loaders and is safe to delete."""
    ckpts = checkpoints_dir(db)
    removed: list[str] = []
    if not ckpts.is_dir():
        return removed
    for member in ckpts.iterdir():
        if member.is_dir() and member.name.startswith("."):
            shutil.rmtree(member, ignore_errors=True)
            removed.append(member.name)
    if removed:
        fsync_dir(ckpts)
        EVENTS.emit("checkpoint_temp_swept", count=len(removed), names=removed)
    return removed


def write_checkpoint(store: GraphStore, db: Path, epoch: int) -> CheckpointInfo:
    """Write the crash-atomic snapshot ``ckpt-<epoch>`` of *store*.

    Idempotent: if that checkpoint already exists it is left untouched.
    Crash sites: ``checkpoint.tmp_written`` (temp complete, not renamed)
    and ``checkpoint.renamed`` (visible, WAL not yet switched).
    """
    ckpts = checkpoints_dir(db)
    ckpts.mkdir(parents=True, exist_ok=True)
    target = ckpts / checkpoint_name(epoch)
    info = CheckpointInfo(path=target, epoch=epoch)
    if target.exists():
        return info
    tmp = ckpts / f".{checkpoint_name(epoch)}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    try:
        tmp.mkdir(parents=True)
        _write_snapshot_files(store, tmp)
        for member in tmp.iterdir():
            fsync_file(member)
        write_manifest(tmp, extra={"epoch": epoch})
        fsync_dir(tmp)
        crashpoint("checkpoint.tmp_written")
        os.rename(tmp, target)
        fsync_dir(ckpts)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    EVENTS.emit("checkpoint_written", epoch=epoch, path=str(target))
    crashpoint("checkpoint.renamed")
    return info


def prune(db: Path, keep: int = 2) -> tuple[list[str], list[str]]:
    """Retire old checkpoints and the WAL segments they make redundant.

    Keeps the newest *keep* checkpoints; removes WAL segments whose epoch
    is below the oldest retained checkpoint (their commits are folded into
    every surviving checkpoint).  Crash site ``checkpoint.truncated``
    fires before the first removal, modelling a kill mid-prune.

    Returns ``(removed_checkpoints, removed_segments)`` by name.
    """
    infos = list_checkpoints(db)
    doomed = infos[:-keep] if keep > 0 else []
    removed_ckpts: list[str] = []
    removed_segments: list[str] = []
    crashpoint("checkpoint.truncated")
    for info in doomed:
        shutil.rmtree(info.path, ignore_errors=True)
        removed_ckpts.append(info.path.name)
    if removed_ckpts:
        fsync_dir(checkpoints_dir(db))
    survivors = list_checkpoints(db)
    if survivors:
        floor = survivors[0].epoch
        wals = wal_dir(db)
        for segment in wal_mod.iter_segments(wals):
            if wal_mod.segment_epoch(segment) < floor:
                segment.unlink()
                removed_segments.append(segment.name)
        if removed_segments:
            fsync_dir(wals)
    if removed_ckpts or removed_segments:
        EVENTS.emit(
            "durability_pruned",
            checkpoints=removed_ckpts,
            segments=removed_segments,
        )
    return removed_ckpts, removed_segments
