"""The write-ahead log: length-prefixed, CRC32-checksummed commit records.

One WAL *segment* per checkpoint epoch lives under ``<db>/wal/``::

    wal-000000000000.log        commits made after checkpoint epoch 0
    wal-000000000042.log        commits made after checkpoint epoch 42

Segment layout::

    header   = b"GESW" | u32 format | u64 epoch          (16 bytes)
    record   = u32 body_len | u32 crc32(body) | body      (repeated)

Record bodies are compact JSON — the staged-transaction payload built by
:mod:`repro.durability.records` — so a segment is greppable with
``strings`` yet every byte is covered by the CRC.  A record is *durable*
once its bytes are on disk and (in ``fsync`` mode) fsynced; a torn tail —
truncated length word, short body, checksum mismatch — is detected on
read and the longest valid prefix wins, deterministically.

Modes:

* ``fsync`` — fsync after every commit append: a commit that returned is
  durable, full stop (the crash harness's strongest invariant).
* ``batch`` — flush after every append, fsync every
  ``batch_every`` appends (and on checkpoint/close): bounded-loss group
  commit, an order of magnitude cheaper per commit.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import StorageError, WalCorrupt
from ..obs.events import EVENTS
from ..obs.metrics import REGISTRY
from .hooks import crashpoint

WAL_MAGIC = b"GESW"
WAL_FORMAT = 1
HEADER_SIZE = 16
_HEADER = struct.Struct("<4sIQ")
_PREFIX = struct.Struct("<II")

#: Sanity ceiling on one record body: a bit-flipped length word must not
#: make the reader attempt a multi-gigabyte allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024

WAL_MODES = ("fsync", "batch")


def segment_name(epoch: int) -> str:
    """Filename of the segment for checkpoint *epoch* (``wal-<12 digits>.log``)."""
    return f"wal-{epoch:012d}.log"


def segment_epoch(path: Path) -> int:
    """Epoch encoded in a segment filename, or raise ``StorageError``."""
    stem = path.name
    if not (stem.startswith("wal-") and stem.endswith(".log")):
        raise StorageError(f"not a WAL segment name: {path}")
    try:
        return int(stem[4:-4])
    except ValueError as exc:
        raise StorageError(f"bad WAL segment name {path}") from exc


def encode_record(body: bytes) -> bytes:
    """``len | crc | body`` — the only on-disk record shape."""
    return _PREFIX.pack(len(body), zlib.crc32(body)) + body


def encode_header(epoch: int) -> bytes:
    """The 16-byte segment header: magic, format, epoch."""
    return _HEADER.pack(WAL_MAGIC, WAL_FORMAT, epoch)


@dataclass
class WalRecord:
    """One decoded record plus where it sat in the segment."""

    offset: int  # byte offset of the length prefix
    length: int  # total bytes including the 8-byte prefix
    payload: dict[str, Any]

    @property
    def version(self) -> int:
        return int(self.payload["v"])


@dataclass
class WalScan:
    """Outcome of scanning one segment: valid prefix + tear, if any."""

    path: Path
    epoch: int
    records: list[WalRecord] = field(default_factory=list)
    #: Bytes of the longest valid prefix (header included): the offset a
    #: repair truncates to, and where appends resume.
    valid_length: int = HEADER_SIZE
    #: Byte offset of the first corrupt/torn record, or None when clean.
    torn_offset: int | None = None
    torn_reason: str | None = None

    @property
    def clean(self) -> bool:
        return self.torn_offset is None

    @property
    def last_version(self) -> int:
        return self.records[-1].version if self.records else self.epoch


def scan_segment(path: Path) -> WalScan:
    """Read every valid record of *path*, stopping at the first tear.

    Never raises for tail damage — a torn tail is an expected crash
    artifact, reported in the scan.  A missing file or unreadable/foreign
    header *does* raise (``StorageError``/``WalCorrupt``): that is not a
    torn tail, it is not a WAL segment.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"unreadable WAL segment {path}: {exc}") from exc
    if len(data) < HEADER_SIZE:
        raise WalCorrupt(f"WAL segment {path} is shorter than its header")
    magic, fmt, epoch = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalCorrupt(f"WAL segment {path} has bad magic {magic!r}")
    if fmt != WAL_FORMAT:
        raise WalCorrupt(f"WAL segment {path} has unsupported format {fmt}")
    scan = WalScan(path=path, epoch=epoch)
    offset = HEADER_SIZE
    total = len(data)
    while offset < total:
        if total - offset < _PREFIX.size:
            scan.torn_offset = offset
            scan.torn_reason = "truncated record prefix"
            break
        body_len, crc = _PREFIX.unpack_from(data, offset)
        if body_len > MAX_RECORD_BYTES:
            scan.torn_offset = offset
            scan.torn_reason = f"implausible record length {body_len}"
            break
        body_end = offset + _PREFIX.size + body_len
        if body_end > total:
            scan.torn_offset = offset
            scan.torn_reason = "truncated record body"
            break
        body = data[offset + _PREFIX.size : body_end]
        if zlib.crc32(body) != crc:
            scan.torn_offset = offset
            scan.torn_reason = "checksum mismatch"
            break
        try:
            payload = json.loads(body.decode("utf-8"))
            version = int(payload["v"])
        except (ValueError, KeyError, UnicodeDecodeError):
            scan.torn_offset = offset
            scan.torn_reason = "undecodable record body"
            break
        scan.records.append(
            WalRecord(offset=offset, length=body_end - offset, payload=payload)
        )
        scan.valid_length = body_end
        offset = body_end
        del version  # validated above; consumers read it off the payload
    return scan


def iter_segments(wal_dir: Path) -> Iterator[Path]:
    """Segment files under *wal_dir*, ascending by epoch."""
    if not wal_dir.is_dir():
        return iter(())
    segments = [
        p for p in wal_dir.iterdir()
        if p.name.startswith("wal-") and p.name.endswith(".log")
    ]
    return iter(sorted(segments, key=segment_epoch))


def create_segment(wal_dir: Path, epoch: int) -> Path:
    """Write a fresh (header-only) segment and fsync it + its directory."""
    path = wal_dir / segment_name(epoch)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, encode_header(epoch))
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_dir(wal_dir)
    return path


def fsync_dir(path: Path) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WalWriter:
    """Appender over one segment; single-threaded by construction (every
    append happens under the transaction manager's commit guard)."""

    def __init__(
        self,
        path: Path,
        epoch: int,
        mode: str = "fsync",
        batch_every: int = 8,
        start_offset: int | None = None,
    ) -> None:
        if mode not in WAL_MODES:
            raise StorageError(f"unknown WAL mode {mode!r}; choose from {WAL_MODES}")
        self.path = Path(path)
        self.epoch = epoch
        self.mode = mode
        self.batch_every = max(1, batch_every)
        self._file = open(self.path, "r+b")
        if start_offset is None:
            self._file.seek(0, io.SEEK_END)
        else:
            self._file.seek(start_offset)
            self._file.truncate()
        self._pending = 0  # appends since the last fsync (batch mode)
        self._closed = False
        self._m_appends = REGISTRY.counter(
            "ges_wal_appends_total", "Commit records appended to the WAL."
        )
        self._m_bytes = REGISTRY.counter(
            "ges_wal_bytes_total", "Bytes appended to the WAL (prefix included)."
        )
        self._m_fsyncs = REGISTRY.counter(
            "ges_wal_fsyncs_total", "fsync calls issued by the WAL writer."
        )

    @classmethod
    def create(
        cls, wal_dir: Path, epoch: int, mode: str = "fsync", batch_every: int = 8
    ) -> "WalWriter":
        path = create_segment(wal_dir, epoch)
        return cls(path, epoch, mode=mode, batch_every=batch_every)

    def append(self, payload: dict[str, Any]) -> int:
        """Append one commit record; returns bytes written.

        In ``fsync`` mode the record is durable when this returns; in
        ``batch`` mode it is flushed to the OS and fsynced every
        ``batch_every`` appends.
        """
        if self._closed:
            raise StorageError("WAL writer is closed")
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        record = encode_record(body)
        crashpoint("commit.wal_append")
        self._file.write(record)
        self._file.flush()
        self._m_appends.inc()
        self._m_bytes.inc(len(record))
        crashpoint("commit.wal_fsync")
        if self.mode == "fsync":
            os.fsync(self._file.fileno())
            self._m_fsyncs.inc()
        else:
            self._pending += 1
            if self._pending >= self.batch_every:
                os.fsync(self._file.fileno())
                self._m_fsyncs.inc()
                self._pending = 0
        return len(record)

    def sync(self) -> None:
        """Force everything appended so far onto disk."""
        if self._closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._m_fsyncs.inc()
        self._pending = 0

    def switch_segment(self, wal_dir: Path, epoch: int) -> None:
        """Start appending to a fresh segment for *epoch* (checkpoint step).

        The old segment is synced and closed first, so no acked record can
        be lost by the switch; pruning old files is the caller's job."""
        self.sync()
        self._file.close()
        self.path = create_segment(wal_dir, epoch)
        self.epoch = epoch
        self._file = open(self.path, "r+b")
        self._file.seek(0, io.SEEK_END)
        self._pending = 0

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True
        EVENTS.emit("wal_closed", epoch=self.epoch)

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def repair_segment(scan: WalScan) -> bool:
    """Truncate a torn segment to its longest valid prefix (in place).

    Returns True when bytes were actually removed.  This is recovery's
    only write to an existing segment: it never invents data, it only
    discards a tail that was, by definition, never acknowledged."""
    if scan.clean:
        return False
    with open(scan.path, "r+b") as handle:
        handle.truncate(scan.valid_length)
        handle.flush()
        os.fsync(handle.fileno())
    EVENTS.emit(
        "wal_repaired",
        segment=scan.path.name,
        torn_offset=scan.torn_offset,
        reason=scan.torn_reason,
    )
    return True
