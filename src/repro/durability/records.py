"""Commit-record payloads: a staged transaction as replayable plain data.

The shape deliberately mirrors the testkit update serde
(:class:`repro.testkit.querygen.UpdateBatch` op dicts): one JSON object
per commit, listing the staged vertex inserts, property writes, and edge
mutations in exactly the order :meth:`Transaction.commit` applies them.
Replay re-applies that order with the record's own commit version, so a
recovered store is stamp-for-stamp what the original apply produced —
MVCC visibility included.

Edge endpoints are either concrete refs (``{"ref": [label, row]}``) or
staged-vertex handles (``{"staged": k}``) resolved against this record's
own inserts, the same two cases the live commit path resolves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import StorageError
from ..storage.graph import GraphStore, VertexRef

if TYPE_CHECKING:  # import cycle guard: txn never imports durability
    from ..txn.transaction import Transaction

#: Payload schema version, stored in every record.
RECORD_FORMAT = 1


def _plain(value: Any) -> Any:
    """Coerce numpy scalars to JSON-native types; pass the rest through.

    Float NaN becomes None: every bulk path in the storage layer (snapshot
    load, datagen) already treats FLOAT64 NaN as null, so the WAL adopts
    the same convention — otherwise a row's NaN would be null or not-null
    depending on whether recovery took the checkpoint or the replay path.
    """
    item = getattr(value, "item", None)
    if callable(item):
        value = item()
    if isinstance(value, float) and value != value:
        return None
    return value


def _plain_props(props: dict[str, Any]) -> dict[str, Any]:
    return {name: _plain(value) for name, value in props.items()}


def _endpoint(endpoint: "VertexRef | int") -> dict[str, Any]:
    if isinstance(endpoint, VertexRef):
        return {"ref": [endpoint.label, endpoint.row]}
    return {"staged": int(endpoint)}


def commit_payload(txn: "Transaction", version: int) -> dict[str, Any]:
    """The WAL body for one commit, built *before* mutations apply."""
    return {
        "f": RECORD_FORMAT,
        "v": version,
        "vertices": [
            {"label": staged.label, "props": _plain_props(staged.properties)}
            for staged in txn._new_vertices
        ],
        "props": [
            {
                "label": write.label,
                "row": write.row,
                "name": write.name,
                "value": _plain(write.value),
            }
            for write in txn._property_writes
        ],
        "edges": [
            {
                "label": edge.edge_label,
                "src": _endpoint(edge.src),
                "dst": _endpoint(edge.dst),
                "props": _plain_props(edge.props),
                "delete": edge.delete,
            }
            for edge in txn._edges
        ],
    }


def _resolve(endpoint: dict[str, Any], staged_refs: list[VertexRef]) -> VertexRef:
    if "ref" in endpoint:
        label, row = endpoint["ref"]
        return VertexRef(label, int(row))
    handle = int(endpoint["staged"])
    try:
        return staged_refs[handle]
    except IndexError as exc:
        raise StorageError(
            f"WAL record references staged vertex {handle} of {len(staged_refs)}"
        ) from exc


def replay_commit(store: GraphStore, payload: dict[str, Any]) -> int:
    """Re-apply one commit record to *store* under its recorded version.

    Mirrors the apply phase of :meth:`Transaction.commit` — vertex inserts
    (stamped), property writes, then edge mutations (stamped) — without
    locks, overlay pre-images, or re-logging: recovery is single-threaded
    and there are no readers pinned at older versions."""
    version = int(payload["v"])
    staged_refs: list[VertexRef] = []
    for staged in payload.get("vertices", ()):
        ref = store.add_vertex(staged["label"], staged["props"])
        store.table(staged["label"]).mark_created(ref.row, version)
        staged_refs.append(ref)
    for write in payload.get("props", ()):
        store.table(write["label"]).set_property(
            int(write["row"]), write["name"], write["value"]
        )
    for edge in payload.get("edges", ()):
        src = _resolve(edge["src"], staged_refs)
        dst = _resolve(edge["dst"], staged_refs)
        if edge.get("delete"):
            store.remove_edge(edge["label"], src, dst, version=version)
        else:
            store.add_edge(
                edge["label"], src, dst, edge.get("props") or {}, version=version
            )
    return version
