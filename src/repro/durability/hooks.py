"""Seeded crash points: where the kill -9 harness murders a child engine.

The durability protocol is proven by dying at its least convenient
moments.  Each named site below marks one such moment — between the WAL
append and its fsync, after a checkpoint's temp dir is written but before
the atomic rename, mid WAL truncation — and the crash-recovery harness
(:mod:`repro.testkit.crashtest`) arms exactly one ``(site, hit)`` pair in
a forked child before driving commits through it.  When the armed hit is
reached the child SIGKILLs itself: no atexit handlers, no flushes, no
cleanup — the closest a test can get to pulling the power cord.

Disarmed cost is one module-attribute read per site (the fault-injection
``ACTIVE`` convention from :mod:`repro.resilience.faults`).
"""

from __future__ import annotations

import os
import signal

#: Every instrumented crash site, in protocol order.  The harness sweeps
#: these; keep in sync with the call sites in wal.py / checkpoint.py.
CRASH_SITES = (
    "commit.wal_append",          # before the record bytes are written
    "commit.wal_fsync",           # record written, fsync not yet issued
    "commit.applied",             # record durable, mutations applied
    "checkpoint.tmp_written",     # temp snapshot complete, not yet renamed
    "checkpoint.renamed",         # checkpoint visible, WAL not yet switched
    "checkpoint.segment_switched",  # new WAL segment live, old not pruned
    "checkpoint.truncated",       # mid-prune: some old files already gone
)

#: ``(site, hit_ordinal)`` armed in this process, or None (the default).
ARMED: tuple[str, int] | None = None

_hits: dict[str, int] = {}


def arm(site: str, hit: int = 1) -> None:
    """Arm *site* to SIGKILL this process on its *hit*-th execution."""
    global ARMED
    if site not in CRASH_SITES:
        raise ValueError(f"unknown crash site {site!r}; known: {CRASH_SITES}")
    if hit < 1:
        raise ValueError("hit ordinal must be >= 1")
    ARMED = (site, hit)
    _hits.clear()


def disarm() -> None:
    """Clear any armed crash site (the parent-process default)."""
    global ARMED
    ARMED = None
    _hits.clear()


def crashpoint(site: str) -> None:
    """Die here (SIGKILL, no cleanup) if this site+hit is armed."""
    armed = ARMED
    if armed is None or armed[0] != site:
        return
    count = _hits.get(site, 0) + 1
    _hits[site] = count
    if count == armed[1]:
        os.kill(os.getpid(), signal.SIGKILL)
