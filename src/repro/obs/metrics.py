"""Process-wide metrics registry: counters, gauges, log-bucketed histograms.

The engine-level instruments behind the paper's evaluation (queries served
per variant, plan-cache hit rate, factorization compression ratio, defactor
rate, memory-pool occupancy, per-LDBC-query-type latency) all live in one
:data:`REGISTRY` so a single export call — Prometheus text or JSON, see
:mod:`repro.obs.export` — captures the whole process.

Design points:

* **Histograms are log-bucketed** (geometric bucket bounds): p50/p95/p99
  come from bucket interpolation, so no samples are retained no matter how
  many observations arrive — a histogram is O(#buckets) forever.
* **Labels** follow the Prometheus model: one *family* per metric name, one
  instrument per label combination (``counter("ges_queries_total",
  variant="GES_f*")``).
* **Callback gauges** read their value lazily at export time (memory-pool
  occupancy), so idle subsystems cost nothing.

Naming scheme (documented in DESIGN.md): ``ges_`` prefix, base units
(seconds, bytes, ratios in [0, 1]), ``_total`` suffix on counters.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterator

#: Label key used to sort/identify one instrument inside a family.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("labels", "_value", "_lock")

    def __init__(self, labels: LabelKey = ()) -> None:
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative count."""
        return self._value


class Gauge:
    """A value that can go up and down, or be computed lazily via callback."""

    __slots__ = ("labels", "_value", "_fn", "_lock")

    def __init__(
        self, labels: LabelKey = (), fn: Callable[[], float] | None = None
    ) -> None:
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to *value* (ignored for callback gauges)."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by *delta* (up or down; in-flight accounting)."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """Current value (callback gauges evaluate their callback)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Log-bucketed histogram yielding percentiles without retained samples.

    Bucket ``i`` covers ``(lowest * growth**(i-1), lowest * growth**i]``;
    values at or below ``lowest`` land in bucket 0.  Percentile estimates
    interpolate geometrically inside the owning bucket and are clamped to
    the observed [min, max], so a single observation reports itself exactly.
    """

    __slots__ = (
        "labels", "lowest", "growth", "_counts", "_lock",
        "count", "sum", "min", "max",
    )

    def __init__(
        self,
        labels: LabelKey = (),
        lowest: float = 1e-6,
        growth: float = 2.0,
    ) -> None:
        if lowest <= 0 or growth <= 1:
            raise ValueError("need lowest > 0 and growth > 1")
        self.labels = labels
        self.lowest = lowest
        self.growth = growth
        # Keyed by bucket index; math.inf keys the overflow bucket.
        self._counts: dict[float, int] = {}
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket_of(self, value: float) -> float:
        if value <= self.lowest:
            return 0
        if value == math.inf:
            return math.inf  # the overflow bucket (upper bound +Inf)
        # ceil(log_growth(value / lowest)) suffers float fuzz exactly on
        # bucket boundaries, where log(growth**k)/log(growth) can land an
        # epsilon above or below k.  upper_bound() is the ground truth, so
        # the candidate is nudged until it is the *smallest* bucket whose
        # inclusive upper bound covers the value — boundary observations
        # land in one deterministic bucket.
        bucket = max(
            0, math.ceil(math.log(value / self.lowest) / math.log(self.growth))
        )
        while bucket > 0 and self.upper_bound(bucket - 1) >= value:
            bucket -= 1
        while self.upper_bound(bucket) < value:
            bucket += 1
        return bucket

    def upper_bound(self, bucket: float) -> float:
        """Inclusive upper bound of *bucket* (+Inf for the overflow bucket)."""
        if bucket == math.inf:
            return math.inf
        return self.lowest * self.growth**bucket

    def observe(self, value: float) -> None:
        """Record one observation.

        Any finite value is accepted — zero and negatives land in bucket 0
        (whose interpolation is clamped to the observed min), ``+inf``
        lands in the overflow bucket with upper bound ``+Inf`` — but NaN
        is rejected: it has no order, so no bucket or percentile could
        ever report it meaningfully.
        """
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        bucket = self._bucket_of(value)
        with self._lock:
            self._counts[bucket] = self._counts.get(bucket, 0) + 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (nan when empty)."""
        return self.sum / self.count if self.count else math.nan

    def percentile(self, pct: float) -> float:
        """Estimated value at percentile *pct* in [0, 100] (nan when empty).

        Nearest-rank bucket lookup with geometric interpolation inside the
        bucket, clamped to the observed range.
        """
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        cumulative = 0
        for bucket in sorted(self._counts):
            in_bucket = self._counts[bucket]
            if cumulative + in_bucket >= rank:
                hi = self.upper_bound(bucket)
                if not math.isfinite(hi):  # overflow bucket: only +inf lives here
                    return float(self.max)
                lo = hi / self.growth if bucket > 0 else min(self.min, hi)
                frac = (rank - cumulative) / in_bucket
                if lo <= 0:
                    estimate = hi * frac
                else:
                    estimate = lo * (hi / lo) ** frac
                return float(min(max(estimate, self.min), self.max))
            cumulative += in_bucket
        return float(self.max)

    def summary(self) -> dict[str, float]:
        """count/sum/mean/min/max plus p50/p95/p99 in one dict."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs for Prometheus export."""
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bucket in sorted(self._counts):
            cumulative += self._counts[bucket]
            out.append((self.upper_bound(bucket), cumulative))
        return out


class MetricFamily:
    """All instruments sharing one metric name (one per label combination)."""

    __slots__ = ("name", "kind", "help", "instruments")

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.instruments: dict[LabelKey, Any] = {}


class MetricsRegistry:
    """Thread-safe home of every metric family in the process."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _instrument(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict[str, Any],
        factory: Callable[[LabelKey], Any],
    ) -> Any:
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            instrument = family.instruments.get(key)
            if instrument is None:
                instrument = factory(key)
                family.instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter for *name* + *labels* (created on first use)."""
        return self._instrument(name, "counter", help, labels, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], float] | None = None,
        **labels: Any,
    ) -> Gauge:
        """The gauge for *name* + *labels*; *fn* makes it a callback gauge."""
        return self._instrument(
            name, "gauge", help, labels, lambda key: Gauge(key, fn=fn)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        lowest: float = 1e-6,
        growth: float = 2.0,
        **labels: Any,
    ) -> Histogram:
        """The histogram for *name* + *labels* (created on first use)."""
        return self._instrument(
            name,
            "histogram",
            help,
            labels,
            lambda key: Histogram(key, lowest=lowest, growth=growth),
        )

    def families(self) -> Iterator[MetricFamily]:
        """All registered families, sorted by name."""
        with self._lock:
            snapshot = sorted(self._families.values(), key=lambda f: f.name)
        yield from snapshot

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under *name*, or None."""
        return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (tests only — instruments held by engines
        keep counting into their now-orphaned objects)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry every engine instruments into.
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# Cross-process counter shipping
#
# Worker processes inherit a (forked) copy of the registry, so their
# counters advance invisibly to the coordinator.  The shipping discipline:
# snapshot the worker's counters before a task, compute the deltas after,
# send the deltas with the reply, and apply them coordinator-side — a
# delta is applied exactly once per *successful* reply, so a worker killed
# mid-task (no reply) can never double-count when it is respawned and the
# task retried.  Only counters ship: gauges describe the *local* process
# and histograms would need bucket merging nobody has asked for yet.


def counter_snapshot(
    registry: MetricsRegistry | None = None,
) -> dict[tuple[str, LabelKey], float]:
    """Point-in-time values of every counter in *registry*."""
    registry = registry if registry is not None else REGISTRY
    snapshot: dict[tuple[str, LabelKey], float] = {}
    for family in registry.families():
        if family.kind != "counter":
            continue
        for labels, counter in family.instruments.items():
            snapshot[(family.name, labels)] = counter.value
    return snapshot


def counter_deltas(
    before: dict[tuple[str, LabelKey], float],
    registry: MetricsRegistry | None = None,
) -> list[tuple[str, dict[str, str], float]]:
    """Counter increments since *before*, as a picklable payload.

    Each entry is ``(name, labels-dict, delta)``; unchanged counters are
    omitted, so an idle worker ships an empty list.
    """
    deltas: list[tuple[str, dict[str, str], float]] = []
    for (name, labels), value in counter_snapshot(registry).items():
        delta = value - before.get((name, labels), 0.0)
        if delta > 0:
            deltas.append((name, dict(labels), delta))
    return deltas


def drain_counter_deltas(
    baseline: dict[tuple[str, LabelKey], float],
    registry: MetricsRegistry | None = None,
) -> list[tuple[str, dict[str, str], float]]:
    """Counter increments since *baseline*, updating *baseline* in place.

    The worker-side hot path: one registry walk per task.  A worker takes
    one :func:`counter_snapshot` at boot and drains against it after every
    task, instead of paying a snapshot walk before plus a delta walk after
    — every increment still ships at most once, because the baseline
    advances in the same pass that emits the delta.
    """
    registry = registry if registry is not None else REGISTRY
    deltas: list[tuple[str, dict[str, str], float]] = []
    for family in registry.families():
        if family.kind != "counter":
            continue
        for labels, counter in family.instruments.items():
            key = (family.name, labels)
            value = counter.value
            delta = value - baseline.get(key, 0.0)
            if delta > 0:
                deltas.append((family.name, dict(labels), delta))
                baseline[key] = value
    return deltas


def apply_counter_deltas(
    deltas: list[tuple[str, dict[str, str], float]] | None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold shipped counter deltas into *registry* (coordinator side)."""
    if not deltas:
        return
    registry = registry if registry is not None else REGISTRY
    for name, labels, delta in deltas:
        registry.counter(name, **labels).inc(delta)


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
