"""The always-on flight recorder: the last N queries, debuggable after the fact.

Tracing (:mod:`repro.obs.tracing`) answers "where did *this* query spend
its time" — but only when it was switched on *before* the query ran, and
the tree evaporates when the caller drops the stats object.  The flight
recorder closes that gap: every :meth:`~repro.engine.service.GraphEngineService.execute`
call appends one compact :class:`FlightRecord` to a bounded ring, and any
query slower than ``EngineConfig.slow_query_ms`` is *additionally* pinned
in a separate slow-query ring so a burst of fast queries cannot evict the
interesting one.  When something was slow or wrong five minutes ago, the
evidence is still in process memory.

Ring semantics:

* ``recent`` — a ``deque(maxlen=N)``: the last N completed queries, FIFO
  eviction, no exceptions.
* ``slow`` — a second ``deque(maxlen=N)``: only queries whose service
  time exceeded the threshold.  A slow query appears in both rings; it
  survives in ``slow`` after ``recent`` has cycled past it.

Cost model: recording is a handful of attribute reads, one tuple copy of
the per-operator sequence (~10 entries), and a deque append — no
serialization, no span allocation, no clock reads beyond the one the
engine already took.  Span trees are retained *by reference* when the
query happened to be traced and serialized only at :meth:`dump` time, so
the disabled-tracing hot path stays inside the <5 % overhead budget
established for the observability substrate (measured by
``benchmarks/bench_ablation_flightrec.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .clock import wall_time
from .tracing import Span

#: Version stamp on every dump so downstream parsers can detect drift.
FLIGHT_DUMP_SCHEMA_VERSION = 1


class FlightRecord:
    """One completed query, as the flight recorder remembers it."""

    __slots__ = (
        "sequence", "query", "variant", "wall_time", "seconds", "rows",
        "slow", "ops", "trace_root", "stats_snapshot", "metrics_snapshot",
    )

    def __init__(
        self,
        sequence: int,
        query: str,
        variant: str,
        wall_time: float,
        seconds: float,
        rows: int,
        slow: bool,
        ops: tuple[tuple[str, float, int], ...],
        trace_root: Span | None,
        stats_snapshot: dict[str, Any],
        metrics_snapshot: dict[str, float],
    ) -> None:
        self.sequence = sequence
        self.query = query
        self.variant = variant
        self.wall_time = wall_time
        self.seconds = seconds
        self.rows = rows
        self.slow = slow
        self.ops = ops
        self.trace_root = trace_root
        self.stats_snapshot = stats_snapshot
        self.metrics_snapshot = metrics_snapshot

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (span tree serialized lazily, here)."""
        from .export import span_tree_json

        return {
            "sequence": self.sequence,
            "query": self.query,
            "variant": self.variant,
            "wall_time": self.wall_time,
            "seconds": self.seconds,
            "ms": self.seconds * 1e3,
            "rows": self.rows,
            "slow": self.slow,
            "ops": [
                {"op": name, "seconds": seconds, "out_bytes": out_bytes}
                for name, seconds, out_bytes in self.ops
            ],
            "stats": dict(self.stats_snapshot),
            "metrics": dict(self.metrics_snapshot),
            "span_tree": (
                span_tree_json(self.trace_root)
                if self.trace_root is not None
                else None
            ),
        }

    def __repr__(self) -> str:
        flag = " SLOW" if self.slow else ""
        return (
            f"FlightRecord(#{self.sequence} {self.variant} "
            f"{self.seconds * 1e3:.2f}ms rows={self.rows}{flag})"
        )


class FlightRecorder:
    """Bounded ring of the last N queries plus every slow one."""

    def __init__(self, capacity: int = 64, slow_ms: float = 50.0) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.recent: deque[FlightRecord] = deque(maxlen=capacity)
        self.slow: deque[FlightRecord] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime count, not bounded by the ring
        self.slow_recorded = 0

    def record(
        self,
        query: str,
        variant: str,
        seconds: float,
        rows: int,
        stats: Any,
        metrics_snapshot: dict[str, float] | None = None,
    ) -> FlightRecord:
        """Append one completed query (cheap; called on every execute)."""
        self.recorded += 1
        slow = seconds * 1e3 > self.slow_ms
        record = FlightRecord(
            sequence=self.recorded,
            query=query,
            variant=variant,
            wall_time=wall_time(),
            seconds=seconds,
            rows=rows,
            slow=slow,
            # Copied: multi-stage queries keep appending to the same stats.
            ops=tuple(stats.op_sequence),
            trace_root=stats.trace.root if stats.trace is not None else None,
            stats_snapshot={
                "compile_seconds": stats.compile_seconds,
                "peak_intermediate_bytes": stats.peak_intermediate_bytes,
                "defactor_count": stats.defactor_count,
                "plan_cache_hits": stats.plan_cache_hits,
                "plan_cache_misses": stats.plan_cache_misses,
                "flat_tuples": stats.flat_tuples,
                "ftree_slots": stats.ftree_slots,
                "route": stats.route,
                # Copied: the list on stats keeps growing on multi-stage use.
                "partition_times": list(stats.partition_times),
                "degrade_reasons": list(stats.degrade_reasons),
            },
            metrics_snapshot=dict(metrics_snapshot or {}),
        )
        self.recent.append(record)
        if slow:
            self.slow_recorded += 1
            self.slow.append(record)
        return record

    def dump(self, last: int | None = None) -> dict[str, Any]:
        """JSON-ready snapshot of both rings (newest last).

        *last* trims the ``recent`` ring to its newest entries; the slow
        ring is always dumped whole (it exists precisely so slow queries
        cannot be trimmed away).
        """
        recent = list(self.recent)
        if last is not None:
            recent = recent[-last:]
        return {
            "schema_version": FLIGHT_DUMP_SCHEMA_VERSION,
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "recorded": self.recorded,
            "slow_recorded": self.slow_recorded,
            "recent": [r.to_dict() for r in recent],
            "slow": [r.to_dict() for r in self.slow],
        }

    def clear(self) -> None:
        """Drop both rings (lifetime counters keep counting)."""
        self.recent.clear()
        self.slow.clear()


def render_flight_dump(dump: dict[str, Any], ops: bool = True) -> str:
    """Human-readable rendering of a :meth:`FlightRecorder.dump`."""
    lines = [
        f"flight recorder: {dump['recorded']} queries recorded "
        f"({dump['slow_recorded']} slow > {dump['slow_ms']:g} ms), "
        f"ring capacity {dump['capacity']}",
    ]
    for ring in ("recent", "slow"):
        records = dump[ring]
        lines.append(f"{ring} ({len(records)}):")
        for record in records:
            flag = " SLOW" if record["slow"] else ""
            traced = " [traced]" if record.get("span_tree") else ""
            stats = record.get("stats", {})
            route = stats.get("route") or ""
            route_note = f" [{route}]" if route else ""
            lines.append(
                f"  #{record['sequence']:<5} {record['variant']:<8} "
                f"{record['ms']:>9.3f} ms  rows={record['rows']}"
                f"{flag}{traced}{route_note}  {record['query']}"
            )
            reasons = stats.get("degrade_reasons") or []
            if reasons:
                lines.append(f"      degraded: {', '.join(reasons)}")
            if ops:
                for index, seconds, rows in stats.get("partition_times") or []:
                    lines.append(
                        f"      partition[{index}] {seconds * 1e3:>9.3f} ms"
                        f"  rows={rows}"
                    )
                for op in record["ops"]:
                    lines.append(
                        f"      {op['op']:<20} {op['seconds'] * 1e3:>9.3f} ms"
                        f"  out={op['out_bytes']}B"
                    )
    return "\n".join(lines)
