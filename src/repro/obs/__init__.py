"""Observability substrate: query tracing, engine metrics, exporters.

Three pieces (see DESIGN.md's "Observability architecture" section):

* :mod:`repro.obs.tracing` — per-query span trees (compile stages, one
  span per physical operator) behind ``EngineConfig.tracing`` and
  ``GES.explain_analyze()``;
* :mod:`repro.obs.metrics` — the process-wide registry of counters,
  gauges, and log-bucketed histograms (p50/p95/p99 without retained
  samples) that the engine, memory pool, and LDBC driver instrument into;
* :mod:`repro.obs.export` — Prometheus-text and JSON exporters plus the
  span-tree renderer used by the CLI ``profile`` and ``metrics`` commands.

:mod:`repro.obs.clock` is the single clock source (``time.perf_counter``)
every timing call site in the engine reads.
"""

from .clock import now, wall_time
from .events import (
    EVENTS,
    Event,
    EventLog,
    emit,
    get_event_log,
    render_events,
)
from .export import (
    metrics_json,
    prometheus_text,
    render_span_tree,
    span_tree_json,
)
from .flightrec import FlightRecord, FlightRecorder, render_flight_dump
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .top import render_top_frame, run_top
from .tracing import Span, SpanTracer

__all__ = [
    "now",
    "wall_time",
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "prometheus_text",
    "metrics_json",
    "render_span_tree",
    "span_tree_json",
    "FlightRecord",
    "FlightRecorder",
    "render_flight_dump",
    "Event",
    "EventLog",
    "EVENTS",
    "emit",
    "get_event_log",
    "render_events",
    "render_top_frame",
    "run_top",
]
