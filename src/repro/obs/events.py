"""Structured lifecycle event log: what *happened* to the service, in order.

Metrics answer "how much" and spans answer "where did this query spend its
time"; neither answers "what happened to the service" — a worker was
kill -9'd and respawned, a snapshot export was retired, admission started
rejecting, a chaos fault fired.  Those are discrete lifecycle *events*, and
this module records them as one process-wide, append-only sequence:

* every event gets a monotonically increasing ``seq`` under one lock, so
  the log is a total order even when emitters race across threads;
* events are held in a bounded ring (the flight-recorder discipline: recent
  history is always in process memory, no unbounded growth);
* an optional JSONL sink mirrors every event to disk as it is emitted —
  one JSON object per line, the standard structured-log interchange shape.

Determinism: an event's identity is ``(kind, attrs)``; ``seq`` ordering is
deterministic whenever the emitting code is (the seeded chaos campaign,
the deterministic stress scheduler).  Wall-clock timestamps ride along for
operators but are excluded from determinism comparisons — tests compare
``(kind, attrs)`` sequences, never timestamps or pids.

Worker processes inherit a (forked) copy of this log; :func:`EventLog.drain`
lets the pool ship a worker's events back with each task reply so the
coordinator can fold them into the service-wide sequence (tagged with the
worker's pid).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Callable, Iterable

from .clock import wall_time

#: Version stamp on every serialized event so downstream parsers can
#: detect drift (the flight-recorder convention).
EVENT_SCHEMA_VERSION = 1

#: Attribute keys that identify the emitting process/worker rather than
#: the event itself — excluded from determinism comparisons.  Segment
#: names (``snapshot``) carry a per-process random suffix, so they are
#: process identity too.
NONDETERMINISTIC_ATTRS = frozenset(
    {"pid", "old_pid", "new_pid", "worker_pid", "snapshot"}
)


class Event:
    """One lifecycle event: sequence number, wall time, kind, attributes."""

    __slots__ = ("seq", "wall", "kind", "attrs")

    def __init__(self, seq: int, wall: float, kind: str, attrs: dict[str, Any]) -> None:
        self.seq = seq
        self.wall = wall
        self.kind = kind
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "wall": self.wall, "kind": self.kind, **self.attrs}

    def identity(self) -> tuple[str, tuple[tuple[str, Any], ...]]:
        """The deterministic projection of this event: kind + attrs, with
        process-identity attributes (pids) stripped."""
        return (
            self.kind,
            tuple(
                sorted(
                    (k, v)
                    for k, v in self.attrs.items()
                    if k not in NONDETERMINISTIC_ATTRS
                )
            ),
        )

    def __repr__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return f"Event(#{self.seq} {self.kind}{' ' + attrs if attrs else ''})"


class EventLog:
    """Bounded, totally ordered ring of lifecycle events + optional sink."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._sink: Callable[[str], None] | None = None
        self._sink_path: str | None = None
        self.emitted = 0  # lifetime count, not bounded by the ring

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **attrs: Any) -> Event:
        """Append one event (thread-safe; cheap when no sink is attached)."""
        with self._lock:
            self._seq += 1
            self.emitted += 1
            event = Event(self._seq, wall_time(), kind, attrs)
            self._ring.append(event)
            sink = self._sink
        if sink is not None:
            try:
                sink(json.dumps(event.to_dict(), default=str))
            except Exception:
                pass  # a broken sink must never take the service down
        return event

    def absorb(self, payloads: Iterable[dict[str, Any]], **extra: Any) -> list[Event]:
        """Fold events shipped from another process into this log.

        Each payload is an :meth:`Event.to_dict` shape; the foreign ``seq``
        and ``wall`` are dropped (this log assigns its own total order) and
        *extra* attributes — typically ``worker_pid`` — tag the source.
        """
        folded = []
        for payload in payloads:
            attrs = {
                k: v for k, v in payload.items() if k not in ("seq", "wall", "kind")
            }
            attrs.update(extra)
            folded.append(self.emit(payload.get("kind", "unknown"), **attrs))
        return folded

    # -- reading ------------------------------------------------------------

    def tail(self, n: int | None = None) -> list[Event]:
        """The newest *n* events (all retained events when n is None)."""
        with self._lock:
            events = list(self._ring)
        if n is not None:
            events = events[-n:]
        return events

    def drain(self) -> list[dict[str, Any]]:
        """Remove and return every retained event as JSON-ready dicts.

        The worker-pool shipping primitive: a worker drains its log after
        each task and sends the payloads back with the reply.
        """
        with self._lock:
            events = list(self._ring)
            self._ring.clear()
        return [e.to_dict() for e in events]

    def dump(self) -> dict[str, Any]:
        """JSON-ready snapshot of the retained ring (newest last)."""
        return {
            "schema_version": EVENT_SCHEMA_VERSION,
            "capacity": self.capacity,
            "emitted": self.emitted,
            "events": [e.to_dict() for e in self.tail()],
        }

    def to_jsonl(self) -> str:
        """The retained ring as JSON Lines (one event per line)."""
        return "\n".join(
            json.dumps(e.to_dict(), default=str) for e in self.tail()
        )

    # -- lifecycle ----------------------------------------------------------

    def set_sink(self, path: str | None) -> None:
        """Mirror every future event to *path* as JSONL (None detaches).

        The file is opened in append mode and each line is flushed as it
        is written, so a crash loses at most the in-flight event.
        """
        with self._lock:
            if path is None:
                self._sink = None
                self._sink_path = None
                return
            handle = open(path, "a", encoding="utf-8")

            def write(line: str, _handle=handle) -> None:
                _handle.write(line + "\n")
                _handle.flush()

            self._sink = write
            self._sink_path = path

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    def clear(self) -> None:
        """Drop the ring and rewind the sequence (tests / worker boot).

        Rewinding ``seq`` is what makes seeded campaigns comparable run to
        run: same seed, same code path, same event sequence numbers.
        """
        with self._lock:
            self._ring.clear()
            self._seq = 0


#: The process-wide default event log every subsystem emits into.
EVENTS = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default :class:`EventLog`."""
    return EVENTS


def emit(kind: str, **attrs: Any) -> Event:
    """Emit one event into the process-wide log (module-level sugar)."""
    return EVENTS.emit(kind, **attrs)


def render_events(
    events: Iterable[Event | dict[str, Any]], indent: str = ""
) -> str:
    """Human-readable one-line-per-event rendering (CLI ``top``, dumps)."""
    lines = []
    for event in events:
        if isinstance(event, Event):
            event = event.to_dict()
        seq = event.get("seq", "?")
        kind = event.get("kind", "unknown")
        attrs = " ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("seq", "wall", "kind")
        )
        lines.append(f"{indent}#{seq:<6} {kind:<18} {attrs}".rstrip())
    return "\n".join(lines)
