"""`repro top` — a live text dashboard over the metrics registry.

One frame (:func:`render_top_frame`) is a pure function of the process
metrics registry and the structured event log, so the same renderer
serves three masters:

* the interactive ``repro top`` loop (redrawn every ``--interval``
  seconds while a workload runs);
* the one-shot ``repro top --once`` mode CI calls to assert the
  dashboard renders without error on a real pooled workload;
* tests, which render a frame into a string and grep it.

Sections: per-variant query service (throughput, in-flight gauge,
latency percentiles straight from the log-bucketed histograms), worker
pool health (tasks / respawns / crashes / timeouts per pool, per-worker
RSS and task counts), shared-memory snapshot lifecycle (live segment
bytes, exporter refcounts, exports vs retires), and the newest
structured events.  Everything shown is pulled from instruments other
subsystems already maintain — the dashboard adds no bookkeeping of its
own to any hot path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TextIO

from .events import EventLog, get_event_log, render_events
from .metrics import MetricsRegistry, get_registry

#: ANSI: clear screen + cursor home (the live loop's "redraw").
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(n: float) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.2f}GB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{int(n)}B"


def _fmt_ms(seconds: float) -> str:
    if seconds != seconds:  # NaN: histogram empty
        return "-"
    return f"{seconds * 1e3:.2f}ms"


def _series(
    registry: MetricsRegistry, name: str
) -> list[tuple[dict[str, str], Any]]:
    """(labels-dict, instrument) pairs of one family ([] when absent)."""
    family = registry.get(name)
    if family is None:
        return []
    return [(dict(labels), inst) for labels, inst in sorted(family.instruments.items())]


def _value(registry: MetricsRegistry, name: str, **labels: str) -> float | None:
    """One instrument's current value, or None when it does not exist."""
    for have, inst in _series(registry, name):
        if all(have.get(k) == v for k, v in labels.items()):
            return float(inst.value)
    return None


def _query_lines(registry: MetricsRegistry) -> list[str]:
    lines: list[str] = []
    for labels, counter in _series(registry, "ges_queries_total"):
        variant = labels.get("variant", "?")
        inflight = _value(registry, "ges_queries_inflight", variant=variant)
        line = f"  {variant:<8} served={int(counter.value)}"
        if inflight is not None:
            line += f" inflight={int(inflight)}"
        hist = None
        for hlabels, inst in _series(registry, "ges_query_seconds"):
            if hlabels.get("variant") == variant:
                hist = inst
                break
        if hist is not None and hist.count:
            line += (
                f"  p50={_fmt_ms(hist.percentile(50))}"
                f" p95={_fmt_ms(hist.percentile(95))}"
                f" p99={_fmt_ms(hist.percentile(99))}"
            )
        pooled = _value(registry, "ges_pooled_queries_total", variant=variant)
        fallbacks = _value(registry, "ges_pooled_fallbacks_total", variant=variant)
        if pooled is not None:
            line += f"  pooled={int(pooled)}"
            if fallbacks:
                line += f" fallbacks={int(fallbacks)}"
        lines.append(line)
    return lines or ["  (no queries served yet)"]


def _pool_lines(registry: MetricsRegistry) -> list[str]:
    lines: list[str] = []
    for labels, counter in _series(registry, "ges_pool_tasks_total"):
        pool = labels.get("pool", "?")
        respawns = _value(registry, "ges_pool_respawns_total", pool=pool) or 0
        crashes = _value(registry, "ges_pool_crashes_total", pool=pool) or 0
        timeouts = _value(registry, "ges_pool_timeouts_total", pool=pool) or 0
        lines.append(
            f"  pool[{pool}w] tasks={int(counter.value)}"
            f" respawns={int(respawns)} crashes={int(crashes)}"
            f" timeouts={int(timeouts)}"
        )
        for wlabels, gauge in _series(registry, "ges_worker_rss_bytes"):
            if wlabels.get("pool") != pool:
                continue
            wid = wlabels.get("wid", "?")
            rss = gauge.value
            tasks = _value(
                registry, "ges_worker_tasks", pool=pool, wid=wid
            ) or 0
            mark = "" if rss > 0 else " (gone)"
            lines.append(
                f"    w{wid}: rss={_fmt_bytes(rss)} tasks={int(tasks)}{mark}"
            )
    worker_tasks = _series(registry, "ges_worker_tasks_total")
    if worker_tasks:
        modes = "  ".join(
            f"{labels.get('mode', '?')}={int(inst.value)}"
            for labels, inst in worker_tasks
        )
        lines.append(f"  worker tasks by mode: {modes}")
    return lines or ["  (no worker pool active)"]


def _shm_lines(registry: MetricsRegistry) -> list[str]:
    nbytes = _value(registry, "ges_shm_segment_bytes")
    if nbytes is None:
        return ["  (no snapshot exporter active)"]
    segments = _value(registry, "ges_shm_segments") or 0
    refs = _value(registry, "ges_shm_exporter_refs") or 0
    exports = _value(registry, "ges_shm_exports_total") or 0
    retires = _value(registry, "ges_shm_retires_total") or 0
    return [
        f"  segments={int(segments)} ({_fmt_bytes(nbytes)})"
        f" inflight_refs={int(refs)}"
        f" exports={int(exports)} retires={int(retires)}"
    ]


def render_top_frame(
    registry: MetricsRegistry | None = None,
    events: EventLog | None = None,
    event_limit: int = 8,
) -> str:
    """One dashboard frame as text (pure read of registry + event log)."""
    registry = registry if registry is not None else get_registry()
    events = events if events is not None else get_event_log()
    lines = ["ges top — process observability"]
    lines.append("queries:")
    lines.extend(_query_lines(registry))
    lines.append("worker pool:")
    lines.extend(_pool_lines(registry))
    lines.append("shared-memory snapshots:")
    lines.extend(_shm_lines(registry))
    tail = events.tail(event_limit)
    lines.append(f"recent events ({len(tail)} of {events.emitted} emitted):")
    if tail:
        lines.append(render_events(tail, indent="  "))
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def run_top(
    work: Callable[[], None],
    interval_s: float = 0.5,
    out: TextIO | None = None,
    registry: MetricsRegistry | None = None,
    events: EventLog | None = None,
) -> None:
    """Redraw the dashboard every *interval_s* while *work* runs.

    *work* executes on a daemon thread; the loop clears the terminal and
    re-renders until it finishes, then prints one final frame.  An
    exception inside *work* propagates after the final frame.
    """
    import sys

    stream = out if out is not None else sys.stdout
    failure: list[BaseException] = []

    def runner() -> None:
        try:
            work()
        except BaseException as exc:  # surfaced after the final frame
            failure.append(exc)

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    while thread.is_alive():
        stream.write(_CLEAR + render_top_frame(registry, events) + "\n")
        stream.flush()
        thread.join(timeout=interval_s)
    stream.write(_CLEAR + render_top_frame(registry, events) + "\n")
    stream.flush()
    if failure:
        raise failure[0]
