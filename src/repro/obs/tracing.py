"""Per-query span tracing (the structured replacement for flat op timings).

One query produces one tree of timed spans::

    query
    ├─ compile            (parse / bind / optimize children, or a cache hit)
    └─ execute
       ├─ NodeByIdSeek    rows=1 out_bytes=80
       ├─ Expand          fblocks=2 out_bytes=4096
       └─ TopK            defactor=1 rows=10

The span tree is the full-fidelity record of where a query spent its time;
the flat aggregates on :class:`~repro.exec.base.ExecStats` (``op_times``,
``stage_times``, ``peak_intermediate_bytes``, …) are the derived view kept
for backward compatibility and for cheap always-on accounting.

Tracing is opt-in per query (``EngineConfig.tracing``, or
``GES.explain_analyze`` forcing it for one execution).  When it is off, no
:class:`Span` is ever allocated: the executors check a single
``trace is not None`` per operator, so the three paper variants' relative
benchmark numbers are unaffected (the overhead budget in DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Iterator

from .clock import now


class Span:
    """One timed region of a query with attributes and child spans."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float | None = None) -> None:
        self.name = name
        self.start = start if start is not None else now()
        self.end: float | None = None
        self.attrs: dict[str, Any] = {}
        self.children: list["Span"] = []

    @classmethod
    def completed(
        cls, name: str, start: float, end: float, **attrs: Any
    ) -> "Span":
        """A span whose interval is already known (synthesized stages)."""
        span = cls(name, start)
        span.end = end
        span.attrs.update(attrs)
        return span

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def finish(self, at: float | None = None) -> "Span":
        """Close the span (idempotent: the first close wins)."""
        if self.end is None:
            self.end = at if at is not None else now()
        return self

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Pre-order (depth, span) traversal of this subtree."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def span_count(self) -> int:
        """Total number of spans in this subtree (itself included)."""
        return sum(1 for _ in self.walk())

    def find(self, name: str) -> "Span | None":
        """First span named *name* in pre-order, or None."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of this subtree."""
        return {
            "name": self.name,
            "seconds": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class SpanTracer:
    """Stack-based recorder building one query's span tree.

    ``begin``/``end`` bracket nested regions; ``add`` attaches an
    already-measured child to the currently open span.  The tracer is
    deliberately forgiving: ``end`` on an empty stack is a no-op, and
    ``finish`` closes anything left open, so an exception mid-query still
    yields a well-formed (if truncated) tree.
    """

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "query") -> None:
        self.root = Span(name)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (the root when nothing else is open)."""
        return self._stack[-1] if self._stack else self.root

    def begin(self, name: str) -> Span:
        """Open a child span under the current one and make it current."""
        span = Span(name)
        self.current.children.append(span)
        self._stack.append(span)
        return span

    def end(self, **attrs: Any) -> Span | None:
        """Close the current span, folding *attrs* into it."""
        if len(self._stack) <= 1:
            return None  # never pop the root
        span = self._stack.pop()
        span.attrs.update(attrs)
        return span.finish()

    def add(self, name: str, start: float, end: float, **attrs: Any) -> Span:
        """Attach a completed child span to the current span."""
        span = Span.completed(name, start, end, **attrs)
        self.current.children.append(span)
        return span

    def touch(self) -> None:
        """Extend the root span's end to now (multi-stage queries)."""
        self.root.end = now()

    def finish(self) -> Span:
        """Close every open span and return the root."""
        while len(self._stack) > 1:
            self._stack.pop().finish()
        self.root.finish()
        return self.root

    def adopt(self, other: "SpanTracer") -> None:
        """Merge another tracer's children under this root (stats merge)."""
        self.root.children.extend(other.root.children)
        other_end = other.root.end
        if other_end is not None and (
            self.root.end is None or other_end > self.root.end
        ):
            self.root.end = other_end


# ---------------------------------------------------------------------------
# Cross-process span shipping
#
# perf_counter readings are process-local: a worker's absolute span times
# mean nothing to the coordinator.  The wire shape therefore carries each
# span's start/end as *offsets relative to the worker's task start*; the
# coordinator re-anchors the whole subtree at its own dispatch time, so
# relative structure (durations, ordering, nesting) survives exactly and
# only the anchor carries the (bounded) pipe-latency skew.


def span_to_wire(span: Span, base: float) -> dict[str, Any]:
    """*span* as a picklable payload with times relative to *base*."""
    end = span.end if span.end is not None else span.start
    return {
        "name": span.name,
        "t0": span.start - base,
        "t1": end - base,
        "attrs": dict(span.attrs),
        "children": [span_to_wire(child, base) for child in span.children],
    }


def span_from_wire(payload: dict[str, Any], anchor: float) -> Span:
    """Rebuild a shipped span subtree, re-anchored at coordinator time."""
    span = Span.completed(
        payload["name"],
        anchor + payload["t0"],
        anchor + payload["t1"],
        **payload["attrs"],
    )
    span.children = [
        span_from_wire(child, anchor) for child in payload["children"]
    ]
    return span
