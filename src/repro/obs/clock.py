"""The engine's single clock source.

Every timing measurement in the engine — operator timers, compile-stage
breakdowns, driver service times, benchmark sweeps — reads this one clock,
which is :func:`time.perf_counter`: monotonic, highest available
resolution, immune to wall-clock adjustments.  Mixing clock sources (e.g.
``time.time`` for some call sites) skews sub-millisecond operator timings
by the two clocks' drift; ``tests/test_observability.py`` guards that no
other clock is used for timing anywhere in ``src/`` or ``benchmarks/``.

``now`` is a direct reference to ``time.perf_counter`` (not a wrapper), so
routing through this module costs nothing on the hot path.

``wall_time`` is the one sanctioned wall-clock source, for *timestamps*
(flight-recorder records, trajectory entries) — never for durations.
"""

from __future__ import annotations

from time import perf_counter as now
from time import time as wall_time

__all__ = ["now", "wall_time"]
