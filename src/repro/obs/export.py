"""Export surfaces for the observability substrate.

Three renderers:

* :func:`prometheus_text` — the Prometheus text exposition format
  (HELP/TYPE lines, ``_bucket``/``_sum``/``_count`` series for histograms);
* :func:`metrics_json` — a JSON-ready dict with histogram summaries
  (count, mean, p50/p95/p99) instead of raw buckets;
* :func:`render_span_tree` — the human-readable per-operator profile behind
  ``GES.explain_analyze()`` and the CLI ``profile`` command.
"""

from __future__ import annotations

import math
from typing import Any

from .metrics import Histogram, MetricsRegistry
from .tracing import Span


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels in sorted(family.instruments):
            instrument = family.instruments[labels]
            if family.kind == "histogram":
                assert isinstance(instrument, Histogram)
                cumulative = 0
                for bound, cum in instrument.cumulative_buckets():
                    cumulative = cum
                    le = 'le="' + _num(bound) + '"'
                    lines.append(
                        f"{family.name}_bucket{_labels_text(labels, le)} {cum}"
                    )
                inf = max(cumulative, instrument.count)
                le_inf = _labels_text(labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{le_inf} {inf}")
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} {_num(instrument.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} {instrument.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} {_num(instrument.value)}"
                )
    return "\n".join(lines) + "\n"


def metrics_json(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-ready snapshot: histograms as percentile summaries."""
    out: dict[str, Any] = {}
    for family in registry.families():
        series = []
        for labels in sorted(family.instruments):
            instrument = family.instruments[labels]
            entry: dict[str, Any] = {"labels": dict(labels)}
            if family.kind == "histogram":
                entry.update(instrument.summary())
            else:
                entry["value"] = instrument.value
            series.append(entry)
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series,
        }
    return out


def _fmt_attr(key: str, value: Any) -> str:
    if key.endswith("bytes") and isinstance(value, (int, float)):
        return f"{key}={_fmt_bytes(int(value))}"
    if isinstance(value, float):
        return f"{key}={value:.4g}"
    return f"{key}={value}"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


def render_span_tree(root: Span) -> str:
    """Render a span tree with per-span timings and attributes.

    Durations are right-aligned in one column; attributes trail each span
    in ``k=v`` form, byte-ish attributes human-formatted.
    """
    rows: list[tuple[str, float, str]] = []

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            label = span.name
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            label = prefix + connector + span.name
            child_prefix = prefix + ("   " if is_last else "│  ")
        attrs = "  ".join(_fmt_attr(k, v) for k, v in span.attrs.items())
        rows.append((label, span.duration * 1e3, attrs))
        for i, child in enumerate(span.children):
            visit(child, child_prefix, i == len(span.children) - 1, False)

    visit(root, "", True, True)
    width = max(len(label) for label, _, _ in rows)
    lines = []
    for label, ms, attrs in rows:
        line = f"{label:<{width}}  {ms:>9.3f} ms"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
    return "\n".join(lines)
