"""Export surfaces for the observability substrate.

Four renderers:

* :func:`prometheus_text` — the Prometheus text exposition format
  (HELP/TYPE lines, ``_bucket``/``_sum``/``_count`` series for histograms,
  label values escaped per the format);
* :func:`metrics_json` — a JSON-ready dict with histogram summaries
  (count, mean, p50/p95/p99) instead of raw buckets;
* :func:`render_span_tree` — the human-readable per-operator profile behind
  ``GES.explain_analyze()`` and the CLI ``profile`` command;
* :func:`span_tree_json` — the machine-readable span-tree serialization
  shared by ``profile --format json`` and the flight recorder.
"""

from __future__ import annotations

import math
from typing import Any

from .metrics import Histogram, MetricsRegistry
from .tracing import Span


def _escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus text exposition format:
    backslash, double quote, and line feed (in that order — the backslash
    pass must not re-escape the escapes it just produced)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels in sorted(family.instruments):
            instrument = family.instruments[labels]
            if family.kind == "histogram":
                assert isinstance(instrument, Histogram)
                cumulative = 0
                for bound, cum in instrument.cumulative_buckets():
                    cumulative = cum
                    if not math.isfinite(bound):
                        continue  # folded into the trailing +Inf bucket below
                    le = 'le="' + _num(bound) + '"'
                    lines.append(
                        f"{family.name}_bucket{_labels_text(labels, le)} {cum}"
                    )
                inf = max(cumulative, instrument.count)
                le_inf = _labels_text(labels, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{le_inf} {inf}")
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} {_num(instrument.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} {instrument.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} {_num(instrument.value)}"
                )
    return "\n".join(lines) + "\n"


def metrics_json(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-ready snapshot: histograms as percentile summaries."""
    out: dict[str, Any] = {}
    for family in registry.families():
        series = []
        for labels in sorted(family.instruments):
            instrument = family.instruments[labels]
            entry: dict[str, Any] = {"labels": dict(labels)}
            if family.kind == "histogram":
                entry.update(instrument.summary())
            else:
                entry["value"] = instrument.value
            series.append(entry)
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series,
        }
    return out


#: Version stamp on every serialized span tree (flight-recorder dumps,
#: ``profile --format json``) so downstream parsers can detect drift.
SPAN_TREE_SCHEMA_VERSION = 1


def span_tree_json(root: Span) -> dict[str, Any]:
    """The one machine-readable span-tree serialization.

    ``repro profile --format json`` and the flight recorder both emit
    this shape, so a human profiling interactively and a tool digging
    through a flight-recorder dump parse identical trees:
    ``{name, seconds, attrs, children: [...]}`` under a versioned wrapper.
    """
    return {
        "schema_version": SPAN_TREE_SCHEMA_VERSION,
        "root": root.to_dict(),
    }


def _fmt_attr(key: str, value: Any) -> str:
    if key.endswith("bytes") and isinstance(value, (int, float)):
        return f"{key}={_fmt_bytes(int(value))}"
    if isinstance(value, float):
        return f"{key}={value:.4g}"
    return f"{key}={value}"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


def render_span_tree(root: Span) -> str:
    """Render a span tree with per-span timings and attributes.

    Durations are right-aligned in one column; attributes trail each span
    in ``k=v`` form, byte-ish attributes human-formatted.
    """
    rows: list[tuple[str, float, str]] = []

    def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            label = span.name
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            label = prefix + connector + span.name
            child_prefix = prefix + ("   " if is_last else "│  ")
        attrs = "  ".join(_fmt_attr(k, v) for k, v in span.attrs.items())
        rows.append((label, span.duration * 1e3, attrs))
        for i, child in enumerate(span.children):
            visit(child, child_prefix, i == len(span.children) - 1, False)

    visit(root, "", True, True)
    width = max(len(label) for label, _, _ in rows)
    lines = []
    for label, ms, attrs in rows:
        line = f"{label:<{width}}  {ms:>9.3f} ms"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
    return "\n".join(lines)
