"""Exception hierarchy for the GES reproduction.

Every error raised by the library derives from :class:`GesError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class GesError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(GesError):
    """A label, property, or attribute was used inconsistently with the catalog."""


class StorageError(GesError):
    """The storage layer was asked to do something impossible (bad id, bad key)."""


class WalCorrupt(StorageError):
    """A write-ahead-log record failed its integrity check (torn tail,
    checksum mismatch, bad header).  Recovery stops cleanly at the first
    corrupt record; ``repro fsck`` names the torn byte offset."""


class PlanError(GesError):
    """A logical plan is malformed or references unknown attributes."""


class ExpressionError(GesError):
    """An expression could not be compiled or evaluated."""


class ExecutionError(GesError):
    """A physical operator failed during evaluation."""


class FactorizationError(GesError):
    """An f-Tree invariant (disjoint schema partition, index-vector bounds) was violated."""


class TransactionError(GesError):
    """Base class for concurrency-control failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock avoidance or explicit rollback)."""


class LockTimeout(TransactionError):
    """A lock could not be acquired within the configured wait budget."""


class QueryTimeout(GesError):
    """The query exceeded its deadline and was cooperatively cancelled."""


class AdmissionRejected(GesError):
    """The service refused the query: concurrency/memory budget exhausted."""


class TransientError(GesError):
    """A retryable transient failure (injected fault or recoverable glitch)."""


class WorkerError(GesError):
    """A pooled worker process failed to execute its task.

    Raised coordinator-side when the failure has no better typed mapping
    (library errors raised inside the worker are re-raised as their own
    type; this class covers protocol/infrastructure failures).
    """


class WorkerCrash(WorkerError):
    """A pooled worker process died mid-task (signal, OOM-kill, hard exit)."""


class CypherSyntaxError(GesError):
    """The Cypher frontend rejected the query text."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CypherUnsupportedError(GesError):
    """The query is valid Cypher but outside the supported subset."""


class DriverError(GesError):
    """The LDBC benchmark driver hit an unrecoverable condition."""
