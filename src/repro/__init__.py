"""Reproduction of *GES: High-Performance Graph Processing Engine and
Service in Huawei* (SIGMOD-Companion 2025).

Public API highlights:

* :class:`GES` / :class:`GraphEngineService` — the engine facade;
* :class:`EngineConfig` — the three paper variants (GES, GES_f, GES_f*);
* :mod:`repro.core` — the factorized primitives (f-Block, f-Tree);
* :mod:`repro.ldbc` — the LDBC SNB Interactive substrate (datagen, the 29
  workload queries, and the benchmark driver).
"""

from .engine import ALL_VARIANTS, EngineConfig, GES, GraphEngineService, open_all_variants
from .errors import GesError
from .exec.base import QueryResult
from .storage import (
    Direction,
    EdgeLabelDef,
    GraphSchema,
    GraphStore,
    PropertyDef,
    VertexLabelDef,
)
from .types import DataType

__version__ = "0.1.0"

__all__ = [
    "ALL_VARIANTS",
    "DataType",
    "Direction",
    "EdgeLabelDef",
    "EngineConfig",
    "GES",
    "GesError",
    "GraphEngineService",
    "GraphSchema",
    "GraphStore",
    "PropertyDef",
    "QueryResult",
    "VertexLabelDef",
    "open_all_variants",
    "__version__",
]
