"""The Factorized Block (f-Block, paper §4.2).

An f-Block is a cache-friendly, column-oriented structure storing the
*Union* of tuples over its own schema: a set of equal-cardinality columns.
A relation is decomposed into the Cartesian product of several f-Blocks,
with the product relationship managed by the f-Tree that owns them.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..errors import FactorizationError
from .column import Column, ColumnLike


class FBlock:
    """A set of named, equal-cardinality columns (the Union of tuples)."""

    __slots__ = ("_columns", "_order", "_length")

    def __init__(self, columns: Iterable[ColumnLike] = ()) -> None:
        self._columns: dict[str, ColumnLike] = {}
        self._order: list[str] = []
        self._length: int | None = None
        for column in columns:
            self.add_column(column)

    # -- schema ----------------------------------------------------------------

    @property
    def schema(self) -> list[str]:
        """Attribute names, in insertion order (S(F_B) in the paper)."""
        return list(self._order)

    def has_column(self, name: str) -> bool:
        """True when the block carries a column named *name*."""
        return name in self._columns

    def column(self, name: str) -> ColumnLike:
        """The column named *name* (FactorizationError if absent)."""
        try:
            return self._columns[name]
        except KeyError:
            raise FactorizationError(f"f-Block has no column {name!r}") from None

    def __len__(self) -> int:
        """Cardinality N_{F_B} (0 for a block with no columns yet)."""
        return self._length if self._length is not None else 0

    @property
    def num_columns(self) -> int:
        """Number of columns (schema width)."""
        return len(self._order)

    # -- mutation ----------------------------------------------------------------

    def add_column(self, column: ColumnLike) -> None:
        """Append a column; enforces the cardinality restriction."""
        if column.name in self._columns:
            raise FactorizationError(f"duplicate column {column.name!r} in f-Block")
        if self._length is not None and len(column) != self._length:
            raise FactorizationError(
                f"column {column.name!r} has {len(column)} rows, block has {self._length}"
            )
        self._columns[column.name] = column
        self._order.append(column.name)
        if self._length is None:
            self._length = len(column)

    def replace_column(self, column: ColumnLike) -> None:
        """Swap a column in place (used when a lazy column is materialized)."""
        if column.name not in self._columns:
            raise FactorizationError(f"f-Block has no column {column.name!r} to replace")
        if self._length is not None and len(column) != self._length:
            raise FactorizationError("replacement column cardinality mismatch")
        self._columns[column.name] = column

    # -- relation representation ---------------------------------------------------

    def tuple_at(self, i: int) -> tuple[Any, ...]:
        """The tuple F_B^[i] over the block schema."""
        if not 0 <= i < len(self):
            raise FactorizationError(f"index {i} out of range for f-Block of {len(self)}")
        out = []
        for name in self._order:
            column = self._columns[name]
            getter = getattr(column, "get", None)
            if getter is not None:
                out.append(getter(i))
            else:
                value = column.values()[i]
                out.append(value.item() if isinstance(value, np.generic) else value)
        return tuple(out)

    def tuples(self, start: int = 0, stop: int | None = None) -> list[tuple[Any, ...]]:
        """F_B^[start, stop) — the union of tuples in the index range."""
        stop = len(self) if stop is None else stop
        return [self.tuple_at(i) for i in range(start, stop)]

    # -- accounting -----------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Current footprint of all columns (lazy columns count refs only)."""
        return sum(c.nbytes for c in self._columns.values())

    def __repr__(self) -> str:
        return f"FBlock(schema={self._order}, n={len(self)})"

    # -- construction helpers ---------------------------------------------------------

    @classmethod
    def from_arrays(cls, **named_arrays: np.ndarray | list) -> "FBlock":
        """Build a block from keyword arrays, inferring dtypes (tests)."""
        block = cls()
        for name, values in named_arrays.items():
            block.add_column(Column.from_values(name, list(values)))
        return block
