"""De-factoring: turning an f-Tree back into a flat block (paper §4.2/4.3).

This is the "ultimate solution" the executor falls back to when an operator
needs global tuple state (multi-node Order-By / Group-By / Distinct).  The
per-tuple generator in :meth:`repro.core.ftree.FTree.iter_tuples` already
satisfies Lemma 4.4; this module adds the *bulk* path used in practice: a
fully vectorized materialization that processes one f-Tree edge at a time
with NumPy prefix-sum/repeat kernels, so de-factoring cost is proportional
to output size rather than to Python-level tuple count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .column import column_validity
from .flatblock import FlatBlock
from .ftree import FTree, FTreeNode


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.zeros(len(values), dtype=np.int64)
    if len(values) > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


def _subtree_counts(tree: FTree) -> dict[int, np.ndarray]:
    """Per-node, per-entry count of valid subtree tuples (|R_u^i|)."""
    counts: dict[int, np.ndarray] = {}

    def compute(node: FTreeNode) -> np.ndarray:
        result = node.selection.astype(np.int64)
        for child, index_vector in node.children:
            child_counts = compute(child)
            prefix = np.zeros(len(child_counts) + 1, dtype=np.int64)
            np.cumsum(child_counts, out=prefix[1:])
            result *= prefix[index_vector.ends] - prefix[index_vector.starts]
        counts[id(node)] = result
        return result

    compute(tree.root)
    return counts


def materialize_rows(tree: FTree) -> dict[int, np.ndarray]:
    """Row indices into every node's block, one entry per output tuple.

    The returned mapping is keyed by ``id(node)``; all arrays share the same
    length ``tree.num_tuples()``.  Tuples are ordered ascending by root
    entry, then by each child's block row — the order enumeration would
    produce.
    """
    counts = _subtree_counts(tree)

    def recurse(node: FTreeNode) -> dict[int, np.ndarray]:
        node_counts = counts[id(node)]
        own = np.flatnonzero(node_counts > 0).astype(np.int64)
        tables: dict[int, np.ndarray] = {id(node): own}
        for child, index_vector in node.children:
            child_tables = recurse(child)
            child_counts = counts[id(child)]
            # Tuple-space offset of each child block row.
            prefix = np.zeros(len(child_counts) + 1, dtype=np.int64)
            np.cumsum(child_counts, out=prefix[1:])

            entries = tables[id(node)]
            span_starts = prefix[index_vector.starts[entries]]
            span_counts = prefix[index_vector.ends[entries]] - span_starts
            total = int(span_counts.sum())
            replicate = np.repeat(np.arange(len(entries), dtype=np.int64), span_counts)
            within = (
                np.arange(total, dtype=np.int64)
                - np.repeat(_exclusive_cumsum(span_counts), span_counts)
            )
            child_tuple_idx = np.repeat(span_starts, span_counts) + within

            for key in tables:
                tables[key] = tables[key][replicate]
            for key, rows in child_tables.items():
                tables[key] = rows[child_tuple_idx]
        return tables

    return recurse(tree.root)


def slot_count(tree: FTree) -> int:
    """Total f-Tree entries ("slots") across every node's block.

    The denominator of the factorization compression ratio
    ``flat tuple count ÷ slot count`` (FDB's factorized-vs-flat signal):
    a de-factored relation stores one value per tuple per attribute, the
    f-Tree stores one per slot — the quotient is how much the
    factorization compressed the intermediate result.
    """
    return sum(len(node.block) for node in tree.nodes())


def materialize(tree: FTree, attrs: Sequence[str] | None = None) -> FlatBlock:
    """De-factor *tree* into a flat block over *attrs* (default: full schema)."""
    attrs = list(attrs) if attrs is not None else tree.schema
    rows = materialize_rows(tree)
    block = FlatBlock()
    for attr in attrs:
        node = tree.node_of(attr)
        column = node.block.column(attr)
        node_rows = rows[id(node)]
        validity = column_validity(column)
        block.add_array(
            attr,
            column.dtype,
            column.values()[node_rows],
            None if validity is None else validity[node_rows],
        )
    return block
