"""Pointer-based-join columns (paper §5).

Instead of copying neighbor ids into an f-Block column, an Expand can store
only ``(pointer, length)`` references into the storage layer's ``adjArray``.
:class:`LazyNeighborColumn` is that column, held in vectorized form: one
shared base array plus per-parent-entry ``starts`` / ``lengths`` vectors.
Until something forces materialization (de-factoring, property projection,
a further expansion) it costs 16 bytes per parent entry regardless of
fan-out, and ``values()`` gathers the ids with one NumPy pass when — and
only when — they are actually needed.
"""

from __future__ import annotations

import numpy as np

from ..types import DataType

#: Accounting size of one (pointer, length) reference, per the paper.
_REF_BYTES = 16


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.zeros(len(values), dtype=np.int64)
    if len(values) > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


class LazyNeighborColumn:
    """A column of vertex row-ids defined by adjacency slices.

    Reference ``i`` contributes ``base[starts[i] : starts[i] + lengths[i]]``;
    the column is the concatenation of all references.  Materialization
    happens at most once and is cached.
    """

    __slots__ = ("name", "dtype", "_base", "_starts", "_lengths", "_offsets", "_materialized")

    def __init__(self, name: str, base: np.ndarray, starts: np.ndarray, lengths: np.ndarray) -> None:
        if len(starts) != len(lengths):
            raise ValueError("starts/lengths must align")
        self.name = name
        self.dtype = DataType.INT64
        self._base = base
        self._starts = np.asarray(starts, dtype=np.int64)
        self._lengths = np.asarray(lengths, dtype=np.int64)
        # Offset of each reference inside the logical column.
        self._offsets = _exclusive_cumsum(self._lengths)
        self._materialized: np.ndarray | None = None

    @classmethod
    def empty(cls, name: str) -> "LazyNeighborColumn":
        zero = np.empty(0, dtype=np.int64)
        return cls(name, zero, zero, zero)

    def __len__(self) -> int:
        return int(self._lengths.sum())

    @property
    def num_references(self) -> int:
        return len(self._starts)

    @property
    def reference_lengths(self) -> np.ndarray:
        """Per-parent-entry neighbor counts (the Expand's index vector)."""
        return self._lengths

    @property
    def is_materialized(self) -> bool:
        return self._materialized is not None

    @property
    def nbytes(self) -> int:
        if self._materialized is not None:
            return int(self._materialized.nbytes)
        return _REF_BYTES * self.num_references

    def values(self) -> np.ndarray:
        """Gather the referenced ids (lazily, cached, one NumPy pass)."""
        if self._materialized is None:
            total = len(self)
            if total == 0:
                self._materialized = np.empty(0, dtype=np.int64)
            else:
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    self._offsets, self._lengths
                )
                indices = np.repeat(self._starts, self._lengths) + within
                self._materialized = self._base[indices]
        return self._materialized

    def get(self, i: int) -> int:
        """Random access without full materialization."""
        if self._materialized is not None:
            return int(self._materialized[i])
        ref = int(np.searchsorted(self._offsets, i, side="right")) - 1
        return int(self._base[self._starts[ref] + (i - self._offsets[ref])])

    def __repr__(self) -> str:
        state = "materialized" if self.is_materialized else f"{self.num_references} refs"
        return f"LazyNeighborColumn({self.name!r}, n={len(self)}, {state})"
