"""Factorized primitives: f-Block, f-Tree, flat block, de-factoring, and
pointer-based lazy neighbor columns (paper §4.2, §5)."""

from .column import Column, ColumnLike, concat_columns
from .defactor import materialize, materialize_rows
from .fblock import FBlock
from .flatblock import FlatBlock
from .ftree import FTree, FTreeNode, IndexVector, singleton_tree
from .lazy import LazyNeighborColumn

__all__ = [
    "Column",
    "ColumnLike",
    "FBlock",
    "FlatBlock",
    "FTree",
    "FTreeNode",
    "IndexVector",
    "LazyNeighborColumn",
    "concat_columns",
    "materialize",
    "materialize_rows",
    "singleton_tree",
]
