"""The flat block: a fully materialized table of tuples (paper §4.2).

This is the "ultimate solution" representation: every tuple exists
explicitly, with all the redundancy that implies.  The GES baseline variant
pipes flat blocks between all operators; the factorized variants de-factor
into one only when an operator needs global tuple state (multi-node
Order-By / Group-By / Distinct).

Columns are NumPy arrays so block-based operators stay vectorized, but the
block is semantically row-oriented: ``nbytes`` charges the full materialized
size and :meth:`rows` iterates tuples.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ExecutionError
from ..types import DataType
from .column import Column, ColumnLike, string_payload_bytes


class FlatBlock:
    """A materialized relation: named, typed, equal-length arrays."""

    __slots__ = ("_data", "_dtypes", "_order", "_length", "_payloads")

    #: Accounting cost of one value slot in a row-oriented tuple (value +
    #: type/offset overhead), per the paper's "sets of tuples" framing.
    ROW_VALUE_BYTES = 16

    def __init__(self) -> None:
        self._data: dict[str, np.ndarray] = {}
        self._dtypes: dict[str, DataType] = {}
        self._order: list[str] = []
        self._length = 0
        self._payloads: dict[str, int] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_columns(cls, columns: Iterable[ColumnLike]) -> "FlatBlock":
        block = cls()
        for column in columns:
            block.add_array(column.name, column.dtype, column.values())
        return block

    @classmethod
    def from_dict(cls, data: Mapping[str, tuple[DataType, np.ndarray | list]]) -> "FlatBlock":
        block = cls()
        for name, (dtype, values) in data.items():
            block.add_array(name, dtype, np.asarray(values, dtype=dtype.numpy_dtype))
        return block

    def add_array(self, name: str, dtype: DataType, values: np.ndarray) -> None:
        """Append a column from a raw array (enforces equal lengths)."""
        if name in self._data:
            raise ExecutionError(f"duplicate column {name!r} in flat block")
        if self._order and len(values) != self._length:
            raise ExecutionError(
                f"column {name!r} has {len(values)} rows, block has {self._length}"
            )
        self._data[name] = values
        self._dtypes[name] = dtype
        self._order.append(name)
        self._length = len(values)
        if dtype is DataType.STRING:
            self._payloads[name] = string_payload_bytes(values)

    def add_column(self, column: ColumnLike) -> None:
        """Append a query-time column (materializing it if lazy)."""
        self.add_array(column.name, column.dtype, column.values())

    # -- schema & access ------------------------------------------------------------

    @property
    def schema(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._order)

    def has_column(self, name: str) -> bool:
        """True when the block carries a column named *name*."""
        return name in self._data

    def dtype(self, name: str) -> DataType:
        """Logical type of column *name*."""
        try:
            return self._dtypes[name]
        except KeyError:
            raise ExecutionError(f"flat block has no column {name!r}") from None

    def array(self, name: str) -> np.ndarray:
        """The raw backing array of column *name*."""
        try:
            return self._data[name]
        except KeyError:
            raise ExecutionError(f"flat block has no column {name!r}") from None

    def column(self, name: str) -> Column:
        """Column *name* wrapped as an immutable query-time column."""
        return Column(name, self.dtype(name), self.array(name))

    def __len__(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Row-oriented tuple footprint — the flat representation's cost.

        A flat block *is* a set of materialized tuples (paper §1/§3): each
        of the ``len × num_columns`` value slots costs
        :data:`ROW_VALUE_BYTES`, plus the string payloads.  The compact
        columnar accounting lives on f-Blocks; comparing the two is exactly
        the paper's Table 2 comparison.
        """
        slots = self._length * len(self._order) * self.ROW_VALUE_BYTES
        return slots + sum(self._payloads.values())

    @property
    def columnar_nbytes(self) -> int:
        """Raw columnar array bytes (for storage-level introspection)."""
        return sum(int(a.nbytes) for a in self._data.values()) + sum(
            self._payloads.values()
        )

    def rows(self, names: Sequence[str] | None = None) -> Iterator[tuple[Any, ...]]:
        """Iterate tuples (over *names* or the full schema)."""
        return iter(self.to_pylist(names))

    def to_pylist(self, names: Sequence[str] | None = None) -> list[tuple[Any, ...]]:
        """All tuples as native Python values (one vectorized pass)."""
        names = list(names) if names is not None else self._order
        if self._length == 0:
            return []
        if not names:
            return [()] * self._length
        columns = [self._data[n].tolist() for n in names]
        return list(zip(*columns))

    # -- relational operations (block-based execution) ------------------------------

    def take(self, indices: np.ndarray) -> "FlatBlock":
        """Row subset / reorder by integer indices."""
        out = FlatBlock()
        for name in self._order:
            out.add_array(name, self._dtypes[name], self._data[name][indices])
        return out

    def filter(self, mask: np.ndarray) -> "FlatBlock":
        """Rows where *mask* is True (a fresh materialized block)."""
        if len(mask) != self._length:
            raise ExecutionError("filter mask length mismatch")
        return self.take(np.flatnonzero(mask))

    def select(self, names: Sequence[str]) -> "FlatBlock":
        """Projection onto a subset of columns (optionally renaming none)."""
        out = FlatBlock()
        for name in names:
            out.add_array(name, self.dtype(name), self.array(name))
        return out

    def rename(self, mapping: Mapping[str, str]) -> "FlatBlock":
        """Rename columns per *mapping* (others keep their names)."""
        out = FlatBlock()
        for name in self._order:
            new_name = mapping.get(name, name)
            out.add_array(new_name, self._dtypes[name], self._data[name])
        return out

    def sort(self, keys: Sequence[tuple[str, bool]]) -> "FlatBlock":
        """Stable multi-key sort; each key is (column, ascending)."""
        if not keys or self._length <= 1:
            return self
        # np.lexsort sorts by the *last* key array first, so feed keys in
        # reverse significance order.
        arrays = [
            sort_key_array(self._data[name], self._dtypes[name], ascending)
            for name, ascending in reversed(list(keys))
        ]
        order = np.lexsort(arrays)
        return self.take(order)

    def limit(self, n: int) -> "FlatBlock":
        """The first *n* rows (the whole block when n >= len)."""
        if n >= self._length:
            return self
        return self.take(np.arange(n))

    def distinct(self, names: Sequence[str] | None = None) -> "FlatBlock":
        """Distinct rows over *names* (keeping first occurrence, full rows)."""
        names = list(names) if names is not None else self._order
        seen: set[tuple[Any, ...]] = set()
        keep: list[int] = []
        for i, key in enumerate(self.to_pylist(names)):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(np.asarray(keep, dtype=np.int64))

    def concat(self, other: "FlatBlock") -> "FlatBlock":
        """Rows of *self* followed by rows of *other* (same schema)."""
        if self._order != other._order:
            raise ExecutionError("concat requires identical schemas")
        out = FlatBlock()
        for name in self._order:
            out.add_array(
                name,
                self._dtypes[name],
                np.concatenate([self._data[name], other._data[name]]),
            )
        return out

    def group_indices(self, names: Sequence[str]) -> dict[tuple[Any, ...], np.ndarray]:
        """Hash grouping: key tuple -> row indices (the flat Group-By core)."""
        groups: dict[tuple[Any, ...], list[int]] = {}
        for i, key in enumerate(self.to_pylist(names)):
            groups.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    @classmethod
    def empty_like(cls, schema: Sequence[tuple[str, DataType]]) -> "FlatBlock":
        block = cls()
        for name, dtype in schema:
            block.add_array(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))
        return block

    def __repr__(self) -> str:
        return f"FlatBlock(schema={self._order}, n={self._length})"


def sort_key_array(values: np.ndarray, dtype: DataType, ascending: bool) -> np.ndarray:
    """A lexsort-ready key array for one sort key.

    Numeric keys sort natively (negated for descending; the int64 NULL
    sentinel wraps onto itself under negation, so NULLs stay at the
    extreme).  Strings — which lexsort cannot compare against None — are
    replaced by dense ranks.
    """
    if dtype is DataType.STRING:
        cleaned = np.asarray(["" if v is None else v for v in values], dtype=object)
        _, codes = np.unique(cleaned, return_inverse=True)
        return codes if ascending else -codes
    if ascending:
        return values
    with np.errstate(over="ignore"):
        return -values
