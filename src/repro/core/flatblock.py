"""The flat block: a fully materialized table of tuples (paper §4.2).

This is the "ultimate solution" representation: every tuple exists
explicitly, with all the redundancy that implies.  The GES baseline variant
pipes flat blocks between all operators; the factorized variants de-factor
into one only when an operator needs global tuple state (multi-node
Order-By / Group-By / Distinct).

Columns are NumPy arrays so block-based operators stay vectorized, but the
block is semantically row-oriented: ``nbytes`` charges the full materialized
size and :meth:`rows` iterates tuples.

Two storage-level refinements ride on the representation (after Gupta,
Mhedhbi & Salihoglu's columnar design):

* every column may carry a **validity mask** — NULL is a bit, never a
  sentinel value in the data array;
* :meth:`filter` / :meth:`take` produce **selection vectors** instead of
  copying columns: the child block shares its parent's arrays plus an index
  vector, and individual columns materialize lazily on first access.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ExecutionError
from ..types import DataType
from .column import Column, ColumnLike, column_validity, string_payload_bytes


class FlatBlock:
    """A materialized relation: named, typed, equal-length arrays."""

    __slots__ = (
        "_data",
        "_validity",
        "_dtypes",
        "_order",
        "_length",
        "_payloads",
        "_sel",
        "_cache",
        "_vcache",
    )

    #: Accounting cost of one value slot in a row-oriented tuple (value +
    #: type/offset overhead), per the paper's "sets of tuples" framing.
    ROW_VALUE_BYTES = 16

    def __init__(self) -> None:
        self._data: dict[str, np.ndarray] = {}
        self._validity: dict[str, np.ndarray] = {}  # only columns with NULLs
        self._dtypes: dict[str, DataType] = {}
        self._order: list[str] = []
        self._length = 0
        self._payloads: dict[str, int] = {}
        # Selection vector: indices into the backing arrays, or None when
        # the backing arrays *are* the block contents.  Gathered columns are
        # cached so repeated access materializes once.
        self._sel: np.ndarray | None = None
        self._cache: dict[str, np.ndarray] = {}
        self._vcache: dict[str, np.ndarray | None] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_columns(cls, columns: Iterable[ColumnLike]) -> "FlatBlock":
        block = cls()
        for column in columns:
            block.add_array(
                column.name, column.dtype, column.values(), column_validity(column)
            )
        return block

    @classmethod
    def from_dict(cls, data: Mapping[str, tuple[DataType, np.ndarray | list]]) -> "FlatBlock":
        block = cls()
        for name, (dtype, values) in data.items():
            block.add_array(name, dtype, np.asarray(values, dtype=dtype.numpy_dtype))
        return block

    def add_array(
        self,
        name: str,
        dtype: DataType,
        values: np.ndarray,
        validity: np.ndarray | None = None,
    ) -> None:
        """Append a column from a raw array (enforces equal lengths).

        *validity* is an optional bool mask (True = value present); an
        all-True mask is normalized away.
        """
        if name in self._data:
            raise ExecutionError(f"duplicate column {name!r} in flat block")
        if self._order and len(values) != self._length:
            raise ExecutionError(
                f"column {name!r} has {len(values)} rows, block has {self._length}"
            )
        if self._sel is not None:
            self._densify()
        self._data[name] = values
        if validity is not None and not bool(np.asarray(validity).all()):
            self._validity[name] = np.asarray(validity, dtype=bool)
        self._dtypes[name] = dtype
        self._order.append(name)
        self._length = len(values)

    def add_column(self, column: ColumnLike) -> None:
        """Append a query-time column (materializing it if lazy)."""
        self.add_array(
            column.name, column.dtype, column.values(), column_validity(column)
        )

    def _densify(self) -> None:
        """Resolve the selection vector into fresh backing arrays."""
        sel = self._sel
        if sel is None:
            return
        for name in self._order:
            self._data[name] = self._gather(name)
            valid = self._gather_validity(name)
            if valid is not None:
                self._validity[name] = valid
            else:
                self._validity.pop(name, None)
        self._sel = None
        self._cache = {}
        self._vcache = {}
        self._payloads = {}

    # -- schema & access ------------------------------------------------------------

    @property
    def schema(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._order)

    def has_column(self, name: str) -> bool:
        """True when the block carries a column named *name*."""
        return name in self._data

    def dtype(self, name: str) -> DataType:
        """Logical type of column *name*."""
        try:
            return self._dtypes[name]
        except KeyError:
            raise ExecutionError(f"flat block has no column {name!r}") from None

    def _gather(self, name: str) -> np.ndarray:
        cached = self._cache.get(name)
        if cached is None:
            cached = self._data[name][self._sel]
            self._cache[name] = cached
        return cached

    def _gather_validity(self, name: str) -> np.ndarray | None:
        if name in self._vcache:
            return self._vcache[name]
        base = self._validity.get(name)
        if base is None:
            gathered: np.ndarray | None = None
        else:
            gathered = base[self._sel]
            if gathered.all():
                gathered = None
        self._vcache[name] = gathered
        return gathered

    def array(self, name: str) -> np.ndarray:
        """The column's values (materializing through the selection vector)."""
        if name not in self._data:
            raise ExecutionError(f"flat block has no column {name!r}")
        if self._sel is None:
            return self._data[name]
        return self._gather(name)

    def validity(self, name: str) -> np.ndarray | None:
        """The column's validity mask; None when every row is valid."""
        if name not in self._data:
            raise ExecutionError(f"flat block has no column {name!r}")
        if self._sel is None:
            return self._validity.get(name)
        return self._gather_validity(name)

    def column(self, name: str) -> Column:
        """Column *name* wrapped as an immutable query-time column."""
        return Column(name, self.dtype(name), self.array(name), self.validity(name))

    def __len__(self) -> int:
        return self._length

    @property
    def is_selected(self) -> bool:
        """True while this block is a selection view over parent arrays."""
        return self._sel is not None

    @property
    def nbytes(self) -> int:
        """Row-oriented tuple footprint — the flat representation's cost.

        A flat block *is* a set of materialized tuples (paper §1/§3): each
        of the ``len × num_columns`` value slots costs
        :data:`ROW_VALUE_BYTES`, plus the string payloads.  The compact
        columnar accounting lives on f-Blocks; comparing the two is exactly
        the paper's Table 2 comparison.
        """
        slots = self._length * len(self._order) * self.ROW_VALUE_BYTES
        payloads = 0
        for name, dtype in self._dtypes.items():
            if dtype is not DataType.STRING:
                continue
            cached = self._payloads.get(name)
            if cached is None:
                cached = string_payload_bytes(self.array(name))
                self._payloads[name] = cached
            payloads += cached
        return slots + payloads

    @property
    def columnar_nbytes(self) -> int:
        """Raw columnar array bytes (for storage-level introspection)."""
        total = 0
        for name, dtype in self._dtypes.items():
            total += int(self.array(name).nbytes)
            if dtype is DataType.STRING:
                total += string_payload_bytes(self.array(name))
        return total

    def rows(self, names: Sequence[str] | None = None) -> Iterator[tuple[Any, ...]]:
        """Iterate tuples (over *names* or the full schema)."""
        return iter(self.to_pylist(names))

    def to_pylist(self, names: Sequence[str] | None = None) -> list[tuple[Any, ...]]:
        """All tuples as native Python values, NULLs as ``None``."""
        names = list(names) if names is not None else self._order
        if self._length == 0:
            return []
        if not names:
            return [()] * self._length
        columns = []
        for name in names:
            values = self.array(name).tolist()
            valid = self.validity(name)
            if valid is not None:
                values = [v if ok else None for v, ok in zip(values, valid)]
            columns.append(values)
        return list(zip(*columns))

    # -- relational operations (block-based execution) ------------------------------

    def take(self, indices: np.ndarray) -> "FlatBlock":
        """Row subset / reorder by integer indices.

        O(1) in column data: the result is a selection-vector view sharing
        this block's backing arrays; columns materialize lazily on access.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out = FlatBlock()
        # Dict copies (cheap) so a later densify of the child cannot mutate
        # this block's column maps; the arrays themselves stay shared.
        out._data = dict(self._data)
        out._validity = dict(self._validity)
        out._dtypes = dict(self._dtypes)
        out._order = list(self._order)
        out._length = len(indices)
        if self._sel is None:
            out._sel = indices
        else:
            out._sel = self._sel[indices]
        return out

    def filter(self, mask: np.ndarray) -> "FlatBlock":
        """Rows where *mask* is True (a selection-vector view)."""
        if len(mask) != self._length:
            raise ExecutionError("filter mask length mismatch")
        return self.take(np.flatnonzero(mask))

    def select(self, names: Sequence[str]) -> "FlatBlock":
        """Projection onto a subset of columns (optionally renaming none)."""
        out = FlatBlock()
        for name in names:
            out.add_array(name, self.dtype(name), self.array(name), self.validity(name))
        return out

    def rename(self, mapping: Mapping[str, str]) -> "FlatBlock":
        """Rename columns per *mapping* (others keep their names)."""
        out = FlatBlock()
        for name in self._order:
            new_name = mapping.get(name, name)
            out.add_array(new_name, self._dtypes[name], self.array(name), self.validity(name))
        return out

    def sort(self, keys: Sequence[tuple[str, bool]]) -> "FlatBlock":
        """Stable multi-key sort; each key is (column, ascending)."""
        if not keys or self._length <= 1:
            return self
        # np.lexsort sorts by the *last* key array first, so feed keys in
        # reverse significance order.
        arrays = [
            sort_key_array(
                self.array(name), self._dtypes[name], ascending, self.validity(name)
            )
            for name, ascending in reversed(list(keys))
        ]
        order = np.lexsort(arrays)
        return self.take(order)

    def limit(self, n: int) -> "FlatBlock":
        """The first *n* rows (the whole block when n >= len)."""
        if n >= self._length:
            return self
        return self.take(np.arange(n))

    def distinct(self, names: Sequence[str] | None = None) -> "FlatBlock":
        """Distinct rows over *names* (keeping first occurrence, full rows)."""
        names = list(names) if names is not None else self._order
        seen: set[tuple[Any, ...]] = set()
        keep: list[int] = []
        for i, key in enumerate(self.to_pylist(names)):
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(np.asarray(keep, dtype=np.int64))

    def concat(self, other: "FlatBlock") -> "FlatBlock":
        """Rows of *self* followed by rows of *other* (same schema)."""
        if self._order != other._order:
            raise ExecutionError("concat requires identical schemas")
        out = FlatBlock()
        for name in self._order:
            mine, theirs = self.validity(name), other.validity(name)
            if mine is None and theirs is None:
                merged = None
            else:
                merged = np.concatenate(
                    [
                        mine if mine is not None else np.ones(len(self), dtype=bool),
                        theirs if theirs is not None else np.ones(len(other), dtype=bool),
                    ]
                )
            out.add_array(
                name,
                self._dtypes[name],
                np.concatenate([self.array(name), other.array(name)]),
                merged,
            )
        return out

    def group_indices(self, names: Sequence[str]) -> dict[tuple[Any, ...], np.ndarray]:
        """Hash grouping: key tuple -> row indices (the flat Group-By core)."""
        groups: dict[tuple[Any, ...], list[int]] = {}
        for i, key in enumerate(self.to_pylist(names)):
            groups.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    @classmethod
    def empty_like(cls, schema: Sequence[tuple[str, DataType]]) -> "FlatBlock":
        block = cls()
        for name, dtype in schema:
            block.add_array(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))
        return block

    def __repr__(self) -> str:
        return f"FlatBlock(schema={self._order}, n={self._length})"


def sort_key_array(
    values: np.ndarray,
    dtype: DataType,
    ascending: bool,
    validity: np.ndarray | None = None,
) -> np.ndarray:
    """A lexsort-ready key array for one sort key.

    NULL rows (cleared validity bits) are forced onto the dtype's inert
    fill, which sorts to a consistent extreme: int64 min is the smallest
    key and wraps onto itself under negation, NaN sorts last either way,
    and None strings rank as the empty string.  Numeric keys sort natively
    (negated for descending); strings — which lexsort cannot compare
    against None — are replaced by dense ranks.
    """
    if dtype is DataType.STRING:
        if validity is None:
            cleaned = np.asarray(["" if v is None else v for v in values], dtype=object)
        else:
            cleaned = np.asarray(
                [
                    "" if (not ok or v is None) else v
                    for v, ok in zip(values, validity)
                ],
                dtype=object,
            )
        _, codes = np.unique(cleaned, return_inverse=True)
        return codes if ascending else -codes
    if validity is not None:
        values = values.copy()
        values[~validity] = dtype.fill_value()
    if ascending:
        return values
    with np.errstate(over="ignore"):
        return -values
