"""The practical f-Tree (paper §4.2).

An f-Tree is a rooted tree in which every node owns an f-Block and a
selection vector, and every edge (u, v) carries an *index vector*: for each
entry ``i`` of u's block, a half-open range ``[starts[i], ends[i])`` of rows
in v's block.  Entry ``i`` of u is in Cartesian-product relationship with
exactly those rows — this is the practical encoding of the Union /
Cartesian-product factorization of Olteanu & Závodný.

Key invariants, enforced here and property-tested in
``tests/test_ftree_properties.py``:

* **Disjoint schema partition** — every attribute lives in exactly one node.
* **Index-vector bounds** — every range lies inside the child block.
* **Constant-delay enumeration** (Lemma 4.4) — :meth:`FTree.iter_tuples`
  yields each valid tuple with delay proportional to the schema size only.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import FactorizationError
from .column import Column, ColumnLike
from .fblock import FBlock


class IndexVector:
    """Per-parent-entry ranges into a child f-Block."""

    __slots__ = ("starts", "ends")

    def __init__(self, starts: np.ndarray, ends: np.ndarray) -> None:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if len(starts) != len(ends):
            raise FactorizationError("index vector starts/ends length mismatch")
        if np.any(ends < starts):
            raise FactorizationError("index vector has negative-length range")
        self.starts = starts
        self.ends = ends

    def __len__(self) -> int:
        return len(self.starts)

    def range_of(self, i: int) -> tuple[int, int]:
        return int(self.starts[i]), int(self.ends[i])

    def lengths(self) -> np.ndarray:
        return self.ends - self.starts

    @property
    def nbytes(self) -> int:
        return int(self.starts.nbytes + self.ends.nbytes)

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "IndexVector":
        """Consecutive ranges whose sizes are *lengths* (the Expand layout)."""
        lengths = np.asarray(lengths, dtype=np.int64)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        return cls(starts, ends)

    @classmethod
    def identity(cls, n: int) -> "IndexVector":
        """Entry i maps to exactly row i (1:1 child, e.g. per-entry payload)."""
        idx = np.arange(n, dtype=np.int64)
        return cls(idx, idx + 1)


class FTreeNode:
    """One node: an f-Block, a selection vector, and child edges."""

    __slots__ = ("name", "block", "selection", "children", "parent")

    def __init__(self, name: str, block: FBlock, selection: np.ndarray | None = None) -> None:
        self.name = name
        self.block = block
        if selection is None:
            selection = np.ones(len(block), dtype=bool)
        if len(selection) != len(block):
            raise FactorizationError("selection vector length must match block cardinality")
        self.selection = selection
        self.children: list[tuple["FTreeNode", IndexVector]] = []
        self.parent: "FTreeNode" | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child_edge(self, child: "FTreeNode") -> IndexVector:
        for node, index_vector in self.children:
            if node is child:
                return index_vector
        raise FactorizationError(f"{child.name!r} is not a child of {self.name!r}")

    def and_selection(self, mask: np.ndarray) -> None:
        """Conjoin a filter mask into the selection vector (paper Filter op)."""
        if len(mask) != len(self.block):
            raise FactorizationError("filter mask length must match block cardinality")
        self.selection &= mask

    @property
    def num_valid(self) -> int:
        return int(self.selection.sum())

    def __repr__(self) -> str:
        return (
            f"FTreeNode({self.name!r}, schema={self.block.schema}, "
            f"n={len(self.block)}, valid={self.num_valid}, children={len(self.children)})"
        )


class FTree:
    """A rooted f-Tree factorizing one intermediate relation."""

    def __init__(self, root: FTreeNode) -> None:
        self.root = root
        self._attr_to_node: dict[str, FTreeNode] = {}
        self._register_attrs(root)

    def _register_attrs(self, node: FTreeNode) -> None:
        for attr in node.block.schema:
            if attr in self._attr_to_node:
                raise FactorizationError(
                    f"attribute {attr!r} violates the disjoint schema partition"
                )
            self._attr_to_node[attr] = node
        for child, _ in node.children:
            self._register_attrs(child)

    # -- structure -----------------------------------------------------------

    @classmethod
    def single(cls, name: str, block: FBlock) -> "FTree":
        """An f-Tree of one node (degenerate case: just an f-Block)."""
        return cls(FTreeNode(name, block))

    def add_child(
        self,
        parent: FTreeNode,
        name: str,
        block: FBlock,
        index_vector: IndexVector,
        selection: np.ndarray | None = None,
    ) -> FTreeNode:
        """Attach a new node under *parent* (what each Expand does)."""
        if len(index_vector) != len(parent.block):
            raise FactorizationError(
                "index vector must have one range per parent entry "
                f"({len(index_vector)} != {len(parent.block)})"
            )
        if len(block) and index_vector.ends.size and index_vector.ends.max() > len(block):
            raise FactorizationError("index vector range exceeds child block")
        node = FTreeNode(name, block, selection)
        node.parent = parent
        parent.children.append((node, index_vector))
        for attr in block.schema:
            if attr in self._attr_to_node:
                raise FactorizationError(
                    f"attribute {attr!r} violates the disjoint schema partition"
                )
            self._attr_to_node[attr] = node
        return node

    def node_of(self, attr: str) -> FTreeNode:
        """The unique node holding *attr* (disjoint schema partition)."""
        try:
            return self._attr_to_node[attr]
        except KeyError:
            raise FactorizationError(f"no f-Tree node holds attribute {attr!r}") from None

    def has_attr(self, attr: str) -> bool:
        """True when some node of the tree holds *attr*."""
        return attr in self._attr_to_node

    @property
    def schema(self) -> list[str]:
        """S(R_{F_T}): the union of all node schemas (document order)."""
        out: list[str] = []
        for node in self.nodes():
            out.extend(node.block.schema)
        return out

    def nodes(self) -> Iterator[FTreeNode]:
        """Pre-order traversal."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for child, _ in reversed(node.children):
                stack.append(child)

    def node_named(self, name: str) -> FTreeNode:
        """Look a node up by its name (test/debug convenience)."""
        for node in self.nodes():
            if node.name == name:
                return node
        raise FactorizationError(f"no f-Tree node named {name!r}")

    def add_column(self, node: FTreeNode, column: ColumnLike) -> None:
        """Append a payload column to a node's block (Projection op)."""
        if column.name in self._attr_to_node:
            raise FactorizationError(
                f"attribute {column.name!r} violates the disjoint schema partition"
            )
        node.block.add_column(column)
        self._attr_to_node[column.name] = node

    # -- accounting -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total footprint: blocks + selection vectors + index vectors."""
        total = 0
        for node in self.nodes():
            total += node.block.nbytes + int(node.selection.nbytes)
            for _, index_vector in node.children:
                total += index_vector.nbytes
        return total

    # -- validity propagation ---------------------------------------------------

    def valid_counts(self, node: FTreeNode | None = None) -> np.ndarray:
        """Per-entry count of valid tuples induced by each entry (R_u^i).

        ``counts[i]`` is ``|R_u^i|``: 0 when the entry is filtered out or a
        required child range has no surviving tuples.  Fully vectorized via
        per-child prefix sums.
        """
        node = node or self.root
        counts = node.selection.astype(np.int64)
        for child, index_vector in node.children:
            child_counts = self.valid_counts(child)
            prefix = np.zeros(len(child_counts) + 1, dtype=np.int64)
            np.cumsum(child_counts, out=prefix[1:])
            per_range = prefix[index_vector.ends] - prefix[index_vector.starts]
            counts *= per_range
        return counts

    def num_tuples(self) -> int:
        """|R_{F_T}| without materializing anything."""
        return int(self.valid_counts().sum())

    # -- constant-delay enumeration (Lemma 4.4) ----------------------------------

    def iter_tuples(self, attrs: Sequence[str] | None = None) -> Iterator[tuple[Any, ...]]:
        """Enumerate valid tuples with O(|schema|) delay per tuple.

        Entries whose subtree yields no valid tuple are skipped using the
        precomputed valid-count arrays, so the delay between consecutive
        outputs never depends on the number of invalid entries in a range
        beyond the first valid one... see ``tests/test_ftree_properties.py``
        for the delay-measurement test.
        """
        attrs = list(attrs) if attrs is not None else self.schema
        for attr in attrs:
            self.node_of(attr)  # validates attribute existence

        counts: dict[int, np.ndarray] = {}

        def compute_counts(node: FTreeNode) -> np.ndarray:
            result = node.selection.astype(np.int64)
            for child, index_vector in node.children:
                child_counts = compute_counts(child)
                prefix = np.zeros(len(child_counts) + 1, dtype=np.int64)
                np.cumsum(child_counts, out=prefix[1:])
                result *= prefix[index_vector.ends] - prefix[index_vector.starts]
            counts[id(node)] = result
            return result

        compute_counts(self.root)

        # Pre-resolve output slots: (node, column values getter, out position).
        buffer: list[Any] = [None] * len(attrs)
        slots: dict[int, list[tuple[Any, int]]] = {}
        for position, attr in enumerate(attrs):
            node = self.node_of(attr)
            column = node.block.column(attr)
            slots.setdefault(id(node), []).append((column, position))

        def emit(node: FTreeNode, i: int) -> None:
            for column, position in slots.get(id(node), ()):
                getter = getattr(column, "get", None)
                if getter is not None:
                    buffer[position] = getter(i)
                else:
                    value = column.values()[i]
                    buffer[position] = (
                        value.item() if isinstance(value, np.generic) else value
                    )

        def recurse(node: FTreeNode, i: int) -> Iterator[None]:
            """Yield once per valid combination of the subtree rooted at node,
            with the output buffer filled for this subtree's attributes."""
            emit(node, i)
            children = node.children
            if not children:
                yield None
                return

            def product(level: int) -> Iterator[None]:
                if level == len(children):
                    yield None
                    return
                child, index_vector = children[level]
                child_counts = counts[id(child)]
                start, end = index_vector.range_of(i)
                for j in range(start, end):
                    if child_counts[j] == 0:
                        continue
                    for _ in recurse(child, j):
                        yield from product(level + 1)

            yield from product(0)

        root_counts = counts[id(self.root)]
        for i in range(len(self.root.block)):
            if root_counts[i] == 0:
                continue
            for _ in recurse(self.root, i):
                yield tuple(buffer)

    def __repr__(self) -> str:
        return f"FTree(schema={self.schema}, nodes={sum(1 for _ in self.nodes())})"


def singleton_tree(name: str, **arrays: Any) -> FTree:
    """Convenience: a one-node f-Tree from keyword arrays (tests)."""
    block = FBlock()
    for attr, values in arrays.items():
        block.add_column(Column.from_values(attr, list(values)))
    return FTree.single(name, block)
