"""Query-time columns: the Singleton unions stored inside f-Blocks.

A :class:`Column` is an immutable, named, typed vector with an optional
validity mask (NULL is a bit, never a sentinel value).  Every f-Block
column implements the same tiny interface (``values`` / ``__len__`` /
``nbytes`` / ``dtype``) so the executor can mix eager NumPy-backed columns
with the lazy pointer-based neighbor columns from :mod:`repro.core.lazy`;
columns that can carry NULLs additionally expose ``validity()``.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np

from ..storage.validity import pack_values
from ..types import DataType, infer_data_type


@runtime_checkable
class ColumnLike(Protocol):
    """Interface every f-Block column satisfies."""

    name: str
    dtype: DataType

    def __len__(self) -> int: ...

    def values(self) -> np.ndarray:
        """The column contents as a NumPy array (materializing if lazy)."""
        ...

    @property
    def nbytes(self) -> int:
        """Current memory footprint (lazy columns report pointer size)."""
        ...


def column_validity(column: Any) -> np.ndarray | None:
    """Validity mask of any column-like object (None = all valid).

    Columns without a ``validity`` method — e.g. lazy neighbor columns,
    which can never hold NULLs — are treated as all-valid.
    """
    accessor = getattr(column, "validity", None)
    if callable(accessor):
        return accessor()
    return None


def normalize_validity(
    validity: np.ndarray | list | None, length: int
) -> np.ndarray | None:
    """Canonical form: a bool array with at least one False, else None."""
    if validity is None:
        return None
    mask = np.asarray(validity, dtype=bool)
    if len(mask) != length:
        raise ValueError(f"validity length {len(mask)} != column length {length}")
    if mask.all():
        return None
    return mask


class Column:
    """An eager, immutable column backed by a NumPy array."""

    __slots__ = ("name", "dtype", "_data", "_validity", "_payload")

    def __init__(
        self,
        name: str,
        dtype: DataType,
        data: np.ndarray | list,
        validity: np.ndarray | None = None,
    ) -> None:
        self.name = name
        self.dtype = dtype
        array = np.asarray(data, dtype=dtype.numpy_dtype)
        if array.ndim != 1:
            raise ValueError(f"column {name!r} must be one-dimensional")
        self._data = array
        self._validity = normalize_validity(validity, len(array))
        self._payload = string_payload_bytes(array) if dtype is DataType.STRING else 0

    def __len__(self) -> int:
        return len(self._data)

    def values(self) -> np.ndarray:
        return self._data

    def validity(self) -> np.ndarray | None:
        """Validity bits (True = value present); None when all valid."""
        return self._validity

    @property
    def nbytes(self) -> int:
        """Columnar footprint: raw array plus string payload bytes."""
        validity = 0 if self._validity is None else int(self._validity.nbytes)
        return int(self._data.nbytes) + self._payload + validity

    def get(self, i: int) -> Any:
        if self._validity is not None and not self._validity[i]:
            return None
        value = self._data[i]
        return value.item() if isinstance(value, np.generic) else value

    def take(self, indices: np.ndarray, name: str | None = None) -> "Column":
        """New column gathering *indices* (the de-factoring primitive)."""
        validity = None if self._validity is None else self._validity[indices]
        return Column(name or self.name, self.dtype, self._data[indices], validity)

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype, self._data, self._validity)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    @classmethod
    def from_values(cls, name: str, values: Iterable[Any]) -> "Column":
        """Infer the dtype from the first non-null value (test convenience)."""
        values = list(values)
        dtype = DataType.STRING
        for value in values:
            if value is not None:
                dtype = infer_data_type(value)
                break
        data, validity = pack_values(values, dtype)
        return cls(name, dtype, data, validity)


def concat_columns(name: str, dtype: DataType, parts: list[np.ndarray]) -> Column:
    """Concatenate array chunks into one eager column."""
    if not parts:
        return Column(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))
    return Column(name, dtype, np.concatenate(parts))


def concat_columns_with_validity(
    name: str,
    dtype: DataType,
    parts: list[np.ndarray],
    validities: list[np.ndarray | None],
) -> Column:
    """Concatenate array chunks and their validity masks into one column."""
    if not parts:
        return Column(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))
    if any(v is not None for v in validities):
        merged = np.concatenate(
            [
                np.ones(len(part), dtype=bool) if valid is None else valid
                for part, valid in zip(parts, validities)
            ]
        )
    else:
        merged = None
    return Column(name, dtype, np.concatenate(parts), merged)


def string_payload_bytes(values: np.ndarray) -> int:
    """Total character bytes held by an object column (None-safe)."""
    return sum(len(v) for v in values if isinstance(v, str))
