"""Query-time columns: the Singleton unions stored inside f-Blocks.

A :class:`Column` is an immutable, named, typed vector.  Every f-Block
column implements the same tiny interface (``values`` / ``__len__`` /
``nbytes`` / ``dtype``) so the executor can mix eager NumPy-backed columns
with the lazy pointer-based neighbor columns from :mod:`repro.core.lazy`.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np

from ..types import DataType, infer_data_type


@runtime_checkable
class ColumnLike(Protocol):
    """Interface every f-Block column satisfies."""

    name: str
    dtype: DataType

    def __len__(self) -> int: ...

    def values(self) -> np.ndarray:
        """The column contents as a NumPy array (materializing if lazy)."""
        ...

    @property
    def nbytes(self) -> int:
        """Current memory footprint (lazy columns report pointer size)."""
        ...


class Column:
    """An eager, immutable column backed by a NumPy array."""

    __slots__ = ("name", "dtype", "_data", "_payload")

    def __init__(self, name: str, dtype: DataType, data: np.ndarray | list) -> None:
        self.name = name
        self.dtype = dtype
        array = np.asarray(data, dtype=dtype.numpy_dtype)
        if array.ndim != 1:
            raise ValueError(f"column {name!r} must be one-dimensional")
        self._data = array
        self._payload = string_payload_bytes(array) if dtype is DataType.STRING else 0

    def __len__(self) -> int:
        return len(self._data)

    def values(self) -> np.ndarray:
        return self._data

    @property
    def nbytes(self) -> int:
        """Columnar footprint: raw array plus string payload bytes."""
        return int(self._data.nbytes) + self._payload

    def get(self, i: int) -> Any:
        value = self._data[i]
        return value.item() if isinstance(value, np.generic) else value

    def take(self, indices: np.ndarray, name: str | None = None) -> "Column":
        """New column gathering *indices* (the de-factoring primitive)."""
        return Column(name or self.name, self.dtype, self._data[indices])

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype, self._data)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype.value}, n={len(self)})"

    @classmethod
    def from_values(cls, name: str, values: Iterable[Any]) -> "Column":
        """Infer the dtype from the first non-null value (test convenience)."""
        values = list(values)
        dtype = DataType.STRING
        for value in values:
            if value is not None:
                dtype = infer_data_type(value)
                break
        return cls(name, dtype, np.asarray(values, dtype=dtype.numpy_dtype))


def concat_columns(name: str, dtype: DataType, parts: list[np.ndarray]) -> Column:
    """Concatenate array chunks into one eager column."""
    if not parts:
        return Column(name, dtype, np.empty(0, dtype=dtype.numpy_dtype))
    return Column(name, dtype, np.concatenate(parts))


def string_payload_bytes(values: np.ndarray) -> int:
    """Total character bytes held by an object column (None-safe)."""
    return sum(len(v) for v in values if isinstance(v, str))
