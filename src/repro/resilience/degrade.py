"""Graceful-degradation ladder.

When a resilient component fails, the service steps down to a slower but
simpler rung instead of failing the query:

==============================  ========================================
failure                          degraded rung
==============================  ========================================
factorized executor raises       re-execute on the flat executor
plan-cache lookup/store faults   compile uncached
memory-pool acquire faults       allocate directly (inside the pool)
==============================  ========================================

Each degradation is observable: the service bumps ``ges_degraded_queries``
/ ``ExecStats.degrade_count`` and tags the active span, so a fleet that is
quietly running de-optimized shows up on dashboards rather than only in
latency tails.

:func:`with_fallback` is the one rule of the ladder: try the primary; on
a degradable :class:`~repro.errors.GesError` run the fallback; if the
fallback *also* fails, re-raise the **original** error — the primary's
error is the meaningful one, and keeping it stable preserves error-type
contracts for callers (and the differential oracle's uniform-rejection
check).  Timeouts and admission rejections never degrade: the first is a
budget the fallback would also blow, the second never started work.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from ..errors import AdmissionRejected, GesError, QueryTimeout

T = TypeVar("T")

#: Errors that must propagate rather than trigger a slower retry of the
#: same work: the budget (time or admission) is already spent.
NON_DEGRADABLE = (QueryTimeout, AdmissionRejected)


def with_fallback(
    primary: Callable[[], T],
    fallback: Optional[Callable[[], T]],
    on_degrade: Optional[Callable[[GesError], None]] = None,
) -> T:
    """Run *primary*; on a degradable ``GesError`` run *fallback* instead."""
    try:
        return primary()
    except NON_DEGRADABLE:
        raise
    except GesError as primary_error:
        if fallback is None:
            raise
        if on_degrade is not None:
            on_degrade(primary_error)
        try:
            return fallback()
        except NON_DEGRADABLE:
            raise
        except GesError:
            raise primary_error
