"""Bounded retry with exponential backoff and deterministic seeded jitter.

Only the *retryable* error set is retried: optimistic-concurrency aborts
(``TransactionAborted``), lock-wait expiry (``LockTimeout``), and injected
transients (``TransientError``).  Everything else — syntax errors, plan
errors, timeouts, admission rejections — propagates immediately; retrying
those would either never succeed or violate the caller's budget.

Jitter is drawn from ``random.Random(f"{seed}:retry")`` so two runs with
the same seed back off identically — the same determinism contract as the
fault-injection registry, keeping chaos campaigns replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from time import sleep
from typing import Callable, Optional, TypeVar

from ..errors import LockTimeout, TransactionAborted, TransientError
from .watchdog import Deadline

T = TypeVar("T")

#: Errors worth re-running: the failed attempt left no partial effects
#: (aborted txn, lock never granted, injected transient).
RETRYABLE = (TransactionAborted, LockTimeout, TransientError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and seeded jitter.

    ``attempts`` counts total tries (1 = no retry).  The delay before
    retry *k* (1-based) is ``backoff_ms * multiplier**(k-1)`` capped at
    ``max_backoff_ms``, scaled by a jitter factor in [0.5, 1.0) drawn from
    the policy's seeded stream.
    """

    attempts: int = 3
    backoff_ms: float = 1.0
    multiplier: float = 2.0
    max_backoff_ms: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def delay_ms(self, retry_index: int, rng: Random) -> float:
        """Backoff before the *retry_index*-th retry (1-based), jittered."""
        base = self.backoff_ms * self.multiplier ** (retry_index - 1)
        return min(base, self.max_backoff_ms) * (0.5 + 0.5 * rng.random())

    def run(
        self,
        fn: Callable[[], T],
        *,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Call *fn* until it succeeds, exhausts attempts, or hits the deadline.

        ``on_retry(retry_index, error)`` is invoked before each re-attempt
        (the service uses it to bump the ``ges_retries_total`` counter).
        A deadline that has already expired suppresses further retries —
        the last error propagates rather than burning budget on backoff.
        """
        rng: Random | None = None  # built lazily: the success path pays nothing
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except RETRYABLE as exc:
                if attempt >= self.attempts:
                    raise
                if deadline is not None and deadline.expired():
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if rng is None:
                    rng = Random(f"{self.seed}:retry")
                delay = self.delay_ms(attempt, rng)
                if delay > 0.0:
                    sleep(delay / 1e3)


@dataclass
class RetryStats:
    """Mutable retry accounting for callers without a metrics registry."""

    retries: int = 0
    last_error: str = ""
    by_type: dict = field(default_factory=dict)

    def record(self, _attempt: int, exc: BaseException) -> None:
        self.retries += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        name = type(exc).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1
