"""Service resilience layer: watchdog, admission, retry, degrade, faults.

The paper's system is a *service*, not just an engine: it keeps answering
under load, slow queries, lock contention, and partial failures.  This
package supplies the mechanisms the :class:`~repro.engine.service.GES`
facade composes into that behavior:

* :mod:`.watchdog` — per-query deadlines with cooperative cancellation
  (checked at operator and chunk boundaries, raising a typed
  :class:`~repro.errors.QueryTimeout`);
* :mod:`.admission` — concurrent-query and estimated-memory admission
  control with bounded queueing (:class:`~repro.errors.AdmissionRejected`);
* :mod:`.retry` — bounded, deterministically-jittered retry for the
  retryable error set (``TransactionAborted`` / ``LockTimeout`` /
  ``TransientError``);
* :mod:`.degrade` — the graceful-degradation ladder (factorized → flat
  executor, cached → uncached compile, pooled → direct allocation);
* :mod:`.faults` — a deterministic seeded fault-injection registry used
  by the chaos campaign (``repro chaos``) and the stress harness.
"""

from .admission import AdmissionController
from .degrade import with_fallback
from .faults import FaultPlan, FaultRule, fault_scope, maybe_fire
from .retry import RetryPolicy
from .watchdog import Deadline, current_deadline, deadline_scope

__all__ = [
    "AdmissionController",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "fault_scope",
    "maybe_fire",
    "with_fallback",
]
