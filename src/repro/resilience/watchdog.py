"""Per-query deadlines with cooperative cancellation.

A :class:`Deadline` is an absolute expiry on the engine's monotonic clock
(:func:`repro.obs.clock.now`, the single time source for the whole repo).
The service installs one ambient deadline per query via
:func:`deadline_scope`; execution-layer code picks it up with
:func:`current_deadline` — no operator signature has to change — and
checks it at natural yield points:

* operator boundaries (``OpTimer.__enter__`` in :mod:`repro.exec.base`,
  the Volcano op loop in :mod:`repro.baselines.volcano`);
* chunk boundaries inside long expansion loops
  (:mod:`repro.exec.expand_util`), strided via :meth:`Deadline.tick` so
  the clock is read once per N sources, not once per row.

Cancellation is cooperative: a check past the expiry raises a typed
:class:`~repro.errors.QueryTimeout` which unwinds through the executor's
normal cleanup (``try/finally`` trace teardown, pool releases), so a
timed-out query leaves no leaked pins or unbalanced pool state behind.

Nested scopes resolve to the *sooner* expiry, so an outer service-level
timeout still bounds a query that installs its own longer deadline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from ..errors import QueryTimeout
from ..obs.clock import now

#: Default stride for :meth:`Deadline.tick` — one clock read per this many
#: loop iterations keeps the check cost negligible on per-source loops.
TICK_STRIDE = 64


class Deadline:
    """An absolute expiry with cheap cooperative checks."""

    __slots__ = ("expires_at", "budget_seconds", "label", "_ticks")

    def __init__(
        self,
        expires_at: float,
        budget_seconds: float = 0.0,
        label: str = "query",
    ) -> None:
        self.expires_at = expires_at
        self.budget_seconds = budget_seconds
        self.label = label
        self._ticks = 0

    @classmethod
    def after(cls, seconds: float, label: str = "query") -> "Deadline":
        """A deadline *seconds* from now on the engine clock."""
        return cls(now() + seconds, budget_seconds=seconds, label=label)

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - now()

    def expired(self) -> bool:
        return now() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`QueryTimeout` if the deadline has passed."""
        if now() >= self.expires_at:
            budget_ms = self.budget_seconds * 1e3
            raise QueryTimeout(
                f"{self.label} exceeded its deadline "
                f"(budget {budget_ms:.3f} ms)"
            )

    def tick(self, stride: int = TICK_STRIDE) -> None:
        """Strided check for tight loops: reads the clock every *stride* calls."""
        self._ticks += 1
        if self._ticks % stride == 0:
            self.check()


_LOCAL = threading.local()


def current_deadline() -> Deadline | None:
    """The ambient deadline for this thread, or None when unbounded."""
    return getattr(_LOCAL, "deadline", None)


def push_deadline(
    deadline: Deadline | None,
) -> tuple[Deadline | None, Deadline | None]:
    """Install *deadline*; returns ``(previous, effective)``.

    The paired :func:`pop_deadline` restores ``previous``.  This is the
    raw form of :func:`deadline_scope` for per-query hot paths where a
    generator context manager is measurable overhead.
    """
    prev = getattr(_LOCAL, "deadline", None)
    effective = deadline
    if effective is None:
        effective = prev
    elif prev is not None and prev.expires_at < effective.expires_at:
        effective = prev
    _LOCAL.deadline = effective
    return prev, effective


def pop_deadline(prev: Deadline | None) -> None:
    """Restore the deadline saved by :func:`push_deadline`."""
    _LOCAL.deadline = prev


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install *deadline* as the thread's ambient deadline.

    Nesting keeps whichever deadline expires sooner, so an inner scope can
    only tighten the budget, never extend it.  Passing None leaves any
    outer deadline in force.
    """
    prev, effective = push_deadline(deadline)
    try:
        yield effective
    finally:
        pop_deadline(prev)
