"""Deterministic, seeded fault injection.

A :class:`FaultPlan` maps named *sites* — fixed choke points instrumented
throughout the stack — to firing rules (probability per hit, or every Nth
hit).  Each site draws from its own ``random.Random(f"{seed}:{site}")``
stream, so whether a given hit fires depends only on the plan's seed and
the site's hit ordinal: the same campaign seed replays the same faults,
which is what makes chaos failures shrinkable and debuggable (the same
principle that made the PR-3 stress harness useful).

Instrumented sites (the catalog is also documented in DESIGN.md):

========================  ====================================================
site                      choke point
========================  ====================================================
``memory_pool.acquire``   :meth:`MemoryPool.acquire` — degraded in place to a
                          direct allocation (never surfaces to the query)
``locks.acquire``         start of :meth:`LockManager.acquire_all` — before
                          any lock is taken, so a fired fault leaves the
                          transaction clean and re-committable
``plan_cache.lookup``     :meth:`PlanCache.lookup` — the service degrades to
                          an uncached compile
``snapshot.load``         :func:`repro.storage.io.load_graph` entry
``snapshot.save``         :func:`repro.storage.io.save_graph` entry — before
                          any byte is written, so a fired fault can never
                          leave a half-written snapshot behind
``executor.operator``     every operator boundary (``OpTimer.__enter__`` and
                          the Volcano dispatch loop)
========================  ====================================================

Injection is process-global (module attribute ``ACTIVE``) so deep call
sites need no plumbing; hot paths guard with ``if faults.ACTIVE is not
None`` to keep the disabled cost at one attribute read.  Fired faults
raise :class:`~repro.errors.TransientError` — a member of the retryable
set — so the chaos campaign can assert that every injected fault is
retried, degraded, or surfaced typed, never a wrong answer.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..errors import TransientError
from ..obs.events import EVENTS

#: Catalog of instrumented sites (kept in sync with the table above).
SITES = (
    "memory_pool.acquire",
    "locks.acquire",
    "plan_cache.lookup",
    "snapshot.load",
    "snapshot.save",
    "executor.operator",
)


@dataclass(frozen=True)
class FaultRule:
    """When a site fires: with *probability* per hit and/or every Nth hit.

    ``max_fires`` bounds the total (0 = unlimited) so a test can inject
    exactly one fault and assert exactly one recovery.
    """

    site: str
    probability: float = 0.0
    every_nth: int = 0
    max_fires: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")


@dataclass
class FaultPlan:
    """A seeded set of fault rules plus hit/fire accounting."""

    rules: Iterable[FaultRule] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rules: dict[str, FaultRule] = {}
        for rule in self.rules:
            if rule.site in self._rules:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            self._rules[rule.site] = rule
        self._rngs = {
            site: random.Random(f"{self.seed}:{site}") for site in self._rules
        }
        self._hits = {site: 0 for site in self._rules}
        self._fired = {site: 0 for site in self._rules}
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Rewind all accounting and RNG streams to the just-built state.

        A plan is mutable (hit counts and random streams advance as sites
        fire), so reusing one across runs would make the second run diverge
        from the first.  Harnesses that promise one-seed-one-execution
        (:func:`~repro.testkit.stress.run_stress`) reset the plan up front.
        """
        with self._lock:
            self._rngs = {
                site: random.Random(f"{self.seed}:{site}") for site in self._rules
            }
            self._hits = {site: 0 for site in self._rules}
            self._fired = {site: 0 for site in self._rules}

    def fire(self, site: str) -> None:
        """Record a hit at *site*; raise ``TransientError`` if the rule fires."""
        rule = self._rules.get(site)
        if rule is None:
            return
        with self._lock:
            self._hits[site] += 1
            if rule.max_fires and self._fired[site] >= rule.max_fires:
                return
            fires = False
            if rule.every_nth and self._hits[site] % rule.every_nth == 0:
                fires = True
            elif rule.probability and self._rngs[site].random() < rule.probability:
                fires = True
            if not fires:
                return
            self._fired[site] += 1
            ordinal = self._fired[site]
        EVENTS.emit("fault_fired", site=site, ordinal=ordinal)
        raise TransientError(f"injected fault at {site}")

    def total_fired(self) -> int:
        with self._lock:
            return sum(self._fired.values())

    def summary(self) -> dict[str, Any]:
        with self._lock:
            return {
                site: {"hits": self._hits[site], "fired": self._fired[site]}
                for site in self._rules
            }


#: The process-global active plan; None disables injection entirely.
#: Hot call sites guard on this attribute before calling :func:`maybe_fire`.
ACTIVE: FaultPlan | None = None


def maybe_fire(site: str) -> None:
    """Fire *site* against the active plan, if any."""
    plan = ACTIVE
    if plan is not None:
        plan.fire(site)


@contextmanager
def fault_scope(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Install *plan* as the active fault plan for the duration of the block."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = prev
