"""Admission control for the engine service.

Production graph services protect themselves from overload by refusing
work they cannot finish rather than letting every query pile up and slow
all of them down.  :class:`AdmissionController` sits at the front of
``GES.execute`` and enforces two budgets:

* a **concurrent-query limit** — at most ``max_concurrent`` queries
  in flight, with a bounded FIFO-ish wait queue (``queue_limit`` deep,
  ``queue_timeout_ms`` per waiter) absorbing short bursts;
* an **estimated-memory budget** — each admitted query reserves its
  estimated peak intermediate footprint (the service feeds an EWMA of
  observed ``peak_intermediate_bytes``, plus the live pool occupancy via
  a ``pool_bytes`` callback backed by the memory-pool gauges) against
  ``memory_budget_bytes``.

Rejections are typed (:class:`~repro.errors.AdmissionRejected`) and
counted per reason, so the LDBC driver can account them per-query and
the chaos campaign can assert overload never turns into a raw exception
or an unbounded pile-up.

One query is always admissible: when nothing is in flight the controller
admits regardless of budgets, so a single query larger than the memory
budget degrades to "runs alone" instead of deadlocking the service.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from ..errors import AdmissionRejected
from ..obs.clock import now
from ..obs.events import EVENTS


class AdmissionController:
    """Concurrency + memory admission with bounded queueing."""

    def __init__(
        self,
        max_concurrent: int = 0,
        queue_limit: int = 0,
        queue_timeout_ms: float = 100.0,
        memory_budget_bytes: int = 0,
        pool_bytes: Optional[Callable[[], int]] = None,
    ) -> None:
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.queue_timeout_ms = queue_timeout_ms
        self.memory_budget_bytes = memory_budget_bytes
        self._pool_bytes = pool_bytes
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._reserved_bytes = 0
        self.admitted = 0
        self.queued = 0
        self.rejected = {"queue_full": 0, "queue_timeout": 0, "memory": 0}

    @property
    def enabled(self) -> bool:
        return self.max_concurrent > 0 or self.memory_budget_bytes > 0

    def _admissible(self, estimate_bytes: int) -> bool:
        if self._inflight == 0:
            return True  # an idle service always takes the next query
        if self.max_concurrent and self._inflight >= self.max_concurrent:
            return False
        if self.memory_budget_bytes:
            pool = self._pool_bytes() if self._pool_bytes is not None else 0
            if self._reserved_bytes + estimate_bytes + pool > self.memory_budget_bytes:
                return False
        return True

    @contextmanager
    def admit(self, estimate_bytes: int = 0) -> Iterator[None]:
        """Hold an admission slot (and memory reservation) for the block."""
        self._acquire(estimate_bytes)
        try:
            yield
        finally:
            self._release(estimate_bytes)

    def _acquire(self, estimate_bytes: int) -> None:
        with self._cond:
            if not self._admissible(estimate_bytes):
                # A memory-budget violation with free concurrency slots will
                # not clear by waiting a few ms (the footprint estimate does
                # not shrink), so reject immediately rather than queue.
                memory_bound = (
                    not self.max_concurrent
                    or self._inflight < self.max_concurrent
                )
                if memory_bound and self.memory_budget_bytes:
                    self.rejected["memory"] += 1
                    EVENTS.emit(
                        "admission_reject",
                        reason="memory",
                        estimate_bytes=estimate_bytes,
                    )
                    raise AdmissionRejected(
                        f"estimated {estimate_bytes} B exceeds the remaining "
                        f"memory budget ({self.memory_budget_bytes} B total)"
                    )
                if self.queue_limit <= 0 or self._waiting >= self.queue_limit:
                    self.rejected["queue_full"] += 1
                    EVENTS.emit(
                        "admission_reject",
                        reason="queue_full",
                        inflight=self._inflight,
                        waiting=self._waiting,
                    )
                    raise AdmissionRejected(
                        f"service saturated: {self._inflight} in flight, "
                        f"{self._waiting}/{self.queue_limit} queued"
                    )
                self._waiting += 1
                self.queued += 1
                expires = now() + self.queue_timeout_ms / 1e3
                try:
                    while not self._admissible(estimate_bytes):
                        remaining = expires - now()
                        if remaining <= 0:
                            self.rejected["queue_timeout"] += 1
                            EVENTS.emit(
                                "admission_reject", reason="queue_timeout"
                            )
                            raise AdmissionRejected(
                                f"queued {self.queue_timeout_ms:.0f} ms without "
                                f"an admission slot"
                            )
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
            self._inflight += 1
            self._reserved_bytes += estimate_bytes
            self.admitted += 1

    def _release(self, estimate_bytes: int) -> None:
        with self._cond:
            self._inflight -= 1
            self._reserved_bytes -= estimate_bytes
            if self._waiting:
                self._cond.notify_all()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def describe(self) -> dict[str, Any]:
        with self._cond:
            return {
                "enabled": self.enabled,
                "max_concurrent": self.max_concurrent,
                "queue_limit": self.queue_limit,
                "queue_timeout_ms": self.queue_timeout_ms,
                "memory_budget_bytes": self.memory_budget_bytes,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "reserved_bytes": self._reserved_bytes,
                "admitted": self.admitted,
                "queued": self.queued,
                "rejected": dict(self.rejected),
            }
