"""The version manager (paper §5, Concurrency Control).

"To coordinate query execution and versioning, the system employs a version
manager initialized to zero."  Read transactions take a snapshot of the
current version; write transactions receive the next version at commit.
"""

from __future__ import annotations

import threading


class VersionManager:
    """Monotonic global version counter, thread-safe."""

    def __init__(self) -> None:
        self._version = 0
        self._lock = threading.Lock()

    def current(self) -> int:
        """The newest committed version (what a read snapshot pins)."""
        with self._lock:
            return self._version

    def next_commit(self) -> int:
        """Allocate and publish the next commit version."""
        with self._lock:
            self._version += 1
            return self._version

    def advance_to(self, version: int) -> None:
        """Fast-forward to *version* (WAL replay; never moves backwards)."""
        with self._lock:
            if version > self._version:
                self._version = version
