"""Concurrency control: version manager, MV2PL locks, copy-on-write
snapshots, transactions (paper §5)."""

from .locks import LockManager
from .snapshot import SnapshotOverlay, VertexSnapshot
from .transaction import Transaction, TransactionManager
from .version import VersionManager

__all__ = [
    "LockManager",
    "SnapshotOverlay",
    "Transaction",
    "TransactionManager",
    "VersionManager",
    "VertexSnapshot",
]
