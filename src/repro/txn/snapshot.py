"""Copy-on-write vertex snapshots (paper §5).

"A write query creates a new snapshot for the vertices it modifies using a
copy-on-write strategy, while read queries construct a graph snapshot by
combining the snapshots of these vertices."

A :class:`VertexSnapshot` is the pre-image of one vertex's property row,
copied — via the memory pool — the moment a writer first touches the
vertex.  The :class:`SnapshotOverlay` indexes snapshots by commit version
so an old read view resolves each property to the newest pre-image taken
*after* its snapshot version.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any

from ..storage.memory_pool import DEFAULT_POOL, MemoryPool
from ..storage.properties import VertexTable
from ..types import DataType


class VertexSnapshot:
    """Pre-image of one vertex's property row.

    Integer-backed properties are packed into a single pooled int64 buffer;
    other types are kept in a small dict.  ``release`` returns the buffer
    to the pool once no snapshot reader can need this version anymore.
    """

    __slots__ = (
        "label", "row", "_int_names", "_int_valid", "_int_buffer", "_others", "_pool"
    )

    def __init__(self, table: VertexTable, row: int, pool: MemoryPool) -> None:
        self.label = table.label
        self.row = row
        self._pool = pool
        int_names: list[str] = []
        others: dict[str, Any] = {}
        for name in table.column_names:
            column = table.column(name)
            if column.dtype.is_integer_backed:
                int_names.append(name)
            else:
                others[name] = column.get(row)
        self._int_names = int_names
        self._int_buffer = pool.acquire(max(len(int_names), 1), DataType.INT64)
        self._int_valid: list[bool] = []
        for i, name in enumerate(int_names):
            column = table.column(name)
            valid = column.is_valid(row)
            self._int_valid.append(valid)
            self._int_buffer[i] = (
                column.get(row) if valid else column.dtype.fill_value()
            )
        self._others = others

    def get(self, name: str) -> tuple[bool, Any]:
        """(True, value) when this snapshot captured *name*."""
        try:
            idx = self._int_names.index(name)
        except ValueError:
            if name in self._others:
                return True, self._others[name]
            return False, None
        if not self._int_valid[idx]:
            return True, None
        return True, int(self._int_buffer[idx])

    def release(self) -> None:
        self._pool.release(self._int_buffer)


class SnapshotOverlay:
    """Version-indexed copy-on-write snapshots; the executor's VertexOverlay.

    ``resolve(label, row, name, version)`` returns the property value as of
    *version*: the pre-image captured by the oldest write committed after
    *version*, or "no override" (the live table value is current).
    """

    def __init__(self, pool: MemoryPool | None = None) -> None:
        self._pool = pool if pool is not None else DEFAULT_POOL
        # (label, row) -> parallel lists: commit versions (sorted) + snapshots.
        self._chains: dict[tuple[str, int], tuple[list[int], list[VertexSnapshot]]] = {}
        self._lock = threading.Lock()

    def record(self, snapshot: VertexSnapshot, commit_version: int) -> None:
        """Attach a pre-image: values were *snapshot* before *commit_version*."""
        key = (snapshot.label, snapshot.row)
        with self._lock:
            versions, snapshots = self._chains.setdefault(key, ([], []))
            idx = bisect.bisect_left(versions, commit_version)
            versions.insert(idx, commit_version)
            snapshots.insert(idx, snapshot)

    def resolve(self, label: str, row: int, name: str, version: int) -> tuple[bool, Any]:
        chain = self._chains.get((label, row))
        if chain is None:
            return False, None
        versions, snapshots = chain
        # The oldest commit strictly newer than the reader's snapshot holds
        # the value the reader must see.
        idx = bisect.bisect_right(versions, version)
        if idx >= len(versions):
            return False, None
        return snapshots[idx].get(name)

    def prune(self, before_version: int) -> int:
        """Drop snapshots no reader at >= *before_version* can need.

        Returns the number of snapshots released (their pooled buffers go
        back to the memory pool).
        """
        released = 0
        with self._lock:
            for key in list(self._chains):
                versions, snapshots = self._chains[key]
                keep = bisect.bisect_right(versions, before_version)
                for snapshot in snapshots[:keep]:
                    snapshot.release()
                    released += 1
                if keep:
                    self._chains[key] = (versions[keep:], snapshots[keep:])
                if not self._chains[key][0]:
                    del self._chains[key]
        return released

    def overridden_vertices(self) -> list[tuple[str, int]]:
        """(label, row) pairs currently carrying at least one pre-image.

        Used by the shared-memory snapshot exporter: these are exactly the
        vertices whose exported property values may need patching back to
        the pinned version via :meth:`resolve`.
        """
        with self._lock:
            return list(self._chains)

    @property
    def snapshot_count(self) -> int:
        with self._lock:
            return sum(len(v[0]) for v in self._chains.values())
