"""Transactions: MV2PL with copy-on-write vertex versioning (paper §5).

Write queries declare their write sets up front (LDBC updates are blind
inserts with known targets), lock them vertex-level through the
:class:`~repro.txn.locks.LockManager`, stage their mutations, and apply
them atomically at commit under the allocated commit version.  Read
queries never block: they pin the current version and run against a
:class:`~repro.storage.graph.GraphReadView` that combines the live tables
with the copy-on-write snapshots of concurrently modified vertices.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..durability.hooks import crashpoint
from ..errors import TransactionAborted, TransactionError
from ..storage.graph import GraphReadView, GraphStore, VertexRef
from ..storage.memory_pool import DEFAULT_POOL, MemoryPool
from .locks import LockKey, LockManager
from .snapshot import SnapshotOverlay, VertexSnapshot
from .version import VersionManager


@dataclass
class _StagedVertex:
    label: str
    properties: dict[str, Any]


@dataclass
class _StagedEdge:
    edge_label: str
    src: VertexRef
    dst: VertexRef
    props: dict[str, Any] = field(default_factory=dict)
    delete: bool = False


@dataclass
class _StagedPropertyWrite:
    label: str
    row: int
    name: str
    value: Any


class TransactionManager:
    """Factory and coordinator for transactions over one graph store."""

    def __init__(self, store: GraphStore, pool: MemoryPool | None = None) -> None:
        self.store = store
        self.pool = pool if pool is not None else DEFAULT_POOL
        self.versions = VersionManager()
        self.locks = LockManager()
        self.overlay = SnapshotOverlay(self.pool)
        self._commit_guard = threading.Lock()
        #: Optional :class:`repro.durability.DurabilityManager`.  When set
        #: (by the engine service), every commit is WAL-logged *before* its
        #: mutations apply; when None (the default) commits are in-memory
        #: only and the write path pays a single attribute check.
        self.wal = None

    def begin(self) -> "Transaction":
        return Transaction(self)

    def read_view(self) -> GraphReadView:
        """Snapshot read view at the current version (non-blocking)."""
        return self.store.read_view(self.versions.current(), self.overlay)

    def latest_view(self) -> GraphReadView:
        """Unversioned view (single-threaded fast path, no MVCC filtering)."""
        return self.store.read_view(None)

    def prune_snapshots(self) -> int:
        """Garbage-collect pre-images older than the current version."""
        return self.overlay.prune(self.versions.current())


class Transaction:
    """One write transaction: stage, lock, commit."""

    def __init__(self, manager: TransactionManager) -> None:
        self.manager = manager
        self.snapshot_version = manager.versions.current()
        self._new_vertices: list[_StagedVertex] = []
        self._new_vertex_refs: list[VertexRef | None] = []
        self._edges: list[_StagedEdge] = []
        self._property_writes: list[_StagedPropertyWrite] = []
        self._held_locks: list[LockKey] = []
        self._done = False

    # -- read side -----------------------------------------------------------

    def read_view(self) -> GraphReadView:
        return self.manager.store.read_view(self.snapshot_version, self.manager.overlay)

    # -- staging ---------------------------------------------------------------

    def add_vertex(self, label: str, properties: Mapping[str, Any]) -> int:
        """Stage a vertex insert; returns a handle usable in add_edge via
        :meth:`staged_vertex`."""
        self._check_open()
        self._new_vertices.append(_StagedVertex(label, dict(properties)))
        self._new_vertex_refs.append(None)
        return len(self._new_vertices) - 1

    def staged_vertex(self, handle: int) -> VertexRef:
        """VertexRef of a staged insert — only valid after commit applies it."""
        ref = self._new_vertex_refs[handle]
        if ref is None:
            raise TransactionError("staged vertex not applied yet")
        return ref

    def add_edge(
        self,
        edge_label: str,
        src: VertexRef | int,
        dst: VertexRef | int,
        props: Mapping[str, Any] | None = None,
    ) -> None:
        """Stage an edge insert; endpoints may be staged-vertex handles."""
        self._check_open()
        self._edges.append(
            _StagedEdge(edge_label, src, dst, dict(props or {}))  # type: ignore[arg-type]
        )

    def remove_edge(self, edge_label: str, src: VertexRef, dst: VertexRef) -> None:
        self._check_open()
        self._edges.append(_StagedEdge(edge_label, src, dst, delete=True))

    def set_vertex_property(self, label: str, row: int, name: str, value: Any) -> None:
        self._check_open()
        self._property_writes.append(_StagedPropertyWrite(label, row, name, value))

    # -- write set / locking -----------------------------------------------------

    def write_set(self) -> list[LockKey]:
        """Vertex-level lock keys this transaction will touch (known upfront)."""
        keys: set[LockKey] = set()
        for edge in self._edges:
            for endpoint in (edge.src, edge.dst):
                if isinstance(endpoint, VertexRef):
                    keys.add((endpoint.label, endpoint.row))
        for write in self._property_writes:
            keys.add((write.label, write.row))
        return sorted(keys)

    def lock_write_set(self, timeout: float | None = None) -> None:
        """Acquire all write locks (2PL growing phase)."""
        self._check_open()
        self._held_locks = self.manager.locks.acquire_all(self.write_set(), timeout)

    # -- terminal ------------------------------------------------------------------

    def commit(self) -> int:
        """Apply staged mutations atomically; returns the commit version."""
        self._check_open()
        manager = self.manager
        store = manager.store
        if not self._held_locks and (self._edges or self._property_writes):
            self.lock_write_set()
        try:
            with manager._commit_guard:
                commit_version = manager.versions.next_commit()
                # Write-ahead: the commit record must be durable (or at
                # least handed to the log) before any mutation applies.
                if manager.wal is not None:
                    manager.wal.log_commit(self, commit_version)
                # Copy-on-write pre-images for every property-modified vertex.
                touched: set[tuple[str, int]] = {
                    (w.label, w.row) for w in self._property_writes
                }
                for label, row in touched:
                    snapshot = VertexSnapshot(store.table(label), row, manager.pool)
                    manager.overlay.record(snapshot, commit_version)
                # Vertex inserts (stamped so older snapshots don't see them).
                for handle, staged in enumerate(self._new_vertices):
                    ref = store.add_vertex(staged.label, staged.properties)
                    store.table(staged.label).mark_created(ref.row, commit_version)
                    self._new_vertex_refs[handle] = ref
                # Property writes (in place; readers use the overlay).
                for write in self._property_writes:
                    store.table(write.label).set_property(write.row, write.name, write.value)
                # Edge inserts/deletes with version stamps.
                for edge in self._edges:
                    src = self._resolve_endpoint(edge.src)
                    dst = self._resolve_endpoint(edge.dst)
                    if edge.delete:
                        store.remove_edge(edge.edge_label, src, dst, version=commit_version)
                    else:
                        store.add_edge(
                            edge.edge_label, src, dst, edge.props, version=commit_version
                        )
                crashpoint("commit.applied")
            return commit_version
        finally:
            self.manager.locks.release_all(self._held_locks)
            self._held_locks = []
            self._done = True

    @property
    def done(self) -> bool:
        """Whether this transaction already committed or aborted."""
        return self._done

    def abort(self) -> None:
        """Discard staged mutations (nothing was applied yet)."""
        self.manager.locks.release_all(self._held_locks)
        self._held_locks = []
        self._done = True

    def _resolve_endpoint(self, endpoint: VertexRef | int) -> VertexRef:
        if isinstance(endpoint, VertexRef):
            return endpoint
        ref = self._new_vertex_refs[endpoint]
        if ref is None:
            raise TransactionAborted("edge references an unapplied staged vertex")
        return ref

    def _check_open(self) -> None:
        if self._done:
            raise TransactionError("transaction already finished")
