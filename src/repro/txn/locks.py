"""Vertex-level lock table for MV2PL (paper §5).

The paper maintains "coarse-grained versions at the vertex level rather
than at the edge level"; locking follows the same granularity.  Writers
acquire exclusive locks on every vertex in their write set, in a global
sort order (so two writers can never deadlock), and hold them until commit.
Readers never lock — MV2PL reads are non-blocking snapshot reads.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..errors import LockTimeout
from ..resilience import faults

#: A lockable resource: (vertex label, row index).
LockKey = tuple[str, int]


class LockManager:
    """Exclusive per-vertex locks with ordered acquisition."""

    def __init__(self, default_timeout: float = 5.0) -> None:
        self._locks: dict[LockKey, threading.Lock] = {}
        self._guard = threading.Lock()
        self._default_timeout = default_timeout

    def _lock_for(self, key: LockKey) -> threading.Lock:
        with self._guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = threading.Lock()
                self._locks[key] = lock
            return lock

    def acquire_all(
        self, keys: Iterable[LockKey], timeout: float | None = None
    ) -> list[LockKey]:
        """Lock every key (sorted, so concurrent writers cannot deadlock).

        Returns the acquired keys; on timeout releases everything taken so
        far and raises :class:`LockTimeout`.
        """
        timeout = self._default_timeout if timeout is None else timeout
        # The fault site sits before the first lock is taken, so an
        # injected failure behaves exactly like an immediate timeout: no
        # lock held, the transaction still open and re-committable.
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("locks.acquire")
        ordered = sorted(set(keys))
        taken: list[LockKey] = []
        for key in ordered:
            lock = self._lock_for(key)
            if not lock.acquire(timeout=timeout):
                self.release_all(taken)
                raise LockTimeout(f"could not lock {key} within {timeout}s")
            taken.append(key)
        return taken

    def release_all(self, keys: Iterable[LockKey]) -> None:
        for key in keys:
            lock = self._locks.get(key)
            if lock is not None and lock.locked():
                lock.release()

    def is_locked(self, key: LockKey) -> bool:
        lock = self._locks.get(key)
        return lock is not None and lock.locked()
