"""Engine configuration: which modules each GES instance composes.

The three configurations evaluated in the paper:

* :meth:`EngineConfig.ges` — flat intermediate results (baseline GES);
* :meth:`EngineConfig.ges_f` — factorized executor (GES_f);
* :meth:`EngineConfig.ges_f_star` — factorized + operator fusion (GES_f*).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Module selection plus runtime knobs for one engine instance."""

    name: str = "GES_f*"
    executor: str = "factorized"  # execution.executor module
    optimizer: str = "fusion"  # execution.optimizer module
    primitives: str = "f-tree"  # execution.primitives module
    parser: str = "cypher"  # frontend.parser module
    storage_backend: str = "adjacency-inmemory"
    workers: int = 1  # worker processes for pooled execution (1 = in-process)
    # --- pooled-execution knobs (repro.parallel; active when workers > 1) ---
    partitions: int = 0  # scatter partitions per query (0 = one per worker)
    partition_kind: str = "range"  # "range" (byte-identical) | "hash"
    scatter_min_rows: int = 64  # below this source size, skip scatter
    pool_task_timeout_ms: float = 120_000.0  # pipe-level backstop per task
    plan_cache: bool = True  # cache compiled physical plans (ablation knob)
    plan_cache_size: int = 128  # LRU capacity when the cache is enabled
    tracing: bool = False  # per-query span trees (repro.obs.tracing)
    metrics: bool = True  # engine-level instruments (repro.obs.metrics)
    flight_recorder: int = 64  # last-N query ring size (0 disables)
    slow_query_ms: float = 50.0  # pin queries slower than this in the slow ring
    # --- resilience knobs (repro.resilience; all off by default except the
    # --- degradation ladder, which only changes what happens on failure) ---
    query_timeout_ms: float = 0.0  # per-query deadline (0 = unbounded)
    max_concurrent_queries: int = 0  # admission concurrency limit (0 = off)
    admission_queue_limit: int = 0  # bounded wait queue depth (0 = no queue)
    admission_queue_timeout_ms: float = 100.0  # max wait for an admission slot
    memory_budget_bytes: int = 0  # estimated-memory admission budget (0 = off)
    retry_attempts: int = 0  # total attempts for retryable errors (0/1 = off)
    retry_backoff_ms: float = 1.0  # base backoff before the first retry
    retry_seed: int = 0  # seed for deterministic retry jitter
    degrade: bool = True  # graceful degradation ladder (executor fallback, …)
    # --- durability knobs (repro.durability; off by default — in-memory) ---
    durability: str | None = None  # None (off) | "fsync" | "batch" WAL mode
    wal_batch_every: int = 8  # batch mode: fsync every N commit appends
    checkpoint_keep: int = 2  # checkpoints retained (older ones pruned)

    @classmethod
    def ges(
        cls,
        workers: int = 1,
        plan_cache: bool = True,
        tracing: bool = False,
        metrics: bool = True,
        flight_recorder: int = 64,
        slow_query_ms: float = 50.0,
        **knobs,
    ) -> "EngineConfig":
        """The flat baseline variant (paper: GES)."""
        return cls(
            name="GES",
            executor="flat",
            optimizer="none",
            primitives="flat-block",
            workers=workers,
            plan_cache=plan_cache,
            tracing=tracing,
            metrics=metrics,
            flight_recorder=flight_recorder,
            slow_query_ms=slow_query_ms,
            **knobs,
        )

    @classmethod
    def ges_f(
        cls,
        workers: int = 1,
        plan_cache: bool = True,
        tracing: bool = False,
        metrics: bool = True,
        flight_recorder: int = 64,
        slow_query_ms: float = 50.0,
        **knobs,
    ) -> "EngineConfig":
        """The factorized variant without fusion (paper: GES_f)."""
        return cls(
            name="GES_f",
            executor="factorized",
            optimizer="none",
            workers=workers,
            plan_cache=plan_cache,
            tracing=tracing,
            metrics=metrics,
            flight_recorder=flight_recorder,
            slow_query_ms=slow_query_ms,
            **knobs,
        )

    @classmethod
    def ges_f_star(
        cls,
        workers: int = 1,
        plan_cache: bool = True,
        tracing: bool = False,
        metrics: bool = True,
        flight_recorder: int = 64,
        slow_query_ms: float = 50.0,
        **knobs,
    ) -> "EngineConfig":
        """The factorized variant with operator fusion (paper: GES_f*)."""
        return cls(
            name="GES_f*",
            executor="factorized",
            optimizer="fusion",
            workers=workers,
            plan_cache=plan_cache,
            tracing=tracing,
            metrics=metrics,
            flight_recorder=flight_recorder,
            slow_query_ms=slow_query_ms,
            **knobs,
        )


#: All three paper variants, in ablation order.
ALL_VARIANTS = (EngineConfig.ges(), EngineConfig.ges_f(), EngineConfig.ges_f_star())
