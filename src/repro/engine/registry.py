"""The composable module registry (paper §2.1, Figure 1).

GES follows the composable-data-systems design: each layer (frontend,
execution engine, graph storage) accommodates multiple components, each
component multiple modules, and "GES can be configured as a specific graph
data management system by selecting modules from different layers and
registering them during development".

:class:`ModuleRegistry` is that mechanism: modules are registered under
``layer.component`` slots and an :class:`~repro.engine.config.EngineConfig`
selects one module per slot.  The built-in modules registered in
:func:`default_registry` cover everything this reproduction implements;
tests exercise registering custom modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import GesError


@dataclass(frozen=True)
class ModuleKey:
    layer: str  # "frontend" | "execution" | "storage"
    component: str  # e.g. "executor", "primitives", "parser"
    name: str  # module name within the component

    def slot(self) -> tuple[str, str]:
        return (self.layer, self.component)


class ModuleRegistry:
    """Registry of pluggable modules, keyed by layer/component/name."""

    LAYERS = ("frontend", "execution", "storage")

    def __init__(self) -> None:
        self._modules: dict[tuple[str, str], dict[str, Any]] = {}

    def register(self, layer: str, component: str, name: str, module: Any) -> None:
        """Register *module* (any factory or callable) under a slot."""
        if layer not in self.LAYERS:
            raise GesError(f"unknown layer {layer!r}; expected one of {self.LAYERS}")
        slot = (layer, component)
        modules = self._modules.setdefault(slot, {})
        if name in modules:
            raise GesError(f"module {layer}.{component}.{name} already registered")
        modules[name] = module

    def resolve(self, layer: str, component: str, name: str) -> Any:
        slot = (layer, component)
        try:
            return self._modules[slot][name]
        except KeyError:
            available = sorted(self._modules.get(slot, {}))
            raise GesError(
                f"no module {name!r} in {layer}.{component}; available: {available}"
            ) from None

    def available(self, layer: str, component: str) -> list[str]:
        return sorted(self._modules.get((layer, component), {}))

    def describe(self) -> dict[str, list[str]]:
        """Human-readable inventory: 'layer.component' -> module names."""
        return {
            f"{layer}.{component}": sorted(modules)
            for (layer, component), modules in sorted(self._modules.items())
        }


def default_registry() -> ModuleRegistry:
    """Registry pre-populated with every built-in module."""
    from ..exec.factorized import execute_factorized
    from ..exec.flat import execute_flat
    from ..frontend.cypher import compile_cypher
    from ..plan.optimizer import DEFAULT_RULES, optimize

    registry = ModuleRegistry()
    # Frontend layer.
    registry.register("frontend", "parser", "cypher", compile_cypher)
    # Execution layer: primitives (data representation during execution).
    registry.register("execution", "primitives", "flat-block", "flat-block")
    registry.register("execution", "primitives", "f-tree", "f-tree")
    # Execution layer: executors.
    registry.register("execution", "executor", "flat", execute_flat)
    registry.register("execution", "executor", "factorized", execute_factorized)
    # Execution layer: optimizers.
    registry.register("execution", "optimizer", "none", lambda plan: plan)
    registry.register(
        "execution", "optimizer", "fusion", lambda plan: optimize(plan, DEFAULT_RULES)
    )
    # Storage layer.
    registry.register("storage", "backend", "adjacency-inmemory", "adjacency-inmemory")
    return registry
