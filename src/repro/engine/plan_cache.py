"""Parameterized query plan cache for the engine service.

The LDBC SNB workload — like most production graph-service traffic — is a
small set of parameterized query templates fired over and over, so the
parse → bind → optimize pipeline is pure overhead on every operation after
the first.  :class:`PlanCache` amortizes it: a bounded LRU mapping

    (query fingerprint, parser, optimizer, schema fingerprint) → physical plan

Caching a *physical* plan across executions is safe here because parameters
(:class:`~repro.plan.expressions.Param`) are bound at execution time, plans
are immutable once built (no executor mutates an op), and the schema
fingerprint in the key pins the catalog the plan was compiled against —
a schema change makes every old key unreachable, and the service
additionally drops the whole cache the first time it notices a new
fingerprint.

Two kinds of query keys exist:

* Cypher text — the text itself is the fingerprint (cheap and exact);
* pre-built :class:`~repro.plan.logical.LogicalPlan` objects (the LDBC
  query templates) — :func:`plan_fingerprint` derives a structural key.
  Plans embedding non-scalar literal payloads (e.g. a ``Lit`` holding an
  array computed by a previous stage) are **uncacheable**: their repr is
  not guaranteed to round-trip the payload, so caching them could alias
  two different plans.  ``plan_fingerprint`` returns ``None`` for those
  and the service compiles them normally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from ..resilience import faults
from ..plan.expressions import Expr, Lit
from ..plan.logical import AggSpec, LogicalOp, LogicalPlan
from ..storage.catalog import Direction

#: Literal payload types whose repr is exact and stable.
_SCALAR_TYPES = (bool, int, float, str, bytes, type(None), np.generic)


def _value_key(value: Any) -> str | None:
    """Stable structural key of one op/expr attribute, or None (uncacheable)."""
    if isinstance(value, Expr):
        return _expr_key(value)
    if isinstance(value, LogicalOp):
        return _node_key(value)
    if isinstance(value, AggSpec):
        return _node_key(value)
    if isinstance(value, Direction):
        return f"Direction.{value.name}"
    if isinstance(value, _SCALAR_TYPES):
        return repr(value)
    if isinstance(value, (list, tuple)):
        parts = [_value_key(v) for v in value]
        if any(p is None for p in parts):
            return None
        return f"[{','.join(parts)}]"  # type: ignore[arg-type]
    if isinstance(value, dict):
        parts = []
        for k in sorted(value, key=repr):
            sub = _value_key(value[k])
            if sub is None:
                return None
            parts.append(f"{k!r}:{sub}")
        return f"{{{','.join(parts)}}}"
    return None


def _expr_key(expr: Expr) -> str | None:
    if isinstance(expr, Lit) and not isinstance(expr.value, _SCALAR_TYPES):
        return None  # data-bearing literal: repr may truncate/alias
    return _node_key(expr)


def _node_key(node: Any) -> str | None:
    """Key an op/expr/spec from its instance state (all are plain objects)."""
    parts = []
    for name in sorted(vars(node)):
        sub = _value_key(vars(node)[name])
        if sub is None:
            return None
        parts.append(f"{name}={sub}")
    return f"{type(node).__name__}({','.join(parts)})"


_MISSING = object()


def plan_fingerprint(plan: LogicalPlan) -> str | None:
    """Structural fingerprint of a logical plan, or None when uncacheable.

    Two invocations of the same parameterized query template build plans
    with identical fingerprints (parameters live behind ``Param`` nodes);
    plans that embed per-invocation data in literals fingerprint to None.

    The result is memoized on the plan instance, so prepared templates
    (one :class:`LogicalPlan` reused across executions) pay the structural
    walk exactly once.  Plans must not be mutated after first execution —
    nothing in the engine does.
    """
    cached = getattr(plan, "_fingerprint", _MISSING)
    if cached is not _MISSING:
        return cached  # type: ignore[return-value]
    ops = [_node_key(op) for op in plan.ops]
    if any(k is None for k in ops):
        fingerprint: str | None = None
    else:
        returns = "None" if plan.returns is None else ",".join(plan.returns)
        fingerprint = f"{';'.join(ops)}|returns={returns}"  # type: ignore[arg-type]
    plan._fingerprint = fingerprint  # type: ignore[attr-defined]
    return fingerprint


@dataclass
class PlanCacheStats:
    """Cumulative cache counters (monotonic over the cache's lifetime)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Bounded LRU of compiled physical plans."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[Hashable, LogicalPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> LogicalPlan | None:
        """The cached physical plan for *key*, refreshing its LRU position.

        Fault site ``plan_cache.lookup``: an injected failure here raises
        ``TransientError``, which the service degrades to an uncached
        compile (the cache is an optimization, never required).
        """
        if faults.ACTIVE is not None:
            faults.ACTIVE.fire("plan_cache.lookup")
        plan = self._entries.get(key)
        if plan is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return plan

    def store(self, key: Hashable, plan: LogicalPlan) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (schema change); returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += 1
        return dropped

    def describe(self) -> dict[str, Any]:
        """Summary for ``GES.describe()`` and the CLI."""
        return {
            "enabled": True,
            "size": len(self._entries),
            "capacity": self.capacity,
            **self.stats.as_dict(),
        }
