"""The Graph Engine Service facade — the library's main entry point.

A :class:`GraphEngineService` (aliased :class:`GES`) composes modules from
the registry according to its :class:`~repro.engine.config.EngineConfig`,
owns the graph store and transaction manager, and executes queries given as
Cypher text or pre-built logical plans.

Typical use::

    from repro import GES, EngineConfig

    ges = GES(schema, config=EngineConfig.ges_f_star())
    ges.load(...)                       # or mutate via ges.transaction()
    result = ges.execute(
        "MATCH (p:Person)-[:KNOWS*1..2]->(f) WHERE id(p) = $pid "
        "RETURN id(f) ORDER BY id(f) LIMIT 10",
        {"pid": 42},
    )
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..exec.base import ExecStats, QueryResult
from ..plan.logical import LogicalPlan
from ..storage.catalog import GraphSchema
from ..storage.graph import GraphReadView, GraphStore
from ..storage.memory_pool import MemoryPool
from ..txn.transaction import Transaction, TransactionManager
from .config import EngineConfig
from .plan_cache import PlanCache, plan_fingerprint
from .registry import ModuleRegistry, default_registry


class GraphEngineService:
    """One configured GES instance over one graph."""

    def __init__(
        self,
        schema: GraphSchema | GraphStore,
        config: EngineConfig | None = None,
        registry: ModuleRegistry | None = None,
        pool: MemoryPool | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig.ges_f_star()
        self.registry = registry if registry is not None else default_registry()
        if isinstance(schema, GraphStore):
            self.store = schema
        else:
            self.store = GraphStore(schema)
        self.txn_manager = TransactionManager(self.store, pool)
        self._parse = self.registry.resolve("frontend", "parser", self.config.parser)
        self._execute = self.registry.resolve(
            "execution", "executor", self.config.executor
        )
        self._optimize = self.registry.resolve(
            "execution", "optimizer", self.config.optimizer
        )
        self.plan_cache: PlanCache | None = (
            PlanCache(self.config.plan_cache_size) if self.config.plan_cache else None
        )
        self._schema_fingerprint = self.store.schema.fingerprint()

    # -- queries --------------------------------------------------------------

    def compile(self, query: str) -> LogicalPlan:
        """Parse + bind Cypher text (without optimizing or executing)."""
        logical, _ = self._compile_stages(query)
        return logical

    def _compile_stages(self, query: str) -> tuple[LogicalPlan, dict[str, float]]:
        """Parse + bind with per-stage timings.

        The built-in Cypher frontend is timed per stage (parse vs bind);
        custom parser modules are opaque, so they land under ``parse``.
        """
        if self.config.parser == "cypher":
            from ..frontend.cypher import Binder, parse_cypher

            started = time.perf_counter()
            tree = parse_cypher(query)
            parsed = time.perf_counter()
            logical = Binder(self.store.schema).bind(tree)
            bound = time.perf_counter()
            return logical, {"parse": parsed - started, "bind": bound - parsed}
        started = time.perf_counter()
        logical = self._parse(query, self.store.schema)
        return logical, {"parse": time.perf_counter() - started}

    def _cache_key(self, query: str | LogicalPlan) -> tuple[Any, ...] | None:
        """Plan-cache key for *query*, or None when it must not be cached.

        A changed schema fingerprint drops the whole cache first, so stale
        plans can never be served after DDL.
        """
        if self.plan_cache is None:
            return None
        fingerprint = self.store.schema.fingerprint()
        if fingerprint != self._schema_fingerprint:
            self.plan_cache.invalidate()
            self._schema_fingerprint = fingerprint
        if isinstance(query, str):
            query_key: str | None = query
        else:
            query_key = plan_fingerprint(query)
        if query_key is None:
            return None
        return (query_key, self.config.parser, self.config.optimizer, fingerprint)

    def plan(
        self, query: str | LogicalPlan, stats: ExecStats | None = None
    ) -> LogicalPlan:
        """The physical pipeline this instance would run for *query*.

        Served from the plan cache when possible; compile timings and the
        cache outcome are recorded into *stats* when given.
        """
        started = time.perf_counter()
        key = self._cache_key(query)
        if key is not None:
            cached = self.plan_cache.lookup(key)  # type: ignore[union-attr]
            if cached is not None:
                if stats is not None:
                    stats.record_compile(
                        time.perf_counter() - started, cache_hit=True
                    )
                return cached
        if isinstance(query, str):
            logical, stages = self._compile_stages(query)
        else:
            logical, stages = query, {}
        optimize_started = time.perf_counter()
        physical = self._optimize(logical)
        stages["optimize"] = time.perf_counter() - optimize_started
        if key is not None:
            self.plan_cache.store(key, physical)  # type: ignore[union-attr]
        if stats is not None:
            stats.record_compile(
                time.perf_counter() - started,
                stages,
                cache_hit=False if self.plan_cache is not None else None,
            )
        return physical

    def execute(
        self,
        query: str | LogicalPlan,
        params: Mapping[str, Any] | None = None,
        view: GraphReadView | None = None,
        stats: ExecStats | None = None,
    ) -> QueryResult:
        """Run a query and return its rows plus execution statistics.

        Reads run against a snapshot view when any write has committed
        (non-blocking MV2PL reads); before the first write the unversioned
        fast path is used.
        """
        if stats is None:
            stats = ExecStats()
        physical = self.plan(query, stats=stats)
        if view is None:
            view = self.read_view()
        return self._execute(physical, view, params, stats)

    def explain(self, query: str | LogicalPlan) -> str:
        """A human-readable description of the physical pipeline.

        One line per operator, marking the fused operators this
        configuration's optimizer produced.
        """
        from ..plan.logical import (
            AggregateTopK,
            Expand,
            Filter,
            TopK,
            VertexExpand,
            plan_summary,
        )

        physical = self.plan(query)
        lines = [f"physical plan ({self.config.name}): {plan_summary(physical)}"]
        for i, op in enumerate(physical.ops):
            detail = ""
            if isinstance(op, Expand):
                detail = f" {op.from_var}-[:{op.edge_label}]-{op.to_var}"
                if op.is_multi_hop:
                    detail += f" *{op.min_hops}..{op.max_hops}"
                if op.neighbor_filter is not None:
                    detail += " [fused filter]"
            elif isinstance(op, VertexExpand):
                detail = f" seek {op.seek_var} + expand [fused]"
            elif isinstance(op, (TopK, AggregateTopK)):
                detail = f" n={op.n} [fused]"
            elif isinstance(op, Filter):
                detail = f" {op.expr!r}"
            lines.append(f"  {i + 1}. {op.op_name}{detail}")
        return "\n".join(lines)

    # -- views & transactions ------------------------------------------------------

    def read_view(self) -> GraphReadView:
        """The view queries run against: snapshot once writes exist."""
        if self.txn_manager.versions.current() > 0:
            return self.txn_manager.read_view()
        return self.txn_manager.latest_view()

    def transaction(self) -> Transaction:
        """Begin a write transaction (MV2PL; see :mod:`repro.txn`)."""
        return self.txn_manager.begin()

    # -- introspection ---------------------------------------------------------------

    @property
    def variant(self) -> str:
        """Which paper variant this configuration corresponds to."""
        return self.config.name

    def describe(self) -> dict[str, Any]:
        """Human-readable engine/module/graph summary."""
        return {
            "variant": self.config.name,
            "executor": self.config.executor,
            "optimizer": self.config.optimizer,
            "primitives": self.config.primitives,
            "vertices": self.store.vertex_count,
            "edges": self.store.edge_count,
            "plan_cache": (
                self.plan_cache.describe()
                if self.plan_cache is not None
                else {"enabled": False}
            ),
            "modules": self.registry.describe(),
        }


#: Short alias used throughout examples and benchmarks.
GES = GraphEngineService


def open_all_variants(store: GraphStore) -> dict[str, GraphEngineService]:
    """The three paper variants sharing one store (ablation harness)."""
    return {
        "GES": GraphEngineService(store, EngineConfig.ges()),
        "GES_f": GraphEngineService(store, EngineConfig.ges_f()),
        "GES_f*": GraphEngineService(store, EngineConfig.ges_f_star()),
    }
