"""The Graph Engine Service facade — the library's main entry point.

A :class:`GraphEngineService` (aliased :class:`GES`) composes modules from
the registry according to its :class:`~repro.engine.config.EngineConfig`,
owns the graph store and transaction manager, and executes queries given as
Cypher text or pre-built logical plans.

Typical use::

    from repro import GES, EngineConfig

    ges = GES(schema, config=EngineConfig.ges_f_star())
    ges.load(...)                       # or mutate via ges.transaction()
    result = ges.execute(
        "MATCH (p:Person)-[:KNOWS*1..2]->(f) WHERE id(p) = $pid "
        "RETURN id(f) ORDER BY id(f) LIMIT 10",
        {"pid": 42},
    )
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Mapping

from typing import Callable, TypeVar

from ..errors import AdmissionRejected, GesError, QueryTimeout, StorageError
from ..exec.base import ExecStats, QueryResult
from ..obs.clock import now
from ..obs.events import EVENTS
from ..obs.flightrec import FlightRecorder
from ..obs.metrics import REGISTRY
from ..obs.tracing import Span
from ..plan.logical import LogicalPlan
from ..resilience.admission import AdmissionController
from ..resilience.degrade import with_fallback
from ..resilience.retry import RetryPolicy
from ..resilience.watchdog import Deadline, pop_deadline, push_deadline
from ..storage.catalog import GraphSchema
from ..storage.graph import GraphReadView, GraphStore
from ..storage.memory_pool import MemoryPool
from ..txn.transaction import Transaction, TransactionManager
from .config import EngineConfig
from .plan_cache import PlanCache, plan_fingerprint
from .registry import ModuleRegistry, default_registry

T = TypeVar("T")

#: EWMA weight of the newest observation when updating the per-engine
#: estimate of a query's peak intermediate footprint (admission control).
_MEM_EWMA_ALPHA = 0.2


class GraphEngineService:
    """One configured GES instance over one graph."""

    def __init__(
        self,
        schema: GraphSchema | GraphStore,
        config: EngineConfig | None = None,
        registry: ModuleRegistry | None = None,
        pool: MemoryPool | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig.ges_f_star()
        self.registry = registry if registry is not None else default_registry()
        if isinstance(schema, GraphStore):
            self.store = schema
        else:
            self.store = GraphStore(schema)
        self.txn_manager = TransactionManager(self.store, pool)
        self._parse = self.registry.resolve("frontend", "parser", self.config.parser)
        self._execute = self.registry.resolve(
            "execution", "executor", self.config.executor
        )
        self._optimize = self.registry.resolve(
            "execution", "optimizer", self.config.optimizer
        )
        self.plan_cache: PlanCache | None = (
            PlanCache(self.config.plan_cache_size) if self.config.plan_cache else None
        )
        self._schema_fingerprint = self.store.schema.fingerprint()
        self.flight: FlightRecorder | None = (
            FlightRecorder(self.config.flight_recorder, self.config.slow_query_ms)
            if self.config.flight_recorder > 0
            else None
        )
        # Degradation ladder: a factorized executor gets the flat executor
        # pre-resolved as its fallback rung (resolution is init-time; the
        # query path only ever sees a bound callable or None).
        self._fallback_execute = (
            self.registry.resolve("execution", "executor", "flat")
            if self.config.degrade and self.config.executor == "factorized"
            else None
        )
        self.retry_policy: RetryPolicy | None = (
            RetryPolicy(
                attempts=self.config.retry_attempts,
                backoff_ms=self.config.retry_backoff_ms,
                seed=self.config.retry_seed,
            )
            if self.config.retry_attempts > 1
            else None
        )
        pool_ref = self.txn_manager.pool
        self.admission: AdmissionController | None = (
            AdmissionController(
                max_concurrent=self.config.max_concurrent_queries,
                queue_limit=self.config.admission_queue_limit,
                queue_timeout_ms=self.config.admission_queue_timeout_ms,
                memory_budget_bytes=self.config.memory_budget_bytes,
                pool_bytes=lambda: pool_ref.pooled_bytes,
            )
            if self.config.max_concurrent_queries > 0
            or self.config.memory_budget_bytes > 0
            else None
        )
        #: EWMA of observed peak intermediate bytes — the admission
        #: controller's estimate of what the next query will need.
        self._mem_ewma = 0.0
        # Pooled execution (repro.parallel): read queries route to a
        # shared-memory worker pool when workers > 1; in-process otherwise.
        if self.config.workers > 1:
            from ..parallel import ParallelCoordinator

            self.parallel: Any = ParallelCoordinator(self)
        else:
            self.parallel = None
        #: :class:`repro.durability.DurabilityManager` when this engine is
        #: backed by a durable directory (see :meth:`open`); None otherwise.
        self.durability: Any = None
        #: Forensics of the recovery that produced this engine, when opened
        #: from an existing database directory.
        self.recovery: Any = None
        self._init_metrics()

    @classmethod
    def open(
        cls,
        path: str | Path,
        config: EngineConfig | None = None,
        registry: ModuleRegistry | None = None,
        pool: MemoryPool | None = None,
        schema: GraphSchema | GraphStore | None = None,
    ) -> "GraphEngineService":
        """Open a durable database directory — or create one from *schema*.

        When *path* already holds a database, recovery runs first: the
        newest checkpoint whose manifest verifies is loaded and the WAL
        tail replays up to the first torn record (see
        :mod:`repro.durability.recovery`); the recovered engine exposes
        the forensic account as ``service.recovery``.  When *path* is
        fresh, *schema* seeds checkpoint epoch 0.

        Every subsequent :meth:`transaction` commit is WAL-logged before
        it applies, in ``config.durability`` mode (``"fsync"`` unless set;
        ``EngineConfig(durability=None)`` still means durable here —
        opening a database directory *is* opting in).
        """
        from ..durability import DurabilityManager, recover

        config = config if config is not None else EngineConfig.ges_f_star()
        mode = config.durability or "fsync"
        config = dataclasses.replace(config, durability=mode)
        db = Path(path)
        if (db / "GESDB.json").exists():
            result = recover(db)
            service = cls(result.store, config=config, registry=registry, pool=pool)
            service.txn_manager.versions.advance_to(result.version)
            service.durability = DurabilityManager.attach(
                db,
                result,
                mode=mode,
                batch_every=config.wal_batch_every,
                keep=config.checkpoint_keep,
            )
            service.recovery = result
        else:
            if schema is None:
                raise StorageError(
                    f"{db} is not a GES database; pass schema= to create one"
                )
            service = cls(schema, config=config, registry=registry, pool=pool)
            service.durability = DurabilityManager.initialise(
                db,
                service.store,
                mode=mode,
                batch_every=config.wal_batch_every,
                keep=config.checkpoint_keep,
            )
        service.txn_manager.wal = service.durability
        return service

    def checkpoint(self) -> Any:
        """Fold the WAL into a fresh checkpoint at the current version.

        Takes the commit guard, so the snapshot is a transaction boundary:
        no commit is ever half-in.  Requires a durable engine
        (:meth:`open`); raises :class:`StorageError` otherwise.
        """
        if self.durability is None:
            raise StorageError("engine has no durability attached; use GES.open")
        with self.txn_manager._commit_guard:
            return self.durability.checkpoint(
                self.store, self.txn_manager.versions.current()
            )

    def _init_metrics(self) -> None:
        """Bind this instance's engine-level instruments (one lookup each,
        so the per-query path touches pre-resolved objects only)."""
        if not self.config.metrics:
            self._m_queries = None
            self._m_timeouts = None
            self._m_rejections = None
            self._m_retries = None
            self._m_degraded = None
            self._m_pooled = None
            self._m_pool_fallbacks = None
            self._m_inflight = None
            return
        variant = self.config.name
        self._m_queries = REGISTRY.counter(
            "ges_queries_total", "Queries served, by engine variant.",
            variant=variant,
        )
        self._m_latency = REGISTRY.histogram(
            "ges_query_seconds", "End-to-end query service time.",
            variant=variant,
        )
        self._m_cache_hits = REGISTRY.counter(
            "ges_plan_cache_hits_total", "Plan-cache hits.", variant=variant
        )
        self._m_cache_misses = REGISTRY.counter(
            "ges_plan_cache_misses_total", "Plan-cache misses.", variant=variant
        )
        self._m_defactor = REGISTRY.counter(
            "ges_defactor_total",
            "Times the factorized executor fell back to a flat block.",
            variant=variant,
        )
        self._m_compression = REGISTRY.histogram(
            "ges_compression_ratio",
            "Flat tuple count / f-Tree slot count at each flattening.",
            lowest=1e-3,
            variant=variant,
        )
        self._m_timeouts = REGISTRY.counter(
            "ges_query_timeouts_total",
            "Queries cancelled by the watchdog deadline.",
            variant=variant,
        )
        self._m_rejections = REGISTRY.counter(
            "ges_admission_rejected_total",
            "Queries refused by the admission controller.",
            variant=variant,
        )
        self._m_retries = REGISTRY.counter(
            "ges_retries_total",
            "Re-attempts of retryable failures (aborts, lock timeouts, transients).",
            variant=variant,
        )
        self._m_degraded = REGISTRY.counter(
            "ges_degraded_queries",
            "Queries answered a rung down the degradation ladder.",
            variant=variant,
        )
        self._m_inflight = REGISTRY.gauge(
            "ges_queries_inflight",
            "Queries currently executing, by engine variant.",
            variant=variant,
        )
        if self.config.workers > 1:
            self._m_pooled = REGISTRY.counter(
                "ges_pooled_queries_total",
                "Queries served on the worker pool.",
                variant=variant,
            )
            self._m_pool_fallbacks = REGISTRY.counter(
                "ges_pooled_fallbacks_total",
                "Pooled queries that fell back to in-process execution.",
                variant=variant,
            )
        else:
            self._m_pooled = None
            self._m_pool_fallbacks = None

    # -- queries --------------------------------------------------------------

    def compile(self, query: str) -> LogicalPlan:
        """Parse + bind Cypher text (without optimizing or executing)."""
        logical, _ = self._compile_stages(query)
        return logical

    def _compile_stages(self, query: str) -> tuple[LogicalPlan, dict[str, float]]:
        """Parse + bind with per-stage timings.

        The built-in Cypher frontend is timed per stage (parse vs bind);
        custom parser modules are opaque, so they land under ``parse``.
        """
        if self.config.parser == "cypher":
            from ..frontend.cypher import Binder, parse_cypher

            started = now()
            tree = parse_cypher(query)
            parsed = now()
            logical = Binder(self.store.schema).bind(tree)
            bound = now()
            return logical, {"parse": parsed - started, "bind": bound - parsed}
        started = now()
        logical = self._parse(query, self.store.schema)
        return logical, {"parse": now() - started}

    def _cache_key(self, query: str | LogicalPlan) -> tuple[Any, ...] | None:
        """Plan-cache key for *query*, or None when it must not be cached.

        A changed schema fingerprint drops the whole cache first, so stale
        plans can never be served after DDL.
        """
        if self.plan_cache is None:
            return None
        fingerprint = self.store.schema.fingerprint()
        if fingerprint != self._schema_fingerprint:
            self.plan_cache.invalidate()
            self._schema_fingerprint = fingerprint
        if isinstance(query, str):
            query_key: str | None = query
        else:
            query_key = plan_fingerprint(query)
        if query_key is None:
            return None
        return (query_key, self.config.parser, self.config.optimizer, fingerprint)

    def plan(
        self, query: str | LogicalPlan, stats: ExecStats | None = None
    ) -> LogicalPlan:
        """The physical pipeline this instance would run for *query*.

        Served from the plan cache when possible; compile timings and the
        cache outcome are recorded into *stats* when given.  Traced stats
        additionally get a ``compile`` span (children: parse/bind/optimize,
        or a bare cache-hit marker).
        """
        started = now()
        key = self._cache_key(query)
        if key is not None:
            try:
                cached = self.plan_cache.lookup(key)  # type: ignore[union-attr]
            except GesError:
                # Degradation ladder: a faulting plan cache costs one
                # uncached compile, never the query.
                if not self.config.degrade:
                    raise
                self._note_degraded(stats, "plan_cache")
                key = None
                cached = None
            if cached is not None:
                if stats is not None:
                    stats.record_compile(now() - started, cache_hit=True)
                    if stats.trace is not None:
                        stats.trace.add("compile", started, now(), cache="hit")
                return cached
        if isinstance(query, str):
            logical, stages = self._compile_stages(query)
        else:
            logical, stages = query, {}
        optimize_started = now()
        physical = self._optimize(logical)
        stages["optimize"] = now() - optimize_started
        if key is not None:
            self.plan_cache.store(key, physical)  # type: ignore[union-attr]
        if stats is not None:
            stats.record_compile(
                now() - started,
                stages,
                cache_hit=False if self.plan_cache is not None else None,
            )
            if stats.trace is not None:
                span = stats.trace.add("compile", started, now())
                if self.plan_cache is not None:
                    span.attrs["cache"] = "miss"
                # Stage spans are synthesized back-to-back from the measured
                # durations (the stages themselves ran sequentially).
                at = started
                for stage_name, stage_seconds in stages.items():
                    span.children.append(
                        Span.completed(stage_name, at, at + stage_seconds)
                    )
                    at += stage_seconds
        return physical

    def execute(
        self,
        query: str | LogicalPlan,
        params: Mapping[str, Any] | None = None,
        view: GraphReadView | None = None,
        stats: ExecStats | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Run a query and return its rows plus execution statistics.

        Reads run against a snapshot view when any write has committed
        (non-blocking MV2PL reads); before the first write the unversioned
        fast path is used.

        With ``config.tracing`` on (or a tracer already attached to
        *stats*, as :meth:`explain_analyze` does) the call records a span
        tree; engine-level metrics are updated either way when
        ``config.metrics`` is on.

        The resilience layer wraps the call when configured: admission
        control outermost (``AdmissionRejected`` on overload), then the
        watchdog deadline (*timeout* seconds, defaulting to
        ``config.query_timeout_ms``; ``QueryTimeout`` on expiry), then the
        retry policy for retryable failures.  With everything at its
        defaults the fast path below is unchanged.
        """
        if stats is None:
            stats = ExecStats()
        if self.config.tracing and stats.trace is None:
            stats.begin_trace()
        timeout_s = timeout
        if timeout_s is None and self.config.query_timeout_ms > 0:
            timeout_s = self.config.query_timeout_ms / 1e3
        if (
            timeout_s is None
            and self.retry_policy is None
            and self.admission is None
        ):
            return self._execute_tracked(query, params, view, stats)
        deadline = (
            Deadline.after(timeout_s) if timeout_s is not None else None
        )
        admission = self.admission
        estimate = 0
        prev, effective = push_deadline(deadline)
        try:
            if admission is not None:
                estimate = self._mem_estimate()
                admission._acquire(estimate)
            try:
                if self.retry_policy is None:
                    return self._execute_tracked(query, params, view, stats)
                return self.retry_policy.run(
                    lambda: self._execute_tracked(query, params, view, stats),
                    deadline=effective,
                    on_retry=self._count_retry,
                )
            finally:
                if admission is not None:
                    admission._release(estimate)
        except QueryTimeout:
            if self._m_timeouts is not None:
                self._m_timeouts.inc()
            raise
        except AdmissionRejected:
            if self._m_rejections is not None:
                self._m_rejections.inc()
            raise
        finally:
            pop_deadline(prev)

    def _execute_tracked(
        self,
        query: str | LogicalPlan,
        params: Mapping[str, Any] | None,
        view: GraphReadView | None,
        stats: ExecStats,
    ) -> QueryResult:
        """One attempt with the in-flight gauge held around it."""
        gauge = self._m_inflight
        if gauge is None:
            return self._execute_guarded(query, params, view, stats)
        gauge.add(1)
        try:
            return self._execute_guarded(query, params, view, stats)
        finally:
            gauge.add(-1)

    def _execute_guarded(
        self,
        query: str | LogicalPlan,
        params: Mapping[str, Any] | None,
        view: GraphReadView | None,
        stats: ExecStats,
    ) -> QueryResult:
        """One execution attempt: compile, execute (with the degradation
        ladder's executor fallback), record metrics and the flight entry."""
        started = now()
        measured = self._m_queries is not None
        if measured:
            pre_hits = stats.plan_cache_hits
            pre_misses = stats.plan_cache_misses
            pre_defactor = stats.defactor_count
            pre_tuples = stats.flat_tuples
            pre_slots = stats.ftree_slots
        physical = self.plan(query, stats=stats)
        if view is None:
            view = self.read_view()
        result = (
            self.parallel.try_execute(query, physical, view, params, stats)
            if self.parallel is not None
            else None
        )
        if result is None:  # in-process path (workers == 1, or pool fallback)
            stats.route = "in-process"
            if self._fallback_execute is None:
                result = self._execute(physical, view, params, stats)
            else:
                result = with_fallback(
                    lambda: self._execute(physical, view, params, stats),
                    lambda: self._fallback_execute(physical, view, params, stats),
                    on_degrade=lambda exc: self._note_degraded(
                        stats, f"executor:{type(exc).__name__}"
                    ),
                )
        if stats.trace is not None:
            stats.trace.touch()
            stats.trace.root.attrs["rows"] = len(result)
        if measured:
            self._m_queries.inc()
            self._m_latency.observe(now() - started)
            if stats.plan_cache_hits > pre_hits:
                self._m_cache_hits.inc(stats.plan_cache_hits - pre_hits)
            if stats.plan_cache_misses > pre_misses:
                self._m_cache_misses.inc(stats.plan_cache_misses - pre_misses)
            if stats.defactor_count > pre_defactor:
                self._m_defactor.inc(stats.defactor_count - pre_defactor)
            slots = stats.ftree_slots - pre_slots
            if slots > 0:
                self._m_compression.observe(
                    (stats.flat_tuples - pre_tuples) / slots
                )
        if self.flight is not None:
            self.flight.record(
                query=query if isinstance(query, str) else _plan_label(query),
                variant=self.config.name,
                seconds=now() - started,
                rows=len(result),
                stats=stats,
                metrics_snapshot=self._metrics_snapshot(),
            )
        self._mem_ewma += _MEM_EWMA_ALPHA * (
            stats.peak_intermediate_bytes - self._mem_ewma
        )
        return result

    def _mem_estimate(self) -> int:
        """Estimated peak intermediate footprint of the next query (EWMA of
        what this engine has observed so far; 0 until the first query)."""
        return int(self._mem_ewma)

    def _note_degraded(self, stats: ExecStats | None, reason: str) -> None:
        if stats is not None:
            stats.note_degrade(reason)
        if self._m_degraded is not None:
            self._m_degraded.inc()
        EVENTS.emit("degraded", reason=reason, variant=self.config.name)

    def _count_retry(self, _attempt: int, _exc: BaseException) -> None:
        if self._m_retries is not None:
            self._m_retries.inc()

    def _metrics_snapshot(self) -> dict[str, float] | None:
        """Cheap point-in-time read of this engine's pre-bound counters
        (attribute loads only — no registry lookups on the query path)."""
        if self._m_queries is None:
            return None
        return {
            "ges_queries_total": self._m_queries.value,
            "ges_plan_cache_hits_total": self._m_cache_hits.value,
            "ges_plan_cache_misses_total": self._m_cache_misses.value,
            "ges_defactor_total": self._m_defactor.value,
        }

    def explain_analyze(
        self, query: str | LogicalPlan, params: Mapping[str, Any] | None = None
    ) -> str:
        """EXPLAIN ANALYZE: run *query* with tracing forced, render the profile.

        Returns the per-operator span tree with timings plus a summary
        line (rows, peak intermediate bytes, defactor count, compression
        ratio) — the introspection surface behind the CLI ``profile``
        command.  Tracing is forced for this execution only; the engine's
        ``config.tracing`` setting is untouched.
        """
        from ..obs.export import render_span_tree

        stats = ExecStats()
        stats.begin_trace()
        result = self.execute(query, params, stats=stats)
        return "\n".join(
            [
                f"EXPLAIN ANALYZE ({self.config.name})",
                render_span_tree(stats.trace.finish()),
                profile_summary(stats),
            ]
        )

    def explain(self, query: str | LogicalPlan) -> str:
        """A human-readable description of the physical pipeline.

        One line per operator, marking the fused operators this
        configuration's optimizer produced.
        """
        from ..plan.logical import (
            AggregateTopK,
            Expand,
            Filter,
            TopK,
            VertexExpand,
            plan_summary,
        )

        physical = self.plan(query)
        lines = [f"physical plan ({self.config.name}): {plan_summary(physical)}"]
        for i, op in enumerate(physical.ops):
            detail = ""
            if isinstance(op, Expand):
                detail = f" {op.from_var}-[:{op.edge_label}]-{op.to_var}"
                if op.is_multi_hop:
                    detail += f" *{op.min_hops}..{op.max_hops}"
                if op.neighbor_filter is not None:
                    detail += " [fused filter]"
            elif isinstance(op, VertexExpand):
                detail = f" seek {op.seek_var} + expand [fused]"
            elif isinstance(op, (TopK, AggregateTopK)):
                detail = f" n={op.n} [fused]"
            elif isinstance(op, Filter):
                detail = f" {op.expr!r}"
            lines.append(f"  {i + 1}. {op.op_name}{detail}")
        return "\n".join(lines)

    # -- views & transactions ------------------------------------------------------

    def read_view(self) -> GraphReadView:
        """The view queries run against: snapshot once writes exist."""
        if self.txn_manager.versions.current() > 0:
            return self.txn_manager.read_view()
        return self.txn_manager.latest_view()

    def transaction(self) -> Transaction:
        """Begin a write transaction (MV2PL; see :mod:`repro.txn`)."""
        return self.txn_manager.begin()

    def with_transaction(self, fn: Callable[[Transaction], T]) -> T:
        """Run ``fn(txn)`` in a fresh transaction and commit it.

        On a retryable failure (``TransactionAborted`` / ``LockTimeout`` /
        injected transient) the whole unit — begin, stage, commit — is
        re-attempted under the engine's retry policy; each attempt gets a
        *fresh* transaction, so partial staging from a failed attempt can
        never leak into the next.  Without a retry policy this is plain
        transactional sugar.
        """

        def attempt() -> T:
            txn = self.transaction()
            try:
                out = fn(txn)
                txn.commit()
                return out
            except BaseException:
                if not txn.done:
                    txn.abort()
                raise

        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.run(attempt, on_retry=self._count_retry)

    def close(self) -> None:
        """Release pooled-execution resources (exported shm segments).

        The shared worker pool itself stays warm for other engines; it is
        stopped by :func:`repro.parallel.shutdown_shared_pools` or at
        interpreter exit.  Safe to call on a non-pooled engine.  A durable
        engine also syncs and closes its WAL writer — after ``close()``
        returns, every batch-mode commit is on disk.
        """
        if self.parallel is not None:
            self.parallel.close()
        if self.durability is not None:
            self.durability.close()

    # -- introspection ---------------------------------------------------------------

    @property
    def variant(self) -> str:
        """Which paper variant this configuration corresponds to."""
        return self.config.name

    def describe(self) -> dict[str, Any]:
        """Human-readable engine/module/graph summary."""
        return {
            "variant": self.config.name,
            "executor": self.config.executor,
            "optimizer": self.config.optimizer,
            "primitives": self.config.primitives,
            "vertices": self.store.vertex_count,
            "edges": self.store.edge_count,
            "plan_cache": (
                self.plan_cache.describe()
                if self.plan_cache is not None
                else {"enabled": False}
            ),
            "flight_recorder": (
                {
                    "capacity": self.flight.capacity,
                    "slow_ms": self.flight.slow_ms,
                    "recorded": self.flight.recorded,
                    "slow_recorded": self.flight.slow_recorded,
                }
                if self.flight is not None
                else {"enabled": False}
            ),
            "parallel": (
                self.parallel.describe()
                if self.parallel is not None
                else {"enabled": False}
            ),
            "resilience": {
                "query_timeout_ms": self.config.query_timeout_ms,
                "retry": (
                    {
                        "attempts": self.retry_policy.attempts,
                        "backoff_ms": self.retry_policy.backoff_ms,
                        "seed": self.retry_policy.seed,
                    }
                    if self.retry_policy is not None
                    else {"enabled": False}
                ),
                "admission": (
                    self.admission.describe()
                    if self.admission is not None
                    else {"enabled": False}
                ),
                "degrade": self.config.degrade,
            },
            "durability": (
                self.durability.describe()
                if self.durability is not None
                else {"enabled": False}
            ),
            "modules": self.registry.describe(),
        }


def _plan_label(plan: LogicalPlan) -> str:
    """Compact flight-recorder label for a plan-form query (no Cypher text
    to show; the operator chain identifies the template)."""
    from ..plan.logical import plan_summary

    return f"<plan: {plan_summary(plan)}>"


def profile_summary(stats: ExecStats) -> str:
    """One-line footer for EXPLAIN ANALYZE / CLI ``profile`` output."""
    parts = [
        f"rows={stats.rows_out}",
        f"total={stats.total_seconds * 1e3:.3f}ms",
        f"compile={stats.compile_seconds * 1e3:.3f}ms",
        f"peak_intermediate={stats.peak_intermediate_bytes}B",
        f"defactor={stats.defactor_count}",
    ]
    if stats.ftree_slots:
        parts.append(f"compression={stats.compression_ratio:.2f}x")
    if stats.plan_cache_hits or stats.plan_cache_misses:
        parts.append(
            f"plan_cache={stats.plan_cache_hits}h/{stats.plan_cache_misses}m"
        )
    return "-- " + " ".join(parts)


#: Short alias used throughout examples and benchmarks.
GES = GraphEngineService


def open_all_variants(store: GraphStore) -> dict[str, GraphEngineService]:
    """The three paper variants sharing one store (ablation harness)."""
    return {
        "GES": GraphEngineService(store, EngineConfig.ges()),
        "GES_f": GraphEngineService(store, EngineConfig.ges_f()),
        "GES_f*": GraphEngineService(store, EngineConfig.ges_f_star()),
    }
