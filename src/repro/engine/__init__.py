"""Composable engine service: registry, configuration, GES facade."""

from .config import ALL_VARIANTS, EngineConfig
from .plan_cache import PlanCache, PlanCacheStats, plan_fingerprint
from .registry import ModuleRegistry, default_registry
from .service import GES, GraphEngineService, open_all_variants

__all__ = [
    "ALL_VARIANTS",
    "EngineConfig",
    "GES",
    "GraphEngineService",
    "ModuleRegistry",
    "PlanCache",
    "PlanCacheStats",
    "default_registry",
    "open_all_variants",
    "plan_fingerprint",
]
