"""Composable engine service: registry, configuration, GES facade."""

from .config import ALL_VARIANTS, EngineConfig
from .registry import ModuleRegistry, default_registry
from .service import GES, GraphEngineService, open_all_variants

__all__ = [
    "ALL_VARIANTS",
    "EngineConfig",
    "GES",
    "GraphEngineService",
    "ModuleRegistry",
    "default_registry",
    "open_all_variants",
]
