"""Baseline engines standing in for the paper's competitor systems."""

from .volcano import VolcanoEngine

__all__ = ["VolcanoEngine"]
