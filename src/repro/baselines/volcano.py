"""A Volcano-style tuple-at-a-time row executor — the competitor stand-in.

The paper's §6.3 comparison targets systems (Neo4j, AgensGraph, GraphDB,
PostgreSQL-based stacks) whose executors "process graph data in a
relational manner, with operators digesting inputs and generating results
as sets of tuples".  Those systems cannot run offline here, so this module
implements that architecture faithfully instead: every operator consumes
and produces Python row dictionaries one tuple at a time, with no columnar
batching, no factorization, and per-tuple property lookups.  It executes
the exact same logical plans and the same 29 LDBC queries as the GES
variants, so Figure 15 / Table 4 compare *architectures* on equal ground.

See DESIGN.md ("Substitutions") for why this preserves the paper's claim
shape.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..engine.config import EngineConfig
from ..errors import ExecutionError
from ..exec.base import ExecStats, QueryResult
from ..obs.clock import now
from ..exec.procedures import get_procedure
from ..resilience.watchdog import Deadline, current_deadline, deadline_scope
from ..plan.expressions import Cmp, Col
from ..plan.logical import (
    Aggregate,
    AggregateTopK,
    AggSpec,
    Distinct,
    Expand,
    Filter,
    FilteredNodeScan,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
    TopK,
    VertexExpand,
    resolve_labels,
)
from ..storage.graph import GraphReadView, GraphStore
from ..txn.transaction import Transaction, TransactionManager
from ..types import is_null

Row = dict[str, Any]

#: Rough per-value footprint of a Python dict row (pointer + box overhead),
#: used for the intermediate-size accounting.
_VALUE_BYTES = 64


class VolcanoEngine:
    """Engine facade with the same surface the LDBC queries use."""

    def __init__(self, store: GraphStore) -> None:
        self.store = store
        self.txn_manager = TransactionManager(store)
        self.config = EngineConfig(name="Volcano", executor="volcano", optimizer="none")

    @property
    def variant(self) -> str:
        return "Volcano"

    def plan(self, query: LogicalPlan) -> LogicalPlan:
        return query  # no rewrites: flat relational pipeline as-is

    def read_view(self) -> GraphReadView:
        if self.txn_manager.versions.current() > 0:
            return self.txn_manager.read_view()
        return self.txn_manager.latest_view()

    def transaction(self) -> Transaction:
        return self.txn_manager.begin()

    def execute(
        self,
        plan: LogicalPlan,
        params: Mapping[str, Any] | None = None,
        view: GraphReadView | None = None,
        stats: ExecStats | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        params = dict(params or {})
        stats = stats if stats is not None else ExecStats()
        view = view if view is not None else self.read_view()
        labels = resolve_labels(plan, view.schema)
        started = now()
        rows: list[Row] = []
        explicit = Deadline.after(timeout) if timeout is not None else None
        with deadline_scope(explicit) as deadline:
            for op in plan.ops:
                if deadline is not None:
                    deadline.check()
                op_start = now()
                rows = _dispatch(rows, op, view, params, labels)
                width = len(rows[0]) if rows else 0
                stats.record_op(
                    op.op_name, now() - op_start, len(rows) * width * _VALUE_BYTES
                )
        stats.total_seconds += now() - started
        columns = plan.returns or (list(rows[0].keys()) if rows else [])
        # NULLs are already Python None throughout the row pipeline — the
        # storage layer surfaces validity natively, so no sentinel scrubbing
        # happens at the result boundary.
        out = [tuple(row[c] for c in columns) for row in rows]
        stats.rows_out = len(out)
        return QueryResult(columns, out, stats)


def _dispatch(
    rows: list[Row],
    op: LogicalOp,
    view: GraphReadView,
    params: dict[str, Any],
    labels: dict[str, str],
) -> list[Row]:
    if isinstance(op, NodeByIdSeek):
        row = view.vertex_by_key(op.label, int(op.key.eval_row({}, params)))
        return [{op.var: row}] if row is not None else []
    if isinstance(op, NodeScan):
        return [{op.var: int(r)} for r in view.all_rows(op.label)]
    if isinstance(op, FilteredNodeScan):
        # No zone maps here: the competitor architecture scans densely and
        # re-checks the predicate one tuple at a time.
        predicate = Cmp(op.cmp, Col(op.out), op.value)
        out = []
        for r in view.all_rows(op.label):
            row = {op.var: int(r), op.out: view.get_property(op.label, int(r), op.prop)}
            if predicate.eval_row(row, params):
                out.append(row)
        return out
    if isinstance(op, NodeByRows):
        return [{op.var: int(r)} for r in params[op.rows_param]]
    if isinstance(op, VertexExpand):
        seeded = _dispatch([], NodeByIdSeek(op.seek_var, op.seek_label, op.seek_key),
                           view, params, labels)
        labels.setdefault(op.seek_var, op.seek_label)
        return _expand(seeded, op.expand, view, params, labels)
    if isinstance(op, ProcedureCall):
        args = {name: expr.eval_row({}, params) for name, expr in op.args.items()}
        block = get_procedure(op.name)(view, args)
        return [dict(zip(block.schema, row)) for row in block.rows()]
    if isinstance(op, Expand):
        return _expand(rows, op, view, params, labels)
    if isinstance(op, GetProperty):
        label = labels[op.var]
        out = []
        for row in rows:
            vertex = row[op.var]
            if vertex is None:
                value = None
            else:
                value = view.get_property(label, int(vertex), op.prop)
            out.append({**row, op.out: value})
        return out
    if isinstance(op, Filter):
        return [row for row in rows if op.expr.eval_row(row, params)]
    if isinstance(op, Project):
        return [
            {name: expr.eval_row(row, params) for name, expr in op.items} for row in rows
        ]
    if isinstance(op, Aggregate):
        return _aggregate(rows, op.group_by, op.aggs, params)
    if isinstance(op, OrderBy):
        return _sort(rows, op.keys)
    if isinstance(op, Limit):
        return rows[: op.n]
    if isinstance(op, Distinct):
        cols = op.cols if op.cols is not None else (list(rows[0]) if rows else [])
        seen: set[tuple] = set()
        out = []
        for row in rows:
            key = tuple(row[c] for c in cols)
            if key not in seen:
                seen.add(key)
                out.append({c: row[c] for c in cols})
        return out
    if isinstance(op, TopK):
        return _sort(rows, op.keys)[: op.n]
    if isinstance(op, AggregateTopK):
        out = _aggregate(rows, op.group_by, op.aggs, params)
        if op.project_items is not None:
            out = [
                {name: expr.eval_row(row, params) for name, expr in op.project_items}
                for row in out
            ]
        return _sort(out, op.keys)[: op.n]
    raise ExecutionError(f"volcano executor cannot handle {op.op_name}")


def _expand(
    rows: list[Row],
    op: Expand,
    view: GraphReadView,
    params: dict[str, Any],
    labels: dict[str, str],
) -> list[Row]:
    from_label = labels[op.from_var]
    keys = view.schema.expand_keys(op.edge_label, op.direction, from_label, op.to_label)
    # Tuple-at-a-time expansion is the engine's long pole, so the ambient
    # deadline is ticked per source tuple (strided), not just per operator.
    deadline = current_deadline()
    out: list[Row] = []
    for row in rows:
        if deadline is not None:
            deadline.tick()
        source = row[op.from_var]
        matched = False
        if source is not None:
            for neighbor_row in _neighbors(view, keys, int(source), op, params):
                out.append({**row, **neighbor_row})
                matched = True
        if op.optional and not matched:
            filler: Row = {op.to_var: None}
            for name in op.edge_props:
                filler[name] = None
            for name in op.neighbor_props:
                filler[name] = None
            out.append({**row, **filler})
    return out


def _neighbors(
    view: GraphReadView,
    keys: list,
    source: int,
    op: Expand,
    params: dict[str, Any],
) -> Iterator[Row]:
    to_label = op.to_label
    if op.is_multi_hop:
        seen = {source}
        frontier = [source]
        reached: list[int] = []
        for depth in range(1, op.max_hops + 1):
            next_frontier: list[int] = []
            for current in frontier:
                for key in keys:
                    for neighbor in view.neighbors(key, current):
                        neighbor = int(neighbor)
                        if neighbor in seen:
                            continue
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
                        if depth >= op.min_hops:
                            reached.append(neighbor)
            frontier = next_frontier
        for vertex in sorted(reached):
            yield {op.to_var: vertex}
        return
    for key in keys:
        adjacency = view.adjacency(key)
        for slot in view.neighbor_slots(key, source):
            target = adjacency.target_at(int(slot))
            candidate: Row = {op.to_var: target}
            for out_name, prop in op.edge_props.items():
                candidate[out_name] = adjacency.prop_at(prop, int(slot))
            for out_name, prop in op.neighbor_props.items():
                candidate[out_name] = view.get_property(
                    to_label or key.dst_label, target, prop
                )
            if op.neighbor_filter is not None and not op.neighbor_filter.eval_row(
                candidate, params
            ):
                continue
            yield candidate


def _aggregate(
    rows: list[Row], group_by: list[str], aggs: list[AggSpec], params: dict[str, Any]
) -> list[Row]:
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        groups.setdefault(tuple(row[g] for g in group_by), []).append(row)
    if not group_by and not groups:
        groups[()] = []
    out: list[Row] = []
    for key, members in groups.items():
        result: Row = dict(zip(group_by, key))
        for agg in aggs:
            result[agg.out] = _eval_agg(agg, members)
        out.append(result)
    return out


def _eval_agg(agg: AggSpec, members: list[Row]) -> Any:
    if agg.fn == "count" and agg.arg is None:
        return len(members)
    # NULLs (None from the validity-aware storage reads and optional fills,
    # or a NaN float) are skipped — the same mask the block-based
    # aggregation applies.
    values = [row[agg.arg] for row in members if not is_null(row.get(agg.arg))]
    if agg.fn == "count":
        return len(values)
    if agg.fn == "count_distinct":
        return len(set(values))
    if not values:
        return None if agg.fn != "sum" else 0
    if agg.fn == "sum":
        return sum(values)
    if agg.fn == "min":
        return min(values)
    if agg.fn == "max":
        return max(values)
    if agg.fn == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {agg.fn!r}")


class _Desc:
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.value == self.value

    def __hash__(self) -> int:
        return hash(self.value)


def _sort(rows: list[Row], keys: list[tuple[str, bool]]) -> list[Row]:
    def value_key(value: Any) -> tuple:
        # None (optional fill) is not comparable to concrete values; rank
        # NULLs as a class of their own, before every non-NULL value.
        return (0, 0) if is_null(value) else (1, value)

    def sort_key(row: Row) -> tuple:
        return tuple(
            value_key(row[name]) if ascending else _Desc(value_key(row[name]))
            for name, ascending in keys
        )

    return sorted(rows, key=sort_key)
