"""Value and type system shared by storage, executor, and frontend.

The engine is columnar: every attribute has a :class:`DataType` that decides
the physical NumPy representation of its column.  Dates and timestamps are
stored as int64 epoch milliseconds, matching the LDBC SNB convention; the
helpers at the bottom of this module convert between human-readable dates and
the stored representation.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

# -- deprecated sentinel shim -------------------------------------------------
#
# Historic versions of the engine encoded NULL *in the data*: int64 columns
# used ``iinfo(int64).min`` and float columns used NaN.  That convention was
# a standing bug class (fuzzer/chaos campaigns kept finding sentinels leaking
# into aggregates, comparisons, and result rows), and the store now carries an
# explicit validity bitmap per column instead: NULL is a bit, never a value.
#
# The two names below survive only as a compatibility shim so external code
# and old snapshots keep importing; nothing inside ``src/`` may reference
# them outside this module (enforced by a guard test).  ``iinfo(int64).min``
# is legitimate data now.

#: Deprecated. Former int64 NULL sentinel; retained only as the inert fill
#: value written under invalid slots (keeps legacy sort-key tricks working).
NULL_INT = np.iinfo(np.int64).min

#: Deprecated. Former float64 NULL sentinel; retained only as the inert fill
#: value written under invalid slots.
NULL_FLOAT = float("nan")


class DataType(enum.Enum):
    """Physical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    DATE = "date"  # int64 epoch millis at midnight UTC
    TIMESTAMP = "timestamp"  # int64 epoch millis

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used for a column of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_integer_backed(self) -> bool:
        """True when the column physically stores int64 values."""
        return self in (DataType.INT64, DataType.DATE, DataType.TIMESTAMP)

    def fill_value(self) -> Any:
        """Inert value written under *invalid* slots of a column.

        With validity bitmaps the fill carries no NULL semantics — it only
        has to be storable in the physical dtype and behave benignly in
        vectorized kernels that run before masking.  The historic sentinel
        values are kept because they sort NULLs consistently (int64 min is
        the smallest key; NaN sorts last under argsort) without any extra
        branching in the sort paths.
        """
        if self.is_integer_backed:
            return NULL_INT
        if self is DataType.FLOAT64:
            return NULL_FLOAT
        if self is DataType.BOOL:
            return False
        return None

    def null_value(self) -> Any:
        """Deprecated alias of :meth:`fill_value`.

        Kept for external callers written against the sentinel-era API; the
        returned value no longer *means* NULL anywhere in the engine.
        """
        return self.fill_value()


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.STRING: np.dtype(object),
    DataType.DATE: np.dtype(np.int64),
    DataType.TIMESTAMP: np.dtype(np.int64),
}

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)

#: Milliseconds in one day, used throughout the LDBC workload definitions.
MILLIS_PER_DAY = 86_400_000


def date_millis(year: int, month: int, day: int) -> int:
    """Epoch milliseconds of midnight UTC on the given calendar date."""
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * 1000)


def timestamp_millis(
    year: int, month: int, day: int, hour: int = 0, minute: int = 0, second: int = 0
) -> int:
    """Epoch milliseconds of the given UTC instant."""
    moment = _dt.datetime(year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * 1000)


def millis_to_datetime(millis: int) -> _dt.datetime:
    """Convert stored epoch milliseconds back to an aware UTC datetime."""
    return _EPOCH + _dt.timedelta(milliseconds=int(millis))


def infer_data_type(value: Any) -> DataType:
    """Best-effort :class:`DataType` for a Python literal.

    Used by the Cypher frontend when typing literals and by ad-hoc column
    construction in tests.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, (int, np.integer)):
        return DataType.INT64
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT64
    if isinstance(value, str):
        return DataType.STRING
    raise TypeError(f"cannot infer DataType for {value!r} ({type(value).__name__})")


def is_null(
    value: Any, dtype: DataType | None = None, valid: bool | None = None
) -> bool:
    """True when *value* is NULL.

    When *valid* is supplied (a validity bit read alongside the value) it is
    the **source of truth** and the value itself is never inspected.  The
    value-based fallback is a deprecated shim for callers that only hold a
    bare Python value: ``None`` and float NaN are NULL, everything else —
    including ``iinfo(int64).min``, which is legitimate data — is not.
    """
    if valid is not None:
        return not valid
    if value is None:
        return True
    if isinstance(value, (float, np.floating)) and value != value:  # NaN
        return True
    return False
