"""Value and type system shared by storage, executor, and frontend.

The engine is columnar: every attribute has a :class:`DataType` that decides
the physical NumPy representation of its column.  Dates and timestamps are
stored as int64 epoch milliseconds, matching the LDBC SNB convention; the
helpers at the bottom of this module convert between human-readable dates and
the stored representation.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

#: Sentinel stored in int64 columns for SQL-style NULL.
NULL_INT = np.iinfo(np.int64).min

#: Sentinel stored in float64 columns for NULL (NaN compares unequal, which
#: is exactly the semantics we want for filters).
NULL_FLOAT = float("nan")


class DataType(enum.Enum):
    """Physical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"
    DATE = "date"  # int64 epoch millis at midnight UTC
    TIMESTAMP = "timestamp"  # int64 epoch millis

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used for a column of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_integer_backed(self) -> bool:
        """True when the column physically stores int64 values."""
        return self in (DataType.INT64, DataType.DATE, DataType.TIMESTAMP)

    def null_value(self) -> Any:
        """Sentinel representing NULL in a column of this type."""
        if self.is_integer_backed:
            return NULL_INT
        if self is DataType.FLOAT64:
            return NULL_FLOAT
        if self is DataType.BOOL:
            return False
        return None


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.STRING: np.dtype(object),
    DataType.DATE: np.dtype(np.int64),
    DataType.TIMESTAMP: np.dtype(np.int64),
}

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)

#: Milliseconds in one day, used throughout the LDBC workload definitions.
MILLIS_PER_DAY = 86_400_000


def date_millis(year: int, month: int, day: int) -> int:
    """Epoch milliseconds of midnight UTC on the given calendar date."""
    moment = _dt.datetime(year, month, day, tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * 1000)


def timestamp_millis(
    year: int, month: int, day: int, hour: int = 0, minute: int = 0, second: int = 0
) -> int:
    """Epoch milliseconds of the given UTC instant."""
    moment = _dt.datetime(year, month, day, hour, minute, second, tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * 1000)


def millis_to_datetime(millis: int) -> _dt.datetime:
    """Convert stored epoch milliseconds back to an aware UTC datetime."""
    return _EPOCH + _dt.timedelta(milliseconds=int(millis))


def infer_data_type(value: Any) -> DataType:
    """Best-effort :class:`DataType` for a Python literal.

    Used by the Cypher frontend when typing literals and by ad-hoc column
    construction in tests.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, (int, np.integer)):
        return DataType.INT64
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT64
    if isinstance(value, str):
        return DataType.STRING
    raise TypeError(f"cannot infer DataType for {value!r} ({type(value).__name__})")


def is_null(value: Any, dtype: DataType | None = None) -> bool:
    """True when *value* is the NULL representation for its (or any) type."""
    if value is None:
        return True
    if isinstance(value, float) and value != value:  # NaN
        return True
    if isinstance(value, (int, np.integer)) and int(value) == NULL_INT:
        if dtype is None or dtype.is_integer_backed:
            return True
    return False
