"""The regression corpus: minimized fuzz failures as self-contained repros.

Every mismatch the fuzzer finds is shrunk and serialized into one JSON
file under ``tests/corpus/``: the full graph spec, any update batches,
the query (plan payload and/or Cypher text), the parameters, and the
mismatch signature observed at capture time.  Replaying an entry needs no
generator and no seed — just this module — so tier-1 re-checks every
historical failure forever (``pytest -m corpus``).

Entry filenames are content-addressed (``<prefix>-<digest12>.json``), so
re-finding a known bug is idempotent and two fuzz runs can merge their
corpora with plain file copies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .graphgen import GraphSpec
from .oracle import DifferentialOracle, OracleMismatch
from .querygen import GeneratedQuery, UpdateBatch
from .shrink import replay


@dataclass
class CorpusEntry:
    """One self-contained repro: graph + updates + query + expectation."""

    name: str
    query: GeneratedQuery
    spec: GraphSpec
    updates: list[UpdateBatch] = field(default_factory=list)
    signature: list[list[str]] = field(default_factory=list)  # [[kind, variant], ...]
    note: str = ""
    seed: int | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "note": self.note,
            "seed": self.seed,
            "signature": self.signature,
            "query": self.query.to_json(),
            "updates": [batch.to_json() for batch in self.updates],
            "spec": self.spec.to_json(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CorpusEntry":
        return cls(
            name=data["name"],
            query=GeneratedQuery.from_json(data["query"]),
            spec=GraphSpec.from_json(data["spec"]),
            updates=[UpdateBatch.from_json(b) for b in data.get("updates", [])],
            signature=[list(s) for s in data.get("signature", [])],
            note=data.get("note", ""),
            seed=data.get("seed"),
        )


def entry_digest(query: GeneratedQuery, spec: GraphSpec, updates: list[UpdateBatch]) -> str:
    """Content digest identifying one repro (for idempotent filenames)."""
    payload = json.dumps(
        {
            "query": query.to_json(),
            "updates": [b.to_json() for b in updates],
            "spec": spec.to_json(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def make_entry(
    query: GeneratedQuery,
    spec: GraphSpec,
    mismatches: list[OracleMismatch],
    updates: list[UpdateBatch] | None = None,
    note: str = "",
    seed: int | None = None,
    prefix: str = "fuzz",
) -> CorpusEntry:
    """Package a (shrunk) failure as a corpus entry with a stable name."""
    updates = list(updates or [])
    digest = entry_digest(query, spec, updates)
    return CorpusEntry(
        name=f"{prefix}-{digest[:12]}",
        query=query,
        spec=spec,
        updates=updates,
        signature=sorted([kind, variant] for kind, variant in {m.signature for m in mismatches}),
        note=note or "; ".join(str(m) for m in mismatches[:4]),
        seed=seed,
    )


def save_entry(entry: CorpusEntry, directory: str | Path) -> Path:
    """Write one entry as pretty, key-sorted JSON; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(entry.to_json(), indent=2, sort_keys=True) + "\n")
    return path


def load_entries(directory: str | Path) -> list[CorpusEntry]:
    """Every ``*.json`` entry under *directory*, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        entries.append(CorpusEntry.from_json(json.loads(path.read_text())))
    return entries


def replay_entry(
    entry: CorpusEntry,
    oracle_factory: Any | None = None,
) -> list[OracleMismatch]:
    """Rebuild the entry's store, apply its updates, run the oracle.

    An empty list means the bug the entry captured is fixed (and stays
    fixed); any mismatch is a regression.
    """
    return replay(entry.query, entry.spec, entry.updates, oracle_factory)
