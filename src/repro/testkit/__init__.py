"""repro.testkit — differential fuzzing & concurrency-stress harness.

Machine-generated evidence that the four executors (flat, factorized,
fused, Volcano) are semantically interchangeable over one storage
substrate — the paper's central claim — plus a deterministic stressor for
the MVCC layer and a shrinker that turns any disagreement into a
self-contained, replayable corpus entry under ``tests/corpus/``.

Layout:

* :mod:`~repro.testkit.graphgen` — seeded, schema-aware random graphs;
* :mod:`~repro.testkit.querygen` — random logical plans, Cypher text, and
  IU-style update batches over any schema;
* :mod:`~repro.testkit.plans` — logical-plan / expression JSON serde (what
  makes corpus entries self-contained);
* :mod:`~repro.testkit.oracle` — the differential oracle (bag equality,
  plan-cache on/off agreement, tracing on/off agreement);
* :mod:`~repro.testkit.stress` — deterministic interleaving scheduler over
  the transaction layer with snapshot-isolation invariant checks;
* :mod:`~repro.testkit.shrink` — ddmin-style failure minimizer;
* :mod:`~repro.testkit.corpus` — corpus entry save/load/replay;
* :mod:`~repro.testkit.runner` — the ``repro fuzz`` loop;
* :mod:`~repro.testkit.chaos` — the ``repro chaos`` fault-injection
  campaign (every injected fault is retried, degraded, or surfaced typed —
  never a wrong answer, never a raw exception);
* :mod:`~repro.testkit.crashtest` — the kill -9 crash-recovery harness
  (fork a durable engine, SIGKILL it at a seeded protocol point, recover,
  and differentially compare against an acked-prefix reference).
"""

from .chaos import ChaosConfig, ChaosReport, ChaosViolation, run_chaos
from .corpus import CorpusEntry, load_entries, replay_entry, save_entry
from .crashtest import CrashConfig, CrashReport, run_crash, run_crash_matrix, store_digest
from .graphgen import (
    PROFILES,
    GraphProfile,
    GraphSpec,
    fuzz_schema,
    generate_store,
    random_graph_spec,
    spec_digest,
    store_from_spec,
)
from .oracle import DifferentialOracle, OracleMismatch
from .plans import deserialize_plan, serialize_plan
from .querygen import GeneratedQuery, QueryGenerator, UpdateBatch, UpdateGenerator
from .runner import FuzzConfig, FuzzReport, run_fuzz
from .shrink import shrink_failure
from .stress import StressConfig, StressReport, run_stress

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "ChaosViolation",
    "CorpusEntry",
    "CrashConfig",
    "CrashReport",
    "DifferentialOracle",
    "FuzzConfig",
    "FuzzReport",
    "GeneratedQuery",
    "GraphProfile",
    "GraphSpec",
    "OracleMismatch",
    "PROFILES",
    "QueryGenerator",
    "StressConfig",
    "StressReport",
    "UpdateBatch",
    "UpdateGenerator",
    "deserialize_plan",
    "fuzz_schema",
    "generate_store",
    "load_entries",
    "random_graph_spec",
    "replay_entry",
    "run_chaos",
    "run_crash",
    "run_crash_matrix",
    "run_fuzz",
    "run_stress",
    "save_entry",
    "serialize_plan",
    "shrink_failure",
    "spec_digest",
    "store_digest",
    "store_from_spec",
]
