"""The ``repro fuzz`` loop: generate, diff, stress, shrink, archive.

One run is fully determined by its seed: graphs, queries, update batches,
and the stress interleavings all derive their streams from
``random.Random(f"{seed}:...")`` (string seeding is SHA-512 based and
platform-independent).  The loop rotates through several generated
graphs, interleaves IU-style update batches with read queries (checking
engines against each post-commit snapshot), runs the deterministic
concurrency stressor, and — on any disagreement — shrinks the failure and
writes a self-contained corpus entry.

Fleet counters land in the engine metrics registry under ``ges_fuzz_*``
so dashboards can watch long-running fuzz campaigns.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..obs.metrics import REGISTRY
from ..txn.transaction import TransactionManager
from .corpus import CorpusEntry, make_entry, save_entry
from .graphgen import PROFILES, fuzz_schema, random_graph_spec, store_from_spec
from .oracle import DifferentialOracle
from .querygen import QueryGenerator, UpdateGenerator
from .shrink import shrink_failure
from .stress import StressConfig, StressReport, run_stress


@dataclass
class FuzzConfig:
    """One fuzz campaign."""

    seed: int = 0
    iterations: int = 100  # total queries checked across all graphs
    profile: str = "quick"
    graphs: int = 4  # distinct random graphs the run rotates through
    cypher_rate: float = 0.25  # fraction of queries emitted as Cypher text
    update_rate: float = 0.2  # P(an update batch commits before a query)
    stress_runs: int = 1  # deterministic stress interleavings to run
    shrink: bool = True
    corpus_dir: str | Path | None = None  # where minimized repros land


@dataclass
class FuzzFailure:
    """One archived disagreement."""

    iteration: int
    query: str  # human-readable description
    mismatches: list[str]
    entry: CorpusEntry | None = None
    path: Path | None = None
    flight_path: Path | None = None  # per-engine flight-recorder dumps


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    seed: int = 0
    iterations: int = 0
    queries_checked: int = 0
    cypher_checked: int = 0
    updates_applied: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    stress: list[StressReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures and all(s.passed for s in self.stress)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        stress = (
            f"{sum(s.commits for s in self.stress)} stress commits, "
            f"{sum(len(s.violations) for s in self.stress)} violations"
            if self.stress
            else "stress skipped"
        )
        return (
            f"{status}: seed={self.seed} {self.queries_checked} queries "
            f"({self.cypher_checked} via Cypher), {self.updates_applied} update "
            f"batches, {len(self.failures)} mismatches; {stress}"
        )


def run_fuzz(
    config: FuzzConfig | None = None,
    oracle_factory: Callable[..., DifferentialOracle] | None = None,
    on_event: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run one campaign; see :class:`FuzzConfig` for the knobs.

    ``oracle_factory(store)`` is injectable so tests can fuzz a
    deliberately broken engine and assert the loop catches, shrinks, and
    archives it.
    """
    config = config if config is not None else FuzzConfig()
    report = FuzzReport(seed=config.seed, iterations=config.iterations)
    emit = on_event if on_event is not None else (lambda _msg: None)
    factory = oracle_factory if oracle_factory is not None else DifferentialOracle
    profile = PROFILES[config.profile]
    schema = fuzz_schema()

    counters = {
        name: REGISTRY.counter(f"ges_fuzz_{name}", help)
        for name, help in (
            ("queries_total", "Queries checked by the differential oracle"),
            ("updates_total", "IU-style update batches committed during fuzzing"),
            ("mismatches_total", "Cross-variant disagreements found"),
            ("corpus_entries_total", "Minimized repros written to the corpus"),
        )
    }

    graphs = max(1, min(config.graphs, config.iterations or 1))
    per_graph = -(-config.iterations // graphs)  # ceil
    iteration = 0
    for g in range(graphs):
        if iteration >= config.iterations:
            break
        spec = random_graph_spec(
            random.Random(f"{config.seed}:graph:{g}"),
            schema,
            profile,
            seed=config.seed,
        )
        store = store_from_spec(spec)
        oracle = factory(store)
        manager = TransactionManager(store)
        qgen = QueryGenerator(schema, random.Random(f"{config.seed}:queries:{g}"))
        ugen = UpdateGenerator(
            schema, random.Random(f"{config.seed}:updates:{g}"), spec, profile
        )
        flow = random.Random(f"{config.seed}:flow:{g}")
        updates: list[Any] = []
        emit(
            f"graph {g}: {spec.total_vertices()} vertices, "
            f"{spec.total_edges()} edges"
        )
        for _ in range(per_graph):
            if iteration >= config.iterations:
                break
            iteration += 1
            if flow.random() < config.update_rate:
                batch = ugen.batch()
                batch.apply(manager)
                updates.append(batch)
                report.updates_applied += 1
                counters["updates_total"].inc()
            view = (
                store.read_view(manager.versions.current(), manager.overlay)
                if updates
                else None
            )
            if flow.random() < config.cypher_rate:
                query = qgen.cypher_query(spec)
                report.cypher_checked += 1
            else:
                query = qgen.query(spec)
            mismatches = oracle.check(query, view=view)
            report.queries_checked += 1
            counters["queries_total"].inc()
            if mismatches:
                counters["mismatches_total"].inc(len(mismatches))
                failure = _archive(
                    config, iteration, query, spec, updates, mismatches,
                    oracle_factory, emit, oracle=oracle,
                )
                report.failures.append(failure)
                if failure.path is not None:
                    counters["corpus_entries_total"].inc()
        # Pooled engines hold exported shm segments; release them before
        # this graph's store goes away (other engines have no close()).
        oracle.close()

    for s in range(config.stress_runs):
        stress = run_stress(StressConfig(seed=config.seed * 1000 + s))
        report.stress.append(stress)
        emit(f"stress {s}: {stress.summary()}")
    return report


def _flight_dumps(oracle) -> dict[str, Any]:
    """Every oracle engine's flight-recorder dump (engines without one —
    e.g. the Volcano baseline — are skipped)."""
    dumps: dict[str, Any] = {}
    for name, engine in getattr(oracle, "engines", {}).items():
        flight = getattr(engine, "flight", None)
        if flight is not None:
            dumps[name] = flight.dump()
    return dumps


def _archive(
    config: FuzzConfig,
    iteration: int,
    query,
    spec,
    updates,
    mismatches,
    oracle_factory,
    emit,
    oracle=None,
) -> FuzzFailure:
    """Shrink a failure and (when a corpus dir is set) write the entry."""
    emit(
        f"iteration {iteration}: MISMATCH {query.describe()} -> "
        + "; ".join(str(m) for m in mismatches[:3])
    )
    entry = None
    path = None
    s_query, s_spec, s_updates = query, spec, list(updates)
    if config.shrink:
        try:
            s_query, s_spec, s_updates = shrink_failure(
                query, spec, mismatches, updates=list(updates),
                oracle_factory=oracle_factory,
            )
            emit(
                f"  shrunk to {s_spec.total_vertices()} vertices, "
                f"{s_spec.total_edges()} edges, {len(s_updates)} batches"
            )
        except Exception as exc:  # noqa: BLE001 — keep the raw repro instead
            emit(f"  shrink failed ({type(exc).__name__}: {exc}); keeping raw repro")
    entry = make_entry(
        s_query, s_spec, mismatches, updates=s_updates, seed=config.seed
    )
    flight_path = None
    if config.corpus_dir is not None:
        path = save_entry(entry, config.corpus_dir)
        emit(f"  archived {path}")
        # Flight-recorder dumps of the engines that disagreed, under a
        # subdirectory so corpus loaders (glob *.json, non-recursive)
        # never mistake them for repro entries.
        dumps = _flight_dumps(oracle) if oracle is not None else {}
        if dumps:
            flight_dir = Path(config.corpus_dir) / "flightrec"
            flight_dir.mkdir(parents=True, exist_ok=True)
            flight_path = flight_dir / f"{entry.name}.json"
            flight_path.write_text(
                json.dumps(dumps, indent=2, sort_keys=True, default=str) + "\n"
            )
            emit(f"  flight recorder: {flight_path}")
    return FuzzFailure(
        iteration=iteration,
        query=query.describe(),
        mismatches=[str(m) for m in mismatches],
        entry=entry,
        path=path,
        flight_path=flight_path,
    )
