"""Kill -9 crash-recovery harness: fork, murder, recover, compare.

One run proves one point of the durability protocol:

1. **Fork** a child process that opens a durable engine over a fresh
   database directory, arms exactly one seeded crash point
   (:mod:`repro.durability.hooks`), and drives a deterministic sequence
   of update batches through it, checkpointing every few batches.  After
   each commit returns, the child *acknowledges* the commit version by
   appending it to a side file — the harness's model of "the client was
   told this write is durable".
2. The armed site SIGKILLs the child mid-protocol — mid-commit, between
   a WAL append and its fsync, between a checkpoint's temp write and its
   rename, mid-truncation.  No cleanup runs; the database directory is
   whatever the crash left.
3. The **parent recovers** the directory with :meth:`GES.open` and checks
   the durability contract differentially against an in-memory reference
   store that applies only the recovered prefix of the same deterministic
   batches:

   * acked ⊆ recovered: every acknowledged commit survives, in order;
   * recovered is a *prefix*: version N implies batches 1..N, bit-for-bit
     (canonical store digests — columns with validity, live edge
     multisets — must match the reference exactly);
   * in ``fsync`` mode, at most the one in-flight commit beyond the last
     ack is present (never more);
   * no stranded checkpoint temp dirs; ``fsck`` is clean after recovery;
     the recovered engine accepts new commits and they survive a second
     open.

Every run is keyed off ``CrashConfig.seed``; the same seed replays the
same schema, graph, batches, and kill point.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import signal
import sys
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..durability import fsck
from ..durability.hooks import CRASH_SITES, arm, disarm
from ..engine.config import EngineConfig
from ..engine.service import GES
from ..storage.graph import GraphStore
from ..txn.transaction import TransactionManager
from .graphgen import fuzz_schema, random_graph_spec, store_from_spec
from .querygen import UpdateBatch, UpdateGenerator


@dataclass
class CrashConfig:
    """One crash-recovery run; the seed fixes all randomness."""

    seed: int = 0
    #: Update batches the child attempts (one commit each, versions 1..N).
    batches: int = 16
    #: Checkpoint after every N batches (0 = never).
    checkpoint_every: int = 5
    #: Crash site to arm in the child (see ``hooks.CRASH_SITES``).
    kill_point: str = "commit.wal_fsync"
    #: Which hit of the site kills (0 = auto: mid-run for commit sites,
    #: first checkpoint for checkpoint sites).
    kill_hit: int = 0
    #: WAL mode under test.
    durability: str = "fsync"
    #: Graph size profile for the seeded base graph.
    profile: str = "quick"


@dataclass
class CrashReport:
    """Outcome of one run: what died, what survived, what broke."""

    seed: int
    kill_point: str
    kill_hit: int
    mode: str
    #: True when the armed site actually fired (child died by SIGKILL).
    killed: bool = False
    #: True when the child ran out of batches before the site fired.
    completed: bool = False
    attempted: int = 0
    acked: int = 0
    recovered_version: int = 0
    replayed: int = 0
    repaired: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        fate = "killed" if self.killed else ("completed" if self.completed else "died?")
        return (
            f"{status}: seed {self.seed} @ {self.kill_point}"
            f"[{self.kill_hit}] ({self.mode}): {fate}, "
            f"acked {self.acked}/{self.attempted}, recovered v{self.recovered_version} "
            f"({self.replayed} replayed, {len(self.repaired)} repaired), "
            f"{len(self.violations)} violations"
        )


# -- canonical store digests --------------------------------------------------------


def _canonical(value: Any) -> Any:
    """JSON-safe canonical form: numpy scalars unwrapped, NaN → None.

    NaN folds into null because that is the storage layer's convention on
    every bulk path (and the WAL serde's, for the same reason): a valid
    NaN and a cleared validity bit are the same logical state."""
    item = getattr(value, "item", None)
    if callable(item):
        value = value.item()
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def store_digest(store: GraphStore) -> str:
    """Content hash of a store's logical state, replay-invariant.

    Covers every vertex property column (validity-aware) in row order and
    the sorted multiset of live edges per label — and deliberately ignores
    MVCC version stamps, which a checkpoint legitimately discards (every
    checkpointed row predates every possible reader)."""
    payload: dict[str, Any] = {}
    for label in store.schema.vertex_labels:
        table = store.table(label)
        columns: dict[str, list[Any]] = {}
        for name in table.column_names:
            column = table.column(name)
            values = column.view()
            mask = column.validity_mask()
            columns[name] = [
                None
                if (mask is not None and not mask[i])
                else _canonical(values[i])
                for i in range(len(values))
            ]
        payload[f"v:{label}"] = columns
    for definition in store.schema.iter_edge_definitions():
        adjacency = store.adjacency(definition.key())
        src, dst, props, validity = adjacency.export_edges()
        names = sorted(props)
        rows = []
        for i in range(len(src)):
            vals = []
            for name in names:
                mask = validity.get(name)
                vals.append(
                    None
                    if (mask is not None and not mask[i])
                    else _canonical(props[name][i])
                )
            rows.append([int(src[i]), int(dst[i]), vals])
        rows.sort(key=lambda row: json.dumps(row, default=str))
        payload[f"e:{definition.key()}"] = rows
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- the run ------------------------------------------------------------------------


def _engine_config(config: CrashConfig) -> EngineConfig:
    return EngineConfig.ges(
        metrics=False,
        flight_recorder=0,
        durability=config.durability,
        wal_batch_every=4,
    )


def _auto_hit(config: CrashConfig) -> int:
    if config.kill_hit > 0:
        return config.kill_hit
    if config.kill_point.startswith("commit."):
        return max(1, config.batches // 2)
    return 1  # first checkpoint


def _generate_batches(config: CrashConfig, schema, spec) -> list[UpdateBatch]:
    """The deterministic batch sequence both child and parent derive."""
    generator = UpdateGenerator(
        schema,
        random.Random(f"{config.seed}:crash:updates"),
        spec,
        config.profile,
    )
    return [generator.batch() for _ in range(config.batches)]


def _child_main(
    db: Path, ack_path: Path, config: CrashConfig, store: GraphStore,
    batches: list[UpdateBatch],
) -> None:
    """Runs in the forked child; exits only via SIGKILL or ``os._exit``."""
    try:
        ack_fd = os.open(ack_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        engine = GES.open(db, config=_engine_config(config), schema=store)
        arm(config.kill_point, _auto_hit(config))
        manager = engine.txn_manager
        for index, batch in enumerate(batches):
            version = batch.apply(manager)
            os.write(ack_fd, f"{version}\n".encode())
            if (
                config.checkpoint_every
                and (index + 1) % config.checkpoint_every == 0
            ):
                engine.checkpoint()
        disarm()
        engine.close()
        os._exit(0)
    except BaseException:  # noqa: BLE001 — anything here is a harness bug
        traceback.print_exc(file=sys.stderr)
        os._exit(2)


def run_crash(config: CrashConfig | None = None) -> CrashReport:
    """One fork / kill -9 / recover / differential-compare cycle."""
    config = config if config is not None else CrashConfig()
    if config.kill_point not in CRASH_SITES:
        raise ValueError(
            f"unknown kill point {config.kill_point!r}; known: {CRASH_SITES}"
        )
    report = CrashReport(
        seed=config.seed,
        kill_point=config.kill_point,
        kill_hit=_auto_hit(config),
        mode=config.durability,
        attempted=config.batches,
    )

    schema = fuzz_schema()
    spec = random_graph_spec(
        random.Random(f"{config.seed}:crash:graph"),
        schema,
        config.profile,
        seed=config.seed,
    )
    batches = _generate_batches(config, schema, spec)

    with tempfile.TemporaryDirectory(prefix="ges-crash-") as tdir:
        db = Path(tdir) / "db"
        ack_path = Path(tdir) / "acked.txt"

        pid = os.fork()
        if pid == 0:
            _child_main(db, ack_path, config, store_from_spec(spec), batches)
            os._exit(3)  # unreachable
        _, status = os.waitpid(pid, 0)
        report.killed = (
            os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        )
        report.completed = os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0
        if not report.killed and not report.completed:
            report.violations.append(
                f"child died abnormally (wait status {status}); see stderr"
            )
            return report

        # What the client was told is durable.
        acked: list[int] = []
        if ack_path.exists():
            acked = [
                int(line) for line in ack_path.read_text().split() if line.strip()
            ]
        report.acked = len(acked)
        if acked != list(range(1, len(acked) + 1)):
            report.violations.append(f"ack stream is not the prefix 1..N: {acked}")
        max_acked = acked[-1] if acked else 0

        # Recover in the parent.
        try:
            engine = GES.open(db, config=_engine_config(config))
        except Exception as exc:  # noqa: BLE001 — recovery must never fail here
            report.violations.append(
                f"recovery raised {type(exc).__name__}: {exc}"
            )
            return report
        recovery = engine.recovery
        report.recovered_version = engine.txn_manager.versions.current()
        report.replayed = recovery.replayed
        report.repaired = list(recovery.repaired)

        # The durability contract.
        if report.recovered_version < max_acked:
            report.violations.append(
                f"acked commit lost: recovered v{report.recovered_version} "
                f"< max acked v{max_acked}"
            )
        if report.recovered_version > config.batches:
            report.violations.append(
                f"recovered v{report.recovered_version} beyond the "
                f"{config.batches} attempted commits"
            )
        if config.durability == "fsync" and report.recovered_version > max_acked + 1:
            report.violations.append(
                f"fsync mode recovered v{report.recovered_version}, more than "
                f"one commit beyond max acked v{max_acked}"
            )

        # Differential compare: recovered state == reference applying
        # exactly the recovered prefix of the same batch sequence.
        reference = store_from_spec(spec)
        reference_manager = TransactionManager(reference)
        for batch in batches[: report.recovered_version]:
            batch.apply(reference_manager)
        if store_digest(engine.store) != store_digest(reference):
            report.violations.append(
                f"recovered store diverges from the reference at "
                f"v{report.recovered_version} (digest mismatch)"
            )

        # Hygiene: no stranded temp dirs, and fsck agrees all is well.
        ckpt_dir = db / "checkpoints"
        strays = (
            [m.name for m in ckpt_dir.iterdir() if m.name.startswith(".")]
            if ckpt_dir.is_dir()
            else []
        )
        if strays:
            report.violations.append(f"stranded checkpoint temp dirs: {strays}")
        audit = fsck(db)
        if not audit.ok:
            report.violations.append(
                f"post-recovery fsck not clean: {audit.problems}"
            )

        # The recovered engine must keep working — and its new commits
        # must survive a further open.
        try:
            txn = engine.transaction()
            new_version = txn.commit()
            if new_version != report.recovered_version + 1:
                report.violations.append(
                    f"post-recovery commit got v{new_version}, expected "
                    f"v{report.recovered_version + 1}"
                )
            engine.close()
            reopened = GES.open(db, config=_engine_config(config))
            if reopened.txn_manager.versions.current() != new_version:
                report.violations.append(
                    f"post-recovery commit v{new_version} did not survive reopen "
                    f"(got v{reopened.txn_manager.versions.current()})"
                )
            reopened.close()
        except Exception as exc:  # noqa: BLE001
            report.violations.append(
                f"post-recovery write path raised {type(exc).__name__}: {exc}"
            )
    return report


def run_crash_matrix(
    seed: int = 0,
    runs: int = 1,
    sites: tuple[str, ...] | None = None,
    durability: str = "fsync",
    batches: int = 12,
    checkpoint_every: int = 4,
    profile: str = "quick",
) -> list[CrashReport]:
    """Sweep every crash site (× *runs* seeds); returns one report per run."""
    reports = []
    for offset in range(runs):
        for site in sites if sites is not None else CRASH_SITES:
            reports.append(
                run_crash(
                    CrashConfig(
                        seed=seed + offset,
                        batches=batches,
                        checkpoint_every=checkpoint_every,
                        kill_point=site,
                        durability=durability,
                        profile=profile,
                    )
                )
            )
    return reports
