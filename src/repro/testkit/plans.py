"""Logical-plan / expression JSON serde.

Corpus entries must be self-contained: a failing (graph, query) pair is
stored as plain JSON and rebuilt years later without the generator that
produced it.  This module round-trips every operator and expression the
query generator emits (and the full executor surface, fused operators
included) through ``dict`` payloads.

NaN literals survive the trip: Python's :mod:`json` writes the ``NaN``
token and reads it back by default.
"""

from __future__ import annotations

from typing import Any

from ..errors import PlanError
from ..plan.expressions import (
    Arith,
    BoolOp,
    Cmp,
    Col,
    Expr,
    Func,
    InSet,
    IsNull,
    Lit,
    Not,
    Param,
)
from ..plan.logical import (
    Aggregate,
    AggregateTopK,
    AggSpec,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalOp,
    LogicalPlan,
    NodeByIdSeek,
    NodeByRows,
    NodeScan,
    OrderBy,
    ProcedureCall,
    Project,
    TopK,
    VertexExpand,
)
from ..storage.catalog import Direction

_LIT_TYPES = (bool, int, float, str, type(None))


def serialize_expr(expr: Expr) -> dict[str, Any]:
    """One expression node as a plain dict (recursing into operands)."""
    if isinstance(expr, Col):
        return {"kind": "col", "name": expr.name}
    if isinstance(expr, Lit):
        if isinstance(expr.value, (frozenset, set, tuple, list)):
            # Set/sequence literals (InSet operands): canonical sorted list.
            container = "frozenset" if isinstance(expr.value, (frozenset, set)) else "tuple"
            items = list(expr.value)
            if not all(isinstance(v, _LIT_TYPES) for v in items):
                raise PlanError(f"literal {expr.value!r} is not JSON-serializable")
            try:
                items = sorted(items)
            except TypeError:
                items = sorted(items, key=repr)
            return {"kind": "lit", "value": items, "container": container}
        if not isinstance(expr.value, _LIT_TYPES):
            raise PlanError(f"literal {expr.value!r} is not JSON-serializable")
        return {"kind": "lit", "value": expr.value}
    if isinstance(expr, Param):
        return {"kind": "param", "name": expr.name}
    if isinstance(expr, Cmp):
        return {
            "kind": "cmp",
            "op": expr.op,
            "left": serialize_expr(expr.left),
            "right": serialize_expr(expr.right),
        }
    if isinstance(expr, BoolOp):
        return {
            "kind": "bool",
            "op": expr.op,
            "operands": [serialize_expr(o) for o in expr.operands],
        }
    if isinstance(expr, Not):
        return {"kind": "not", "operand": serialize_expr(expr.operand)}
    if isinstance(expr, Arith):
        return {
            "kind": "arith",
            "op": expr.op,
            "left": serialize_expr(expr.left),
            "right": serialize_expr(expr.right),
        }
    if isinstance(expr, InSet):
        return {
            "kind": "inset",
            "operand": serialize_expr(expr.operand),
            "values": serialize_expr(expr.values),
            "negate": expr.negate,
        }
    if isinstance(expr, IsNull):
        return {
            "kind": "isnull",
            "operand": serialize_expr(expr.operand),
            "negate": expr.negate,
        }
    if isinstance(expr, Func):
        return {
            "kind": "func",
            "name": expr.name,
            "args": [serialize_expr(a) for a in expr.args],
        }
    raise PlanError(f"cannot serialize expression {expr!r}")


def deserialize_expr(data: dict[str, Any]) -> Expr:
    """Inverse of :func:`serialize_expr`."""
    kind = data["kind"]
    if kind == "col":
        return Col(data["name"])
    if kind == "lit":
        container = data.get("container")
        if container == "frozenset":
            return Lit(frozenset(data["value"]))
        if container == "tuple":
            return Lit(tuple(data["value"]))
        return Lit(data["value"])
    if kind == "param":
        return Param(data["name"])
    if kind == "cmp":
        return Cmp(
            data["op"], deserialize_expr(data["left"]), deserialize_expr(data["right"])
        )
    if kind == "bool":
        return BoolOp(data["op"], [deserialize_expr(o) for o in data["operands"]])
    if kind == "not":
        return Not(deserialize_expr(data["operand"]))
    if kind == "arith":
        return Arith(
            data["op"], deserialize_expr(data["left"]), deserialize_expr(data["right"])
        )
    if kind == "inset":
        return InSet(
            deserialize_expr(data["operand"]),
            deserialize_expr(data["values"]),
            negate=data["negate"],
        )
    if kind == "isnull":
        return IsNull(deserialize_expr(data["operand"]), negate=data["negate"])
    if kind == "func":
        return Func(data["name"], [deserialize_expr(a) for a in data["args"]])
    raise PlanError(f"unknown expression kind {kind!r}")


def _expand_payload(op: Expand) -> dict[str, Any]:
    return {
        "from_var": op.from_var,
        "to_var": op.to_var,
        "edge_label": op.edge_label,
        "direction": op.direction.value,
        "min_hops": op.min_hops,
        "max_hops": op.max_hops,
        "to_label": op.to_label,
        "exclude_start": op.exclude_start,
        "optional": op.optional,
        "edge_props": dict(op.edge_props),
        "neighbor_filter": (
            serialize_expr(op.neighbor_filter)
            if op.neighbor_filter is not None
            else None
        ),
        "neighbor_props": dict(op.neighbor_props),
    }


def _expand_from_payload(data: dict[str, Any]) -> Expand:
    return Expand(
        data["from_var"],
        data["to_var"],
        data["edge_label"],
        direction=Direction(data["direction"]),
        min_hops=data["min_hops"],
        max_hops=data["max_hops"],
        to_label=data["to_label"],
        exclude_start=data["exclude_start"],
        optional=data["optional"],
        edge_props=dict(data["edge_props"]),
        neighbor_filter=(
            deserialize_expr(data["neighbor_filter"])
            if data["neighbor_filter"] is not None
            else None
        ),
        neighbor_props=dict(data["neighbor_props"]),
    )


def serialize_op(op: LogicalOp) -> dict[str, Any]:
    """One pipeline operator as a plain dict."""
    if isinstance(op, NodeByIdSeek):
        return {
            "op": "NodeByIdSeek",
            "var": op.var,
            "label": op.label,
            "key": serialize_expr(op.key),
        }
    if isinstance(op, NodeScan):
        return {"op": "NodeScan", "var": op.var, "label": op.label}
    if isinstance(op, NodeByRows):
        return {
            "op": "NodeByRows",
            "var": op.var,
            "label": op.label,
            "rows_param": op.rows_param,
        }
    if isinstance(op, VertexExpand):
        return {
            "op": "VertexExpand",
            "seek_var": op.seek_var,
            "seek_label": op.seek_label,
            "seek_key": serialize_expr(op.seek_key),
            "expand": _expand_payload(op.expand),
        }
    if isinstance(op, Expand):
        return {"op": "Expand", **_expand_payload(op)}
    if isinstance(op, GetProperty):
        return {"op": "GetProperty", "var": op.var, "prop": op.prop, "out": op.out}
    if isinstance(op, Filter):
        return {"op": "Filter", "expr": serialize_expr(op.expr)}
    if isinstance(op, Project):
        return {
            "op": "Project",
            "items": [[name, serialize_expr(expr)] for name, expr in op.items],
        }
    if isinstance(op, Aggregate):
        return {
            "op": "Aggregate",
            "group_by": list(op.group_by),
            "aggs": [[a.out, a.fn, a.arg] for a in op.aggs],
        }
    if isinstance(op, AggregateTopK):
        return {
            "op": "AggregateTopK",
            "group_by": list(op.group_by),
            "aggs": [[a.out, a.fn, a.arg] for a in op.aggs],
            "keys": [[name, asc] for name, asc in op.keys],
            "n": op.n,
            "project_items": (
                [[name, serialize_expr(expr)] for name, expr in op.project_items]
                if op.project_items is not None
                else None
            ),
        }
    if isinstance(op, OrderBy):
        return {"op": "OrderBy", "keys": [[name, asc] for name, asc in op.keys]}
    if isinstance(op, TopK):
        return {
            "op": "TopK",
            "keys": [[name, asc] for name, asc in op.keys],
            "n": op.n,
        }
    if isinstance(op, Limit):
        return {"op": "Limit", "n": op.n}
    if isinstance(op, Distinct):
        return {"op": "Distinct", "cols": list(op.cols) if op.cols is not None else None}
    if isinstance(op, ProcedureCall):
        return {
            "op": "ProcedureCall",
            "name": op.name,
            "args": {name: serialize_expr(expr) for name, expr in op.args.items()},
        }
    raise PlanError(f"cannot serialize operator {op.op_name}")


def deserialize_op(data: dict[str, Any]) -> LogicalOp:
    """Inverse of :func:`serialize_op`."""
    name = data["op"]
    if name == "NodeByIdSeek":
        return NodeByIdSeek(data["var"], data["label"], deserialize_expr(data["key"]))
    if name == "NodeScan":
        return NodeScan(data["var"], data["label"])
    if name == "NodeByRows":
        return NodeByRows(data["var"], data["label"], data["rows_param"])
    if name == "VertexExpand":
        return VertexExpand(
            data["seek_var"],
            data["seek_label"],
            deserialize_expr(data["seek_key"]),
            _expand_from_payload(data["expand"]),
        )
    if name == "Expand":
        return _expand_from_payload(data)
    if name == "GetProperty":
        return GetProperty(data["var"], data["prop"], data["out"])
    if name == "Filter":
        return Filter(deserialize_expr(data["expr"]))
    if name == "Project":
        return Project([(n, deserialize_expr(e)) for n, e in data["items"]])
    if name == "Aggregate":
        return Aggregate(
            list(data["group_by"]), [AggSpec(out, fn, arg) for out, fn, arg in data["aggs"]]
        )
    if name == "AggregateTopK":
        return AggregateTopK(
            list(data["group_by"]),
            [AggSpec(out, fn, arg) for out, fn, arg in data["aggs"]],
            [(n, asc) for n, asc in data["keys"]],
            data["n"],
            project_items=(
                [(n, deserialize_expr(e)) for n, e in data["project_items"]]
                if data["project_items"] is not None
                else None
            ),
        )
    if name == "OrderBy":
        return OrderBy([(n, asc) for n, asc in data["keys"]])
    if name == "TopK":
        return TopK([(n, asc) for n, asc in data["keys"]], data["n"])
    if name == "Limit":
        return Limit(data["n"])
    if name == "Distinct":
        return Distinct(list(data["cols"]) if data["cols"] is not None else None)
    if name == "ProcedureCall":
        return ProcedureCall(
            data["name"],
            {n: deserialize_expr(e) for n, e in data["args"].items()},
        )
    raise PlanError(f"unknown operator kind {name!r}")


def serialize_plan(plan: LogicalPlan) -> dict[str, Any]:
    """A whole plan as a JSON-ready dict."""
    return {
        "ops": [serialize_op(op) for op in plan.ops],
        "returns": list(plan.returns) if plan.returns is not None else None,
        "description": plan.description,
    }


def deserialize_plan(data: dict[str, Any]) -> LogicalPlan:
    """Inverse of :func:`serialize_plan`."""
    return LogicalPlan(
        [deserialize_op(op) for op in data["ops"]],
        returns=list(data["returns"]) if data["returns"] is not None else None,
        description=data.get("description", ""),
    )
