"""The ``repro chaos`` campaign: seeded fault injection, checked answers.

The campaign drives the resilience layer end-to-end: a seeded
:class:`~repro.resilience.faults.FaultPlan` is installed over every named
fault site (memory-pool acquire, lock acquisition, plan-cache lookup,
operator execution) while generated queries and IU-style update batches
run against a resilient engine (``GES_f*`` with retry, degradation, and a
generous watchdog deadline).  Every query's answer is checked against a
*reference* run — the flat ``GES`` engine with fault injection off, over
the same read view — so the campaign asserts the paper-service contract
under failure:

* an injected fault is either **absorbed** (retried, degraded, or
  satisfied by a direct allocation) and the answer still matches the
  reference bag, or it is **surfaced** as a typed
  :class:`~repro.errors.GesError`;
* a fault is **never** a wrong answer and **never** a raw (untyped)
  exception;
* the store survives the campaign intact — a post-chaos pass of the
  PR-3 :class:`~repro.testkit.oracle.DifferentialOracle` (faults off)
  re-checks cross-engine agreement on fresh queries.

Concurrency is covered by folding in seeded
:func:`~repro.testkit.stress.run_stress` runs with faults installed:
writers retry injected commit failures and the snapshot-isolation
invariants must hold regardless.

Everything is keyed off ``ChaosConfig.seed`` via string-seeded
``random.Random`` streams, so one seed reproduces one exact campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.config import EngineConfig
from ..engine.service import GraphEngineService
from ..errors import GesError
from ..ldbc.validation import rows_bag
from ..obs.clock import now
from ..resilience.faults import SITES, FaultPlan, FaultRule, fault_scope
from ..resilience.retry import RetryPolicy, RetryStats
from .graphgen import fuzz_schema, random_graph_spec, store_from_spec
from .oracle import DifferentialOracle
from .querygen import QueryGenerator, UpdateGenerator
from .stress import StressConfig, run_stress


@dataclass
class ChaosConfig:
    """Knobs for one campaign; the seed fixes all randomness."""

    seed: int = 0
    iterations: int = 100
    graphs: int = 2
    profile: str = "default"
    #: Per-site probability that a hit fires an injected transient.
    fault_probability: float = 0.05
    #: Retry budget given to the resilient engine (and to update batches).
    retry_attempts: int = 6
    #: Watchdog budget for every chaos query.  Generous by default: the
    #: deadline-check path runs at every operator boundary without timing
    #: out healthy queries, which keeps same-seed campaigns deterministic.
    query_timeout_ms: float = 10_000.0
    #: Every n-th iteration applies an update batch instead of a query.
    update_every: int = 4
    #: Seeded concurrency-stress runs folded into the campaign.
    stress_runs: int = 2
    #: Kill -9 crash-recovery sweeps (each covers every crash site; see
    #: :mod:`repro.testkit.crashtest`).  0 keeps the campaign fork-free.
    crash_runs: int = 0
    #: Fresh queries re-checked by the differential oracle afterwards.
    oracle_checks: int = 8
    verbose: bool = False


@dataclass
class ChaosViolation:
    """One broken invariant — a wrong answer or a raw exception."""

    kind: str  # "rows" | "columns" | "raw" | "phantom" | "stress" | "oracle" | "crash" | "snapshot"
    graph: int
    iteration: int
    query: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] graph {self.graph} iter {self.iteration}: "
            f"{self.detail} (query: {self.query})"
        )


@dataclass
class ChaosReport:
    """Outcome of one campaign."""

    seed: int = 0
    queries: int = 0
    updates: int = 0
    ok: int = 0
    #: Typed GesError surfaces, counted by exception class name.
    typed_errors: dict[str, int] = field(default_factory=dict)
    #: Faults fired, per site, summed over graphs.
    fired: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    degraded: int = 0
    timeouts: int = 0
    direct_allocs: int = 0
    update_retries: int = 0
    stress_fault_retries: int = 0
    stress_dropped_batches: int = 0
    #: Kill -9 crash-recovery runs folded in (and how many actually died).
    crash_runs: int = 0
    crash_kills: int = 0
    snapshot_checks: int = 0
    oracle_queries: int = 0
    elapsed_s: float = 0.0
    violations: list[ChaosViolation] = field(default_factory=list)

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    @property
    def absorbed(self) -> int:
        """Faults that never reached the caller."""
        return (
            self.retries
            + self.degraded
            + self.direct_allocs
            + self.update_retries
            + self.stress_fault_retries
        )

    @property
    def surfaced(self) -> int:
        return sum(self.typed_errors.values())

    @property
    def passed(self) -> bool:
        if self.violations:
            return False
        # Accounting sanity: if faults fired, they must show up somewhere —
        # absorbed by retry/degrade/direct-alloc or surfaced typed.  (Exact
        # equality is not claimed: a degraded attempt may itself absorb a
        # second fault before the original error propagates.)
        if self.total_fired > 0 and self.absorbed + self.surfaced == 0:
            return False
        return True

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        surfaced = ", ".join(
            f"{name} x{count}" for name, count in sorted(self.typed_errors.items())
        )
        return (
            f"{status}: seed {self.seed}: {self.queries} queries + "
            f"{self.updates} updates, {self.total_fired} faults fired, "
            f"{self.absorbed} absorbed ({self.retries} retried, "
            f"{self.degraded} degraded, {self.direct_allocs} direct allocs, "
            f"{self.update_retries + self.stress_fault_retries} write retries), "
            f"{self.surfaced} surfaced typed ({surfaced or 'none'}), "
            f"{self.oracle_queries} oracle re-checks, "
            f"{self.crash_runs} crash runs ({self.crash_kills} kills), "
            f"{len(self.violations)} violations [{self.elapsed_s:.2f}s]"
        )


def _chaos_plan(config: ChaosConfig, graph: int) -> FaultPlan:
    """Probability faults on every site the campaign can reach."""
    rules = tuple(
        FaultRule(site=site, probability=config.fault_probability)
        for site in SITES
        # No snapshot I/O happens inside the loop; those sites get their
        # own dedicated coverage (snapshot-save check, crash harness).
        if site not in ("snapshot.load", "snapshot.save")
    )
    return FaultPlan(rules=rules, seed=config.seed * 1_000 + graph)


def _counter_value(counter) -> float:
    return counter.value if counter is not None else 0.0


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """One seeded chaos campaign; see the module docstring for invariants."""
    config = config if config is not None else ChaosConfig()
    report = ChaosReport(seed=config.seed)
    started = now()

    schema = fuzz_schema()
    seed = config.seed
    graphs = max(1, min(config.graphs, config.iterations or 1))
    per_graph = -(-max(1, config.iterations) // graphs)

    update_policy = RetryPolicy(
        attempts=max(config.retry_attempts, 8), backoff_ms=0.0, seed=seed
    )

    for g in range(graphs):
        spec = random_graph_spec(
            random.Random(f"{seed}:chaos:graph:{g}"),
            schema,
            config.profile,
            seed=seed,
        )
        store = store_from_spec(spec)
        reference = GraphEngineService(store, EngineConfig.ges())
        resilient = GraphEngineService(
            store,
            EngineConfig.ges_f_star(
                query_timeout_ms=config.query_timeout_ms,
                retry_attempts=config.retry_attempts,
                retry_backoff_ms=0.0,
                retry_seed=seed,
                degrade=True,
            ),
        )
        plan = _chaos_plan(config, g)
        qgen = QueryGenerator(schema, random.Random(f"{seed}:chaos:queries:{g}"))
        ugen = UpdateGenerator(
            schema, random.Random(f"{seed}:chaos:updates:{g}"), spec, config.profile
        )
        flow = random.Random(f"{seed}:chaos:flow:{g}")
        manager = resilient.txn_manager

        retries0 = _counter_value(resilient._m_retries)
        degraded0 = _counter_value(resilient._m_degraded)
        timeouts0 = _counter_value(resilient._m_timeouts)
        allocs0 = manager.pool.direct_allocs
        updates_alive = True

        for i in range(per_graph):
            do_update = (
                updates_alive
                and config.update_every > 0
                and i % config.update_every == config.update_every - 1
            )
            if do_update:
                report.updates += 1
                batch = ugen.batch()
                stats = RetryStats()
                try:
                    with fault_scope(plan):
                        update_policy.run(
                            lambda: batch.apply(manager), on_retry=stats.record
                        )
                except GesError as exc:
                    # Retries exhausted: the batch was aborted whole.  The
                    # update generator's internal model now leads the store,
                    # so stop issuing updates for this graph — later batches
                    # could target rows that were never created.
                    name = type(exc).__name__
                    report.typed_errors[name] = report.typed_errors.get(name, 0) + 1
                    updates_alive = False
                except Exception as exc:  # noqa: BLE001 — the check itself
                    report.violations.append(
                        ChaosViolation(
                            "raw", g, i, "update batch",
                            f"raw exception {type(exc).__name__}: {exc}",
                        )
                    )
                report.update_retries += stats.retries
                continue

            report.queries += 1
            query = (
                qgen.cypher_query(spec) if flow.random() < 0.3 else qgen.query(spec)
            )
            runnable = query.plan if query.plan is not None else query.cypher
            view = store.read_view(manager.versions.current(), manager.overlay)

            expected_rows = None
            expected_error: str | None = None
            try:
                expected_rows = reference.execute(runnable, query.params, view=view)
            except GesError as exc:
                expected_error = type(exc).__name__
            except Exception as exc:  # noqa: BLE001
                report.violations.append(
                    ChaosViolation(
                        "raw", g, i, query.describe(),
                        f"reference raised raw {type(exc).__name__}: {exc}",
                    )
                )
                continue

            try:
                with fault_scope(plan):
                    result = resilient.execute(runnable, query.params, view=view)
            except GesError as exc:
                name = type(exc).__name__
                report.typed_errors[name] = report.typed_errors.get(name, 0) + 1
                continue
            except Exception as exc:  # noqa: BLE001
                report.violations.append(
                    ChaosViolation(
                        "raw", g, i, query.describe(),
                        f"raw exception {type(exc).__name__}: {exc}",
                    )
                )
                continue

            if expected_error is not None:
                report.violations.append(
                    ChaosViolation(
                        "phantom", g, i, query.describe(),
                        f"returned {len(result.rows)} rows where the "
                        f"reference raised {expected_error}",
                    )
                )
                continue
            if list(result.columns) != list(expected_rows.columns):
                report.violations.append(
                    ChaosViolation(
                        "columns", g, i, query.describe(),
                        f"{result.columns!r} != {expected_rows.columns!r}",
                    )
                )
                continue
            if rows_bag(result.rows) != rows_bag(expected_rows.rows):
                report.violations.append(
                    ChaosViolation(
                        "rows", g, i, query.describe(),
                        f"wrong answer under faults: {len(result.rows)} vs "
                        f"{len(expected_rows.rows)} reference rows",
                    )
                )
                continue
            report.ok += 1

        report.retries += int(_counter_value(resilient._m_retries) - retries0)
        report.degraded += int(_counter_value(resilient._m_degraded) - degraded0)
        report.timeouts += int(_counter_value(resilient._m_timeouts) - timeouts0)
        report.direct_allocs += manager.pool.direct_allocs - allocs0
        for site, stats_by_site in plan.summary().items():
            report.fired[site] = report.fired.get(site, 0) + stats_by_site["fired"]

        # Post-chaos integrity: with faults OFF, every engine variant must
        # still agree on fresh queries over the mutated store.
        oracle = DifferentialOracle(store)
        try:
            final_view = store.read_view(
                manager.versions.current(), manager.overlay
            )
            for k in range(config.oracle_checks):
                probe = qgen.query(spec)
                report.oracle_queries += 1
                for mismatch in oracle.check(probe, view=final_view):
                    report.violations.append(
                        ChaosViolation(
                            "oracle", g, -1, probe.describe(),
                            f"post-chaos divergence: {mismatch}",
                        )
                    )
        finally:
            oracle.close()  # the pooled engine holds shm segments

    # Concurrency under faults: seeded stress runs with injection on the
    # lock and pool sites; writers must retry and invariants must hold.
    stress_rules = (
        FaultRule(site="locks.acquire", probability=config.fault_probability * 2),
        FaultRule(site="memory_pool.acquire", probability=config.fault_probability),
    )
    for s in range(config.stress_runs):
        stress = run_stress(
            StressConfig(
                seed=seed * 10_000 + s,
                faults=FaultPlan(rules=stress_rules, seed=seed * 10_000 + s),
            )
        )
        report.stress_fault_retries += stress.fault_retries
        report.stress_dropped_batches += stress.dropped_batches
        for violation in stress.violations:
            report.violations.append(
                ChaosViolation("stress", -1, s, f"stress seed {seed * 10_000 + s}",
                               violation)
            )

    # Snapshot-save atomicity under injected faults: a failed save must
    # surface typed and leave the target path untouched — no half-written
    # snapshot, no stray temp dirs — and a clean retry must then succeed.
    if store is not None:
        _check_snapshot_save(config, store, report)

    # Kill -9 crash-recovery sweeps: every durability crash site, child
    # murdered mid-protocol, parent recovers and compares differentially.
    if config.crash_runs > 0:
        from .crashtest import CrashConfig, run_crash
        from ..durability.hooks import CRASH_SITES

        for c in range(config.crash_runs):
            for site in CRASH_SITES:
                crash = run_crash(
                    CrashConfig(
                        seed=seed * 100 + c,
                        kill_point=site,
                        batches=12,
                        checkpoint_every=4,
                        profile=config.profile,
                    )
                )
                report.crash_runs += 1
                if crash.killed:
                    report.crash_kills += 1
                for violation in crash.violations:
                    report.violations.append(
                        ChaosViolation(
                            "crash", -1, c, f"kill -9 @ {site}", violation
                        )
                    )

    report.elapsed_s = now() - started
    return report


def _check_snapshot_save(
    config: ChaosConfig, store, report: ChaosReport
) -> None:
    """Injected ``snapshot.save`` failures must never strand bytes."""
    import tempfile
    from pathlib import Path

    from ..errors import TransientError
    from ..storage.io import load_graph, save_graph

    plan = FaultPlan(
        rules=(FaultRule(site="snapshot.save", probability=1.0, max_fires=1),),
        seed=config.seed,
    )
    report.snapshot_checks += 1
    with tempfile.TemporaryDirectory(prefix="ges-chaos-snap-") as tdir:
        target = Path(tdir) / "snap"
        try:
            with fault_scope(plan):
                save_graph(store, target)
            report.violations.append(
                ChaosViolation(
                    "snapshot", -1, 0, "save_graph",
                    "snapshot.save fault rule (p=1.0) did not fire",
                )
            )
        except TransientError:
            pass
        leftovers = sorted(p.name for p in Path(tdir).iterdir())
        if leftovers:
            report.violations.append(
                ChaosViolation(
                    "snapshot", -1, 0, "save_graph",
                    f"failed save left bytes behind: {leftovers}",
                )
            )
        # Faults exhausted (max_fires=1): the retry must produce a
        # complete, loadable snapshot at the same target.
        try:
            with fault_scope(plan):
                save_graph(store, target)
            load_graph(target)
        except Exception as exc:  # noqa: BLE001 — the check itself
            report.violations.append(
                ChaosViolation(
                    "snapshot", -1, 0, "save_graph",
                    f"post-fault retry failed: {type(exc).__name__}: {exc}",
                )
            )
