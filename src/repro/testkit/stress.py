"""Deterministic concurrency stress for the MVCC transaction layer.

Real thread interleavings are not reproducible, so this stressor runs
writer, reader, and GC actors as *coroutines* under a seeded scheduler:
every actor is a generator that yields at each interleaving point, and a
``random.Random(seed)`` picks which actor advances next.  One seed =
one exact interleaving, forever — a failing run is a repro, not a flake.

The store physically mutates in place (version-stamped edges, in-place
property writes with copy-on-write pre-images), so the invariants checked
here are exactly the paper's §5 snapshot-isolation contract:

* **batch atomicity** — a reader pinned at version ``v`` sees precisely
  the prefix of commits ``<= v``, never a partially applied IU batch,
  even though later writes are already physically present;
* **pinned-view stability** — re-reading a pinned view after more commits
  (and GC runs) interleave returns byte-identical state;
* **GC safety** — pruning the version chain up to the *oldest active
  pin* never loses a committed edge, vertex, or property pre-image any
  live reader still needs.

Writers own disjoint source-vertex ranges, so the model (a commit log
mapping version -> expected graph state) is exact without conflict
resolution logic.

With ``pooled_readers > 0`` an extra actor kind extends the
pinned-view-stability invariant **across the process boundary**: it pins
a version, lets later commits physically mutate the store in place, and
only then exports the pinned view to shared memory and has a pool worker
re-derive the full vertex/property/edge state with Cypher.  The worker
must see exactly the pinned version — copy-on-write patch-back and MVCC
stamp filtering have to survive the export.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..errors import LockTimeout, TransientError
from ..resilience.faults import FaultPlan, fault_scope
from ..storage.catalog import (
    Direction,
    EdgeLabelDef,
    GraphSchema,
    PropertyDef,
    VertexLabelDef,
)
from ..storage.graph import GraphStore, VertexRef
from ..txn.transaction import TransactionManager
from ..types import DataType


@dataclass
class StressConfig:
    """Knobs for one stress run; the seed fixes the whole interleaving."""

    seed: int = 0
    writers: int = 3
    readers: int = 2
    batches_per_writer: int = 6
    ops_per_batch: tuple[int, int] = (1, 5)
    pins_per_reader: int = 5
    checks_per_pin: int = 2
    base_vertices: int = 12
    gc: bool = True
    gc_rounds: int = 8
    #: Readers that check their pin through a shared-memory export and a
    #: worker *process* instead of an in-process view (0 = off).
    pooled_readers: int = 0
    #: Seeded fault plan installed for the whole run (None = no injection).
    #: Writers retry commits that fail with an injected transient or lock
    #: timeout; a batch that exhausts its retries is aborted and *not*
    #: folded into the model — never half-applied.
    faults: FaultPlan | None = None
    commit_attempts: int = 8


@dataclass
class StressReport:
    """Outcome of one stress run."""

    commits: int = 0
    reads: int = 0
    pooled_reads: int = 0
    gc_runs: int = 0
    gc_released: int = 0
    final_version: int = 0
    fault_retries: int = 0
    dropped_batches: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        injected = (
            f", {self.fault_retries} fault retries"
            f" ({self.dropped_batches} batches dropped)"
            if self.fault_retries or self.dropped_batches
            else ""
        )
        pooled = (
            f" ({self.pooled_reads} cross-process)" if self.pooled_reads else ""
        )
        return (
            f"{status}: {self.commits} commits, {self.reads} pinned reads{pooled}, "
            f"{self.gc_runs} GC runs ({self.gc_released} pre-images released), "
            f"{len(self.violations)} violations{injected}"
        )


@dataclass
class _State:
    """Expected committed graph state (the model side of the check)."""

    edges: frozenset  # of (src_row, dst_row)
    vals: dict[int, Any]  # row -> committed "val" property
    vcount: int


def _stress_schema() -> GraphSchema:
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "N",
            [PropertyDef("id", DataType.INT64), PropertyDef("val", DataType.INT64)],
            primary_key="id",
        )
    )
    schema.add_edge_label(EdgeLabelDef("E", "N", "N"))
    return schema


def run_stress(config: StressConfig | None = None) -> StressReport:
    """One seeded stress run; see the module docstring for the invariants."""
    config = config if config is not None else StressConfig()
    report = StressReport()

    schema = _stress_schema()
    store = GraphStore(schema)
    n0 = max(config.base_vertices, config.writers)
    store.bulk_load_vertices(
        "N",
        {
            "id": np.arange(n0, dtype=np.int64),
            "val": np.zeros(n0, dtype=np.int64),
        },
    )
    store.bulk_load_edges(
        "E", "N", "N", np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    )
    manager = TransactionManager(store)
    adjacency_key = schema.expand_keys("E", Direction.OUT, "N", "N")[0]

    # The commit log: version -> full expected state at that version.
    history: dict[int, _State] = {0: _State(frozenset(), {r: 0 for r in range(n0)}, n0)}
    model = {"edges": set(), "vals": {r: 0 for r in range(n0)}, "vcount": n0}
    pins: dict[int, int] = {}  # reader id -> pinned version
    gc_floor = [0]  # versions below this are pruned; new pins must be >= it
    next_pk = [10 * n0]
    span = n0 // config.writers

    def verify(view, version: int, expected: _State, who: str) -> None:
        report.reads += 1
        visible = set(int(r) for r in view.all_rows("N"))
        if visible != set(range(expected.vcount)):
            report.violations.append(
                f"{who} @v{version}: vertex set {sorted(visible)[:8]}... "
                f"!= expected 0..{expected.vcount - 1}"
            )
        observed = set()
        for src in range(expected.vcount):
            for nbr in view.neighbors(adjacency_key, src):
                observed.add((src, int(nbr)))
        if observed != set(expected.edges):
            extra = sorted(observed - set(expected.edges))[:4]
            missing = sorted(set(expected.edges) - observed)[:4]
            report.violations.append(
                f"{who} @v{version}: edge set diverged "
                f"(extra={extra}, missing={missing})"
            )
        for row in range(expected.vcount):
            value = view.get_property("N", row, "val")
            value = int(value) if value is not None else value
            if value != expected.vals[row]:
                report.violations.append(
                    f"{who} @v{version}: val[{row}] = {value!r}, "
                    f"expected {expected.vals[row]!r}"
                )

    def writer(w: int) -> Iterator[None]:
        rng = random.Random(f"{config.seed}:writer:{w}")
        own = range(w * span, (w + 1) * span)
        for _ in range(config.batches_per_writer):
            txn = manager.begin()
            adds: list[tuple[int, int]] = []
            removes: list[tuple[int, int]] = []
            props: dict[int, int] = {}
            new_vals: list[int] = []
            for _ in range(rng.randint(*config.ops_per_batch)):
                yield  # interleaving point: the batch is staged, not visible
                kind = rng.choices(
                    ("add_edge", "remove_edge", "set_prop", "add_vertex"),
                    weights=(4, 2, 3, 1),
                )[0]
                if kind == "add_edge":
                    for _attempt in range(4):
                        pair = (
                            rng.choice(list(own)),
                            rng.randrange(model["vcount"]),
                        )
                        live = pair in model["edges"] or pair in adds
                        if not live and pair not in removes:
                            txn.add_edge(
                                "E", VertexRef("N", pair[0]), VertexRef("N", pair[1])
                            )
                            adds.append(pair)
                            break
                elif kind == "remove_edge":
                    mine = [
                        p
                        for p in model["edges"]
                        if p[0] in own and p not in removes and p not in adds
                    ]
                    if mine:
                        pair = rng.choice(sorted(mine))
                        txn.remove_edge(
                            "E", VertexRef("N", pair[0]), VertexRef("N", pair[1])
                        )
                        removes.append(pair)
                elif kind == "set_prop":
                    row = rng.choice(list(own))
                    value = rng.randint(0, 10_000)
                    txn.set_vertex_property("N", row, "val", value)
                    props[row] = value
                else:
                    value = rng.randint(0, 10_000)
                    txn.add_vertex("N", {"id": next_pk[0], "val": value})
                    next_pk[0] += 1
                    new_vals.append(value)
            yield  # last interleaving point before the atomic commit
            version = None
            for attempt in range(config.commit_attempts):
                try:
                    version = txn.commit()
                    break
                except (TransientError, LockTimeout):
                    # An injected fault (or lock expiry) fires before any
                    # lock is granted, so the transaction is still open,
                    # holds nothing, and can simply be re-committed.
                    report.fault_retries += 1
                    yield  # back off by yielding the interleaving slot
            if version is None:
                # Retries exhausted: the batch is dropped whole — aborted,
                # never folded into the model, never partially visible.
                txn.abort()
                report.dropped_batches += 1
                yield
                continue
            # Fold the batch into the model as one atomic state transition.
            for pair in adds:
                model["edges"].add(pair)
            for pair in removes:
                model["edges"].discard(pair)
            model["vals"].update(props)
            for value in new_vals:
                model["vals"][model["vcount"]] = value
                model["vcount"] += 1
            history[version] = _State(
                frozenset(model["edges"]), dict(model["vals"]), model["vcount"]
            )
            report.commits += 1
            yield

    def reader(r: int) -> Iterator[None]:
        rng = random.Random(f"{config.seed}:reader:{r}")
        for _ in range(config.pins_per_reader):
            # Snapshots below the GC floor are gone by contract; a valid
            # reader can only pin at or above it.
            version = rng.choice([v for v in sorted(history) if v >= gc_floor[0]])
            expected = history[version]
            view = store.read_view(version, manager.overlay)
            pins[r] = version
            verify(view, version, expected, f"reader-{r}")
            for _ in range(config.checks_per_pin):
                yield  # commits and GC interleave here; the pin must hold
                verify(view, version, expected, f"reader-{r}")
            del pins[r]
            yield

    def pooled_reader(r: int) -> Iterator[None]:
        # Same pin discipline as reader(), but the check runs in a worker
        # *process* against a shared-memory export taken only after later
        # commits have already physically mutated the store under the pin.
        from ..errors import GesError
        from ..parallel import shared_pool
        from ..parallel.pool import SnapshotTask, raise_worker_reply
        from ..parallel.shm import _unlink_segment, export_view

        rng = random.Random(f"{config.seed}:pooled:{r}")
        pool = shared_pool(1)
        key = config.readers + r  # distinct pins[] slot from plain readers

        def worker_rows(manifest: dict, version: int, cypher: str) -> set:
            reply = pool.run(
                SnapshotTask(
                    {
                        "op": "exec",
                        "mode": "whole",
                        "cypher": cypher,
                        "snapshot_id": manifest["snapshot_id"],
                        "version": version,
                    },
                    snapshot_id=manifest["snapshot_id"],
                    manifest=manifest,
                ),
                timeout_s=60.0,
            )
            if not reply.get("ok"):
                raise_worker_reply(reply)
            return {tuple(int(v) for v in row) for row in reply["rows"]}

        for _ in range(config.pins_per_reader):
            version = rng.choice([v for v in sorted(history) if v >= gc_floor[0]])
            expected = history[version]
            view = store.read_view(version, manager.overlay)
            pins[key] = version
            for _ in range(config.checks_per_pin):
                yield  # commits mutate the store in place under the pin
            manifest, segment = export_view(view)
            try:
                ids = {
                    row: int(view.get_property("N", row, "id"))
                    for row in range(expected.vcount)
                }
                want_vals = {
                    (ids[row], expected.vals[row]) for row in range(expected.vcount)
                }
                got_vals = worker_rows(
                    manifest, version, "MATCH (a:N) RETURN a.id, a.val"
                )
                if got_vals != want_vals:
                    report.violations.append(
                        f"pooled-reader-{r} @v{version}: worker vals diverged "
                        f"(extra={sorted(got_vals - want_vals)[:4]}, "
                        f"missing={sorted(want_vals - got_vals)[:4]})"
                    )
                want_edges = {(ids[s], ids[d]) for s, d in expected.edges}
                got_edges = worker_rows(
                    manifest, version, "MATCH (a:N)-[:E]->(b:N) RETURN a.id, b.id"
                )
                if got_edges != want_edges:
                    report.violations.append(
                        f"pooled-reader-{r} @v{version}: worker edges diverged "
                        f"(extra={sorted(got_edges - want_edges)[:4]}, "
                        f"missing={sorted(want_edges - got_edges)[:4]})"
                    )
                report.pooled_reads += 1
            except GesError as exc:
                report.violations.append(
                    f"pooled-reader-{r} @v{version}: worker check failed: "
                    f"{type(exc).__name__}: {exc}"
                )
            finally:
                _unlink_segment(segment)
            del pins[key]
            yield

    def collector() -> Iterator[None]:
        for _ in range(config.gc_rounds):
            yield
            # GC floor: nothing a live pinned reader can still need.
            floor = min(pins.values(), default=manager.versions.current())
            gc_floor[0] = max(gc_floor[0], floor)
            report.gc_released += manager.overlay.prune(floor)
            report.gc_runs += 1

    actors: list[Iterator[None]] = [writer(w) for w in range(config.writers)]
    actors += [reader(r) for r in range(config.readers)]
    actors += [pooled_reader(r) for r in range(config.pooled_readers)]
    if config.gc:
        actors.append(collector())

    scheduler = random.Random(f"{config.seed}:scheduler")
    if config.faults is not None:
        config.faults.reset()  # one seed = one interleaving, even on reuse
    with fault_scope(config.faults):
        while actors:
            idx = scheduler.randrange(len(actors))
            try:
                next(actors[idx])
            except StopIteration:
                actors.pop(idx)

    report.final_version = manager.versions.current()
    return report
