"""The differential oracle: N engines, one snapshot, one answer.

Every generated query runs on the flat (GES), factorized (GES_f), fused
(GES_f*), and Volcano row executors against the *same* read view, and the
de-factored result bags must be identical.  Three configuration axes ride
along as auxiliary engines: plan-cache off, tracing on, and a warm
cache-hit re-run — none of which may change a result.

Comparison reuses the LDBC cross-engine comparator
(:mod:`repro.ldbc.validation`): rows are normalized (NumPy scalars
unboxed, NaN collapsed into the one NULL class) and compared as bags,
because engines are free to order NULLs and break ties differently.  When
the plan ends in ``ORDER BY`` the oracle additionally checks each engine's
output is sorted on its keys — restricted to rows whose keys are all
non-NULL, the one regime where the ordering contract is engine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..baselines.volcano import VolcanoEngine
from ..engine.config import EngineConfig
from ..engine.service import GraphEngineService
from ..ldbc.validation import normalize_value, rows_bag
from ..plan.logical import AggregateTopK, Limit, LogicalPlan, OrderBy, TopK
from ..storage.graph import GraphReadView, GraphStore
from .querygen import GeneratedQuery

#: Engine names whose configs the default oracle instantiates.
BASELINE = "GES"


@dataclass
class OracleMismatch:
    """One cross-variant disagreement for a single query."""

    kind: str  # "rows" | "columns" | "error" | "order" | "cache-warm"
    variant: str
    detail: str

    @property
    def signature(self) -> tuple[str, str]:
        """What the shrinker must preserve while minimizing."""
        return (self.kind, self.variant)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.variant}: {self.detail}"


def _default_engines(store: GraphStore) -> dict[str, Any]:
    return {
        "GES": GraphEngineService(store, EngineConfig.ges()),
        "GES_f": GraphEngineService(store, EngineConfig.ges_f()),
        "GES_f*": GraphEngineService(store, EngineConfig.ges_f_star()),
        "GES_f*/nocache": GraphEngineService(
            store, EngineConfig.ges_f_star(plan_cache=False)
        ),
        "GES_f*/traced": GraphEngineService(
            store, EngineConfig.ges_f_star(tracing=True)
        ),
        # Cross-process: shared-memory worker pool, scatter forced on even
        # for tiny fuzz graphs so both pooled paths stay under test.
        "GES/pooled": GraphEngineService(
            store, EngineConfig.ges(workers=2, scatter_min_rows=1)
        ),
        "Volcano": VolcanoEngine(store),
    }


def _order_spec(plan: LogicalPlan) -> list[tuple[str, bool]] | None:
    """The terminal sort keys, if the plan promises an output order."""
    ops = plan.ops
    if not ops:
        return None
    last = ops[-1]
    if isinstance(last, (TopK, AggregateTopK)):
        return list(last.keys)
    if isinstance(last, OrderBy):
        return list(last.keys)
    if isinstance(last, Limit) and len(ops) >= 2 and isinstance(ops[-2], OrderBy):
        return list(ops[-2].keys)
    return None


def _sorted_violation(
    rows: list[tuple], columns: list[str], keys: list[tuple[str, bool]]
) -> str | None:
    """First out-of-order adjacent pair over all-non-NULL-key rows, if any."""
    try:
        idx = [columns.index(name) for name, _ in keys]
    except ValueError:
        return None  # keys not in the returned columns: order not checkable
    directions = [asc for _, asc in keys]
    previous: list[Any] | None = None
    for row in rows:
        values = [normalize_value(row[i]) for i in idx]
        if any(v is None for v in values):
            continue  # NULL placement is engine-specific
        if previous is not None:
            for prev, cur, asc in zip(previous, values, directions):
                if prev == cur:
                    continue
                in_order = prev < cur if asc else prev > cur
                if not in_order:
                    return f"{previous!r} before {values!r} under keys {keys!r}"
                break
        previous = values
    return None


class DifferentialOracle:
    """Runs one query on every engine over one snapshot and diffs the bags.

    ``engines`` is injectable so tests can wire in a deliberately broken
    executor and watch the oracle catch it.
    """

    def __init__(
        self,
        store: GraphStore,
        engines: Mapping[str, Any] | None = None,
        baseline: str = BASELINE,
    ) -> None:
        self.store = store
        self.engines = dict(engines) if engines is not None else _default_engines(store)
        if baseline not in self.engines:
            raise ValueError(f"baseline engine {baseline!r} not in engine map")
        self.baseline = baseline

    def close(self) -> None:
        """Release engine resources — pooled engines hold exported shm
        segments tied to this oracle's (usually throwaway) store.  Engines
        without a ``close`` (Volcano, plain services) are left alone."""
        for engine in self.engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()

    def _check_uniform_rejection(
        self, query: GeneratedQuery, view: GraphReadView, exc: Exception
    ) -> list[OracleMismatch]:
        """Unparseable text is fine only if every frontend rejects it alike."""
        expected = type(exc).__name__
        mismatches = []
        for name, engine in self.engines.items():
            if isinstance(engine, VolcanoEngine):
                continue  # no text frontend
            try:
                engine.execute(query.cypher, query.params, view=view)
            except Exception as other:  # noqa: BLE001
                if type(other).__name__ != expected:
                    mismatches.append(
                        OracleMismatch(
                            "error", name, f"{type(other).__name__} != {expected}"
                        )
                    )
            else:
                mismatches.append(
                    OracleMismatch(
                        "error", name, f"accepted text the baseline rejects ({expected})"
                    )
                )
        return mismatches

    def check(
        self, query: GeneratedQuery, view: GraphReadView | None = None
    ) -> list[OracleMismatch]:
        """All disagreements for *query* (empty list = every engine agrees)."""
        view = view if view is not None else self.store.read_view(None)
        plan = query.plan
        if plan is None:
            assert query.cypher is not None
            # One parse+bind, engine-independent, gives Volcano its plan;
            # the GES services still execute the raw text so the string
            # path (parser + plan-cache keying) stays under test.
            try:
                plan = self.engines[self.baseline].compile(query.cypher)
            except Exception as exc:  # noqa: BLE001
                return self._check_uniform_rejection(query, view, exc)

        outcomes: dict[str, Any] = {}
        errors: dict[str, str] = {}
        for name, engine in self.engines.items():
            runnable = (
                plan
                if isinstance(engine, VolcanoEngine) or query.cypher is None
                else query.cypher
            )
            try:
                outcomes[name] = engine.execute(runnable, query.params, view=view)
            except Exception as exc:  # noqa: BLE001 — the diff IS the product
                errors[name] = f"{type(exc).__name__}: {exc}"

        mismatches: list[OracleMismatch] = []
        if errors:
            if len(errors) == len(self.engines) and len(set(errors.values())) == 1:
                # Uniform rejection is agreement (the generator emitted an
                # unplannable query); anything else is a divergence.
                return []
            for name, message in errors.items():
                mismatches.append(OracleMismatch("error", name, message))
            if not outcomes:
                return mismatches

        baseline_name = (
            self.baseline if self.baseline in outcomes else next(iter(outcomes))
        )
        base = outcomes[baseline_name]
        base_bag = rows_bag(base.rows)
        order = _order_spec(plan)
        for name, result in outcomes.items():
            if list(result.columns) != list(base.columns):
                mismatches.append(
                    OracleMismatch(
                        "columns",
                        name,
                        f"{result.columns!r} != {base.columns!r}",
                    )
                )
                continue
            if name != baseline_name:
                bag = rows_bag(result.rows)
                if bag != base_bag:
                    extra = bag - base_bag
                    missing = base_bag - bag
                    mismatches.append(
                        OracleMismatch(
                            "rows",
                            name,
                            f"{len(result.rows)} vs {len(base.rows)} rows; "
                            f"extra={_preview(extra)} missing={_preview(missing)}",
                        )
                    )
            if order is not None:
                violation = _sorted_violation(
                    result.rows, list(result.columns), order
                )
                if violation is not None:
                    mismatches.append(OracleMismatch("order", name, violation))

        # Warm cache-hit agreement: the second run of the same text/plan is
        # served from the plan cache and must not change the answer.
        if baseline_name == self.baseline and not errors:
            runnable = query.cypher if query.cypher is not None else plan
            try:
                warm = self.engines[self.baseline].execute(
                    runnable, query.params, view=view
                )
            except Exception as exc:  # noqa: BLE001
                mismatches.append(
                    OracleMismatch(
                        "cache-warm", self.baseline, f"{type(exc).__name__}: {exc}"
                    )
                )
            else:
                if rows_bag(warm.rows) != base_bag:
                    mismatches.append(
                        OracleMismatch(
                            "cache-warm",
                            self.baseline,
                            f"warm run returned {len(warm.rows)} rows, "
                            f"cold returned {len(base.rows)}",
                        )
                    )
        return mismatches


def _preview(bag, limit: int = 3) -> str:
    items = list(bag.items())[:limit]
    rendered = ", ".join(f"{row!r}x{count}" for row, count in items)
    more = sum(bag.values()) - sum(c for _, c in items)
    return "{" + rendered + (f", +{more} more" if more > 0 else "") + "}"
