"""Seeded, schema-aware random graph generation.

The generator is driven entirely by stdlib :class:`random.Random`, whose
output is specified to be identical across platforms and process restarts
for one seed — the seed-determinism regression tests rely on this.  It
works against *any* :class:`~repro.storage.catalog.GraphSchema`: property
values are drawn by declared dtype (including NULLs for every type and NaN
for floats, the comparator's adversarial cases), and edges are drawn per
edge definition with skewed degrees so expansions fan out unevenly.

Graphs exist in two representations:

* a :class:`GraphSpec` — plain lists/dicts, JSON-serializable, the form the
  shrinker mutates and corpus entries embed;
* a :class:`~repro.storage.graph.GraphStore` — built from a spec via
  :func:`store_from_spec`, what engines execute against.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..storage.catalog import EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef
from ..storage.graph import GraphStore
from ..types import DataType

#: Per-label primary-key base so ids never collide across labels.
PK_STRIDE = 1_000_000

_STRING_POOL = ["a", "b", "ab", "x", "yy", "zzz", "Ada", "Bob", "Cy", ""]


@dataclass(frozen=True)
class GraphProfile:
    """Size/shape knobs for one generation profile."""

    name: str
    min_rows: int = 0  # per vertex label (0 allows empty unions)
    max_rows: int = 14
    max_degree: int = 4  # per-source draw ceiling per edge definition
    null_rate: float = 0.15  # P(property is NULL)
    nan_rate: float = 0.2  # P(float property is NaN), applied after nulls
    duplicate_edge_rate: float = 0.1  # P(an edge is emitted twice)


PROFILES: dict[str, GraphProfile] = {
    "quick": GraphProfile("quick", max_rows=8, max_degree=3),
    "default": GraphProfile("default"),
    "dense": GraphProfile("dense", min_rows=4, max_rows=24, max_degree=7),
}


@dataclass
class GraphSpec:
    """A concrete graph as plain data: schema + columns + edge lists.

    ``vertices`` maps label -> column name -> list of values (aligned);
    ``edges`` is a list of dicts with ``label``/``src_label``/``dst_label``,
    parallel ``src``/``dst`` row-index lists, and optional ``props``.
    """

    schema: dict[str, Any]
    vertices: dict[str, dict[str, list]]
    edges: list[dict[str, Any]]
    seed: int | None = None
    profile: str = "default"

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "vertices": self.vertices,
            "edges": self.edges,
            "seed": self.seed,
            "profile": self.profile,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "GraphSpec":
        return cls(
            schema=data["schema"],
            vertices=data["vertices"],
            edges=data["edges"],
            seed=data.get("seed"),
            profile=data.get("profile", "default"),
        )

    def vertex_count(self, label: str) -> int:
        columns = self.vertices.get(label) or {}
        if not columns:
            return 0
        return len(next(iter(columns.values())))

    def total_vertices(self) -> int:
        return sum(self.vertex_count(label) for label in self.vertices)

    def total_edges(self) -> int:
        return sum(len(e["src"]) for e in self.edges)


# -- schema (de)serialization --------------------------------------------------


def schema_to_json(schema: GraphSchema) -> dict[str, Any]:
    """Catalog contents as plain data (corpus entries embed this)."""
    vertices = []
    for name in schema.vertex_labels:
        vdef = schema.vertex_label(name)
        vertices.append(
            {
                "name": vdef.name,
                "properties": [[p.name, p.dtype.value] for p in vdef.properties],
                "primary_key": vdef.primary_key,
            }
        )
    edges = [
        {
            "name": edef.name,
            "src": edef.src_label,
            "dst": edef.dst_label,
            "properties": [[p.name, p.dtype.value] for p in edef.properties],
        }
        for edef in schema.iter_edge_definitions()
    ]
    return {"vertices": vertices, "edges": edges}


def schema_from_json(data: dict[str, Any]) -> GraphSchema:
    """Rebuild a :class:`GraphSchema` from its :func:`schema_to_json` payload."""
    schema = GraphSchema()
    for vdef in data["vertices"]:
        schema.add_vertex_label(
            VertexLabelDef(
                vdef["name"],
                [PropertyDef(n, DataType(d)) for n, d in vdef["properties"]],
                primary_key=vdef["primary_key"],
            )
        )
    for edef in data["edges"]:
        schema.add_edge_label(
            EdgeLabelDef(
                edef["name"],
                edef["src"],
                edef["dst"],
                [PropertyDef(n, DataType(d)) for n, d in edef["properties"]],
            )
        )
    return schema


# -- the default fuzz schema ----------------------------------------------------


def fuzz_schema() -> GraphSchema:
    """The standing fuzz schema: small, but union- and NULL-bearing.

    ``LIKES``, ``HAS_CREATOR``, and ``HAS_TAG`` each have two definitions
    sharing one name (Post and Comment endpoints), so Expands over them
    union multiple adjacency keys — the paper's polymorphic-edge case.
    ``KNOWS`` is a Person self-edge, enabling multi-hop patterns.
    """
    schema = GraphSchema()
    schema.add_vertex_label(
        VertexLabelDef(
            "Person",
            [
                PropertyDef("id", DataType.INT64),
                PropertyDef("name", DataType.STRING),
                PropertyDef("age", DataType.INT64),
                PropertyDef("score", DataType.FLOAT64),
                PropertyDef("active", DataType.BOOL),
            ],
            primary_key="id",
        )
    )
    for message_label in ("Post", "Comment"):
        schema.add_vertex_label(
            VertexLabelDef(
                message_label,
                [
                    PropertyDef("id", DataType.INT64),
                    PropertyDef("length", DataType.INT64),
                    PropertyDef("score", DataType.FLOAT64),
                ],
                primary_key="id",
            )
        )
    schema.add_vertex_label(
        VertexLabelDef(
            "Tag",
            [PropertyDef("id", DataType.INT64), PropertyDef("name", DataType.STRING)],
            primary_key="id",
        )
    )
    schema.add_edge_label(
        EdgeLabelDef("KNOWS", "Person", "Person", [PropertyDef("since", DataType.INT64)])
    )
    for message_label in ("Post", "Comment"):
        schema.add_edge_label(EdgeLabelDef("LIKES", "Person", message_label))
        schema.add_edge_label(EdgeLabelDef("HAS_CREATOR", message_label, "Person"))
        schema.add_edge_label(EdgeLabelDef("HAS_TAG", message_label, "Tag"))
    schema.add_edge_label(EdgeLabelDef("REPLY_OF", "Comment", "Post"))
    return schema


# -- value drawing ------------------------------------------------------------


def _draw_value(rng: random.Random, dtype: DataType, profile: GraphProfile) -> Any:
    if rng.random() < profile.null_rate:
        return None
    if dtype is DataType.FLOAT64 and rng.random() < profile.nan_rate:
        return float("nan")
    if dtype.is_integer_backed:
        return rng.randint(-20, 200)
    if dtype is DataType.FLOAT64:
        return round(rng.uniform(-10.0, 10.0), 3)
    if dtype is DataType.BOOL:
        return rng.random() < 0.5
    return rng.choice(_STRING_POOL)


def random_graph_spec(
    rng: random.Random,
    schema: GraphSchema | None = None,
    profile: GraphProfile | str = "default",
    seed: int | None = None,
) -> GraphSpec:
    """Draw a random :class:`GraphSpec` over *schema* (default: fuzz schema)."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if schema is None:
        schema = fuzz_schema()

    vertices: dict[str, dict[str, list]] = {}
    counts: dict[str, int] = {}
    for stride, label in enumerate(schema.vertex_labels, start=1):
        vdef = schema.vertex_label(label)
        n = rng.randint(profile.min_rows, profile.max_rows)
        counts[label] = n
        columns: dict[str, list] = {}
        for prop in vdef.properties:
            if prop.name == vdef.primary_key:
                # Dense, label-disjoint primary keys; a known base so the
                # query generator can also probe *missing* keys.
                columns[prop.name] = [stride * PK_STRIDE + i for i in range(n)]
            else:
                columns[prop.name] = [
                    _draw_value(rng, prop.dtype, profile) for _ in range(n)
                ]
        vertices[label] = columns

    edges: list[dict[str, Any]] = []
    for edef in schema.iter_edge_definitions():
        n_src, n_dst = counts[edef.src_label], counts[edef.dst_label]
        src_rows: list[int] = []
        dst_rows: list[int] = []
        props: dict[str, list] = {p.name: [] for p in edef.properties}
        if n_src and n_dst:
            for src in range(n_src):
                degree = rng.randint(0, profile.max_degree)
                for _ in range(degree):
                    dst = rng.randrange(n_dst)
                    repeats = 2 if rng.random() < profile.duplicate_edge_rate else 1
                    for _ in range(repeats):
                        src_rows.append(src)
                        dst_rows.append(dst)
                        for prop in edef.properties:
                            props[prop.name].append(
                                _draw_value(rng, prop.dtype, profile)
                            )
        edges.append(
            {
                "label": edef.name,
                "src_label": edef.src_label,
                "dst_label": edef.dst_label,
                "src": src_rows,
                "dst": dst_rows,
                "props": props,
            }
        )
    return GraphSpec(
        schema=schema_to_json(schema),
        vertices=vertices,
        edges=edges,
        seed=seed,
        profile=profile.name,
    )


def store_from_spec(spec: GraphSpec) -> GraphStore:
    """Materialize a :class:`GraphStore` from a spec (bulk-load path)."""
    schema = schema_from_json(spec.schema)
    store = GraphStore(schema)
    for label, columns in spec.vertices.items():
        vdef = schema.vertex_label(label)
        # Raw None-bearing lists: pack_values in the storage layer turns
        # the holes into cleared validity bits over inert fills.
        arrays = {prop.name: columns[prop.name] for prop in vdef.properties}
        store.bulk_load_vertices(label, arrays)
    for edge in spec.edges:
        edef = schema.edge_definition(
            edge["label"], edge["src_label"], edge["dst_label"]
        )
        props = None
        if edef.properties and edge["src"]:
            props = {
                prop.name: edge["props"][prop.name] for prop in edef.properties
            }
        store.bulk_load_edges(
            edge["label"],
            edge["src_label"],
            edge["dst_label"],
            np.asarray(edge["src"], dtype=np.int64),
            np.asarray(edge["dst"], dtype=np.int64),
            props,
        )
    return store


def generate_store(
    seed: int,
    schema: GraphSchema | None = None,
    profile: GraphProfile | str = "default",
) -> tuple[GraphStore, GraphSpec]:
    """One-call helper: seeded spec + store."""
    spec = random_graph_spec(random.Random(seed), schema, profile, seed=seed)
    return store_from_spec(spec), spec


def spec_digest(spec: GraphSpec) -> str:
    """Stable content digest of a spec (the determinism regression check).

    Canonical JSON with sorted keys; NaN serializes as the literal ``NaN``
    token, which is fine for hashing purposes.
    """
    payload = json.dumps(spec.to_json(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()
