"""ddmin-style failure minimization.

A raw fuzz failure is a (graph, update batches, query) triple that is far
larger than it needs to be.  The shrinker greedily tries smaller
candidates — fewer vertices per label, fewer edges, fewer update batches,
fewer plan operators, fewer returned columns — and keeps a candidate only
if rebuilding the store and re-running the differential oracle still
reproduces the *original failure signature* (the set of
``(kind, variant)`` pairs, so a shrink can't silently morph one bug into
a different one).

Every candidate evaluation builds a fresh store and fresh engines, so
shrinking is side-effect free and deterministic.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..storage.graph import GraphStore
from ..txn.transaction import TransactionManager
from .graphgen import GraphSpec, store_from_spec
from .oracle import DifferentialOracle
from .querygen import GeneratedQuery, UpdateBatch

OracleFactory = Callable[[GraphStore], DifferentialOracle]
Signature = frozenset  # of (kind, variant)


def failure_signature(mismatches: Iterable) -> Signature:
    """The invariant the shrinker preserves."""
    return frozenset(m.signature for m in mismatches)


def replay(
    query: GeneratedQuery,
    spec: GraphSpec,
    updates: list[UpdateBatch],
    oracle_factory: OracleFactory | None = None,
) -> list:
    """Rebuild the store, apply the batches, run the oracle once."""
    store = store_from_spec(spec)
    view = None
    if updates:
        manager = TransactionManager(store)
        for batch in updates:
            batch.apply(manager)
        view = store.read_view(manager.versions.current(), manager.overlay)
    oracle = (
        oracle_factory(store) if oracle_factory is not None else DifferentialOracle(store)
    )
    try:
        return oracle.check(query, view=view)
    finally:
        # Pooled engines hold exported shm segments tied to this
        # throwaway store; the other engines have no close().
        oracle.close()


def shrink_failure(
    query: GeneratedQuery,
    spec: GraphSpec,
    mismatches: Iterable,
    updates: list[UpdateBatch] | None = None,
    oracle_factory: OracleFactory | None = None,
    rounds: int = 3,
) -> tuple[GeneratedQuery, GraphSpec, list[UpdateBatch]]:
    """Minimize a failing triple while preserving its failure signature."""
    signature = failure_signature(mismatches)
    updates = list(updates or [])

    def reproduces(q: GeneratedQuery, s: GraphSpec, u: list[UpdateBatch]) -> bool:
        try:
            found = failure_signature(replay(q, s, u, oracle_factory))
        except Exception:  # noqa: BLE001 — a broken candidate is just "no"
            return False
        return signature <= found

    for _ in range(rounds):
        before = (
            spec.total_vertices(),
            spec.total_edges(),
            len(updates),
            _query_size(query),
        )
        updates = _shrink_updates(query, spec, updates, reproduces)
        spec = _shrink_vertices(query, spec, updates, reproduces)
        spec = _shrink_edges(query, spec, updates, reproduces)
        query = _shrink_query(query, spec, updates, reproduces)
        after = (
            spec.total_vertices(),
            spec.total_edges(),
            len(updates),
            _query_size(query),
        )
        if after == before:
            break  # fixpoint
    return query, spec, updates


def _query_size(query: GeneratedQuery) -> int:
    if query.plan is not None:
        return len(query.plan.ops) + len(query.plan.returns or [])
    return len(query.cypher or "")


# -- graph shrinking ------------------------------------------------------------


def _truncate_label(spec: GraphSpec, label: str, keep: int) -> GraphSpec:
    """First *keep* rows of one label; edges referencing cut rows drop too."""
    vertices = {
        l: ({c: v[:keep] for c, v in cols.items()} if l == label else cols)
        for l, cols in spec.vertices.items()
    }
    edges = []
    for group in spec.edges:
        src_cut = group["src_label"] == label
        dst_cut = group["dst_label"] == label
        if not (src_cut or dst_cut):
            edges.append(group)
            continue
        keep_idx = [
            i
            for i, (s, d) in enumerate(zip(group["src"], group["dst"]))
            if (not src_cut or s < keep) and (not dst_cut or d < keep)
        ]
        edges.append(_edge_subset(group, keep_idx))
    return GraphSpec(spec.schema, vertices, edges, seed=spec.seed, profile=spec.profile)


def _edge_subset(group: dict, keep_idx: list[int]) -> dict:
    return {
        "label": group["label"],
        "src_label": group["src_label"],
        "dst_label": group["dst_label"],
        "src": [group["src"][i] for i in keep_idx],
        "dst": [group["dst"][i] for i in keep_idx],
        "props": {
            name: [values[i] for i in keep_idx]
            for name, values in (group.get("props") or {}).items()
        },
    }


def _shrink_vertices(query, spec, updates, reproduces) -> GraphSpec:
    for label in list(spec.vertices):
        count = spec.vertex_count(label)
        # Halve while it still reproduces, then try the empty label.
        while count > 0:
            keep = count // 2
            candidate = _truncate_label(spec, label, keep)
            if reproduces(query, candidate, updates):
                spec, count = candidate, keep
            else:
                break
    return spec


def _shrink_edges(query, spec, updates, reproduces) -> GraphSpec:
    for g, group in enumerate(spec.edges):
        n = len(group["src"])
        if n == 0:
            continue
        # Whole-group removal first, then binary chops.
        empty = list(spec.edges)
        empty[g] = _edge_subset(group, [])
        candidate = GraphSpec(
            spec.schema, spec.vertices, empty, seed=spec.seed, profile=spec.profile
        )
        if reproduces(query, candidate, updates):
            spec = candidate
            continue
        while n > 1:
            progress = False
            for half in (list(range(n // 2)), list(range(n // 2, n))):
                chopped = list(spec.edges)
                chopped[g] = _edge_subset(spec.edges[g], half)
                candidate = GraphSpec(
                    spec.schema,
                    spec.vertices,
                    chopped,
                    seed=spec.seed,
                    profile=spec.profile,
                )
                if reproduces(query, candidate, updates):
                    spec = candidate
                    n = len(half)
                    progress = True
                    break
            if not progress:
                break
    return spec


def _shrink_updates(query, spec, updates, reproduces) -> list[UpdateBatch]:
    if not updates:
        return updates
    # Drop whole batches from the tail (later batches depend on earlier rows).
    while updates and reproduces(query, spec, updates[:-1]):
        updates = updates[:-1]
    # Then thin surviving batches op by op.
    out = list(updates)
    for i, batch in enumerate(out):
        ops = list(batch.ops)
        j = len(ops) - 1
        while j >= 0 and len(ops) > 1:
            candidate_ops = ops[:j] + ops[j + 1 :]
            candidate = out[:i] + [UpdateBatch(candidate_ops)] + out[i + 1 :]
            if reproduces(query, spec, candidate):
                ops = candidate_ops
                out = candidate
            j -= 1
    return out


# -- query shrinking ------------------------------------------------------------


def _shrink_query(query, spec, updates, reproduces) -> GeneratedQuery:
    if query.plan is None:
        return query  # Cypher text stays as captured
    from .plans import deserialize_plan, serialize_plan  # local: avoid cycle at import

    # Drop operators from the tail inward (dropping an op whose output the
    # rest of the plan needs makes every engine reject the plan uniformly,
    # which the signature check discards).
    changed = True
    while changed:
        changed = False
        ops = query.plan.ops
        for i in range(len(ops) - 1, 0, -1):
            payload = serialize_plan(query.plan)
            del payload["ops"][i]
            candidate = GeneratedQuery(
                plan=deserialize_plan(payload),
                params=query.params,
                features=query.features,
            )
            if reproduces(candidate, spec, updates):
                query = candidate
                changed = True
                break
    # Narrow the returned columns.
    returns = list(query.plan.returns or [])
    if len(returns) > 1:
        for name in list(returns):
            if len(returns) == 1:
                break
            narrowed = [c for c in returns if c != name]
            payload = serialize_plan(query.plan)
            payload["returns"] = narrowed
            candidate = GeneratedQuery(
                plan=deserialize_plan(payload),
                params=query.params,
                features=query.features,
            )
            if reproduces(candidate, spec, updates):
                query = candidate
                returns = narrowed
    return query
