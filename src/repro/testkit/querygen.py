"""Seeded random query / update-batch generation.

The generator walks a :class:`~repro.storage.catalog.GraphSchema` and emits
:class:`~repro.plan.logical.LogicalPlan` pipelines covering the executor
surface: seeks (hit and miss), scans, chained and multi-hop expands over
polymorphic edge names, optional match, edge-property projection, fused
neighbor filters, boolean filter trees, aggregation, DISTINCT, ORDER BY and
LIMIT.  A second entry point emits Cypher *text* for the subset the
frontend parses, so the differential oracle also exercises parse + bind +
plan-cache keying on query strings.

Everything is drawn from one stdlib :class:`random.Random`, so a seed fully
determines the output on every platform and across process restarts.

Cross-engine determinism rules baked into the generator (each engine is
free in how it orders NULLs and breaks ties, so the generator only emits
queries whose *bags* are engine-independent):

* ``ORDER BY`` keys are integer-typed, never NULL-bearing floats/strings;
* ``LIMIT`` is only attached when the sort keys cover every vertex
  variable (ties are then fully duplicate rows) and no edge-property
  column — the one column kind not functionally determined by the vertex
  variables — is returned; descending keys must be non-nullable;
* columns tainted by ``OPTIONAL MATCH`` never feed filters or sort keys
  (engines represent their NULLs differently mid-pipeline);
* ``sum``/``avg`` arguments are integer columns (exact arithmetic on every
  engine), ``group_by`` columns are never floats (NaN grouping).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..plan.expressions import (
    Arith,
    BoolOp,
    Cmp,
    Col,
    Expr,
    InSet,
    IsNull,
    Lit,
    Not,
    Param,
)
from ..plan.logical import (
    Aggregate,
    AggSpec,
    Distinct,
    Expand,
    Filter,
    GetProperty,
    Limit,
    LogicalPlan,
    NodeByIdSeek,
    NodeScan,
    OrderBy,
    Project,
)
from ..storage.catalog import Direction, GraphSchema
from ..storage.graph import VertexRef
from ..txn.transaction import TransactionManager
from ..types import DataType
from .graphgen import PK_STRIDE, PROFILES, GraphProfile, GraphSpec, _draw_value
from .plans import deserialize_plan, serialize_plan

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass
class GeneratedQuery:
    """One generated query: a plan, Cypher text, or both."""

    plan: LogicalPlan | None = None
    cypher: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    features: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "plan": serialize_plan(self.plan) if self.plan is not None else None,
            "cypher": self.cypher,
            "params": self.params,
            "features": self.features,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "GeneratedQuery":
        return cls(
            plan=deserialize_plan(data["plan"]) if data["plan"] is not None else None,
            cypher=data.get("cypher"),
            params=dict(data.get("params") or {}),
            features=list(data.get("features") or []),
        )

    def describe(self) -> str:
        if self.cypher is not None:
            return self.cypher
        assert self.plan is not None
        return " -> ".join(op.op_name for op in self.plan.ops)


@dataclass
class _ColumnInfo:
    name: str
    dtype: DataType
    tainted: bool  # produced under OPTIONAL MATCH (engine-specific NULL form)
    kind: str  # "var" | "prop" | "edge"


class QueryGenerator:
    """Draws random queries over one schema/graph."""

    def __init__(self, schema: GraphSchema, rng: random.Random) -> None:
        self.schema = schema
        self.rng = rng

    # -- plan-level generation ---------------------------------------------------

    def query(self, spec: GraphSpec) -> GeneratedQuery:
        """One random :class:`LogicalPlan` query valid over *spec*."""
        rng = self.rng
        ops: list[Any] = []
        features: list[str] = []
        params: dict[str, Any] = {}
        vars: dict[str, tuple[str, bool]] = {}  # name -> (label, tainted)
        columns: list[_ColumnInfo] = []
        counter = {"v": 0, "c": 0}

        def fresh(prefix: str) -> str:
            name = f"{prefix}{counter[prefix]}"
            counter[prefix] += 1
            return name

        # Source: scan, or a primary-key seek (sometimes deliberately missing).
        label = rng.choice(list(self.schema.vertex_labels))
        var = fresh("v")
        if rng.random() < 0.3:
            key = self._seek_key(spec, label)
            key_expr: Expr
            if rng.random() < 0.4:
                params["pk"] = key
                key_expr = Param("pk")
                features.append("param")
            else:
                key_expr = Lit(key)
            ops.append(NodeByIdSeek(var, label, key_expr))
            features.append("seek")
        else:
            ops.append(NodeScan(var, label))
            features.append("scan")
        vars[var] = (label, False)
        columns.append(_ColumnInfo(var, DataType.INT64, False, "var"))

        # Expansion chain.
        for _ in range(rng.randint(0, 3)):
            step = self._draw_expand(spec, vars, columns, fresh, features)
            if step is None:
                break
            ops.append(step)

        # Mid-pipeline property fetches.
        for _ in range(rng.randint(0, 3)):
            fetch = self._draw_get_property(vars, fresh)
            if fetch is None:
                break
            ops.append(fetch)
            label, tainted = vars[fetch.var]
            dtype = self.schema.vertex_label(label).property(fetch.prop).dtype
            columns.append(_ColumnInfo(fetch.out, dtype, tainted, "prop"))
            features.append("get-property")

        # Filter over untainted columns.
        if rng.random() < 0.55:
            predicate = self._draw_predicate(spec, columns, params, features)
            if predicate is not None:
                ops.append(Filter(predicate))
                features.append("filter")

        returns = self._terminal(ops, columns, features)
        plan = LogicalPlan(ops, returns=returns, description="fuzz")
        return GeneratedQuery(plan=plan, params=params, features=features)

    # -- pieces -------------------------------------------------------------------

    def _seek_key(self, spec: GraphSpec, label: str) -> int:
        """An existing primary key most of the time, a missing one sometimes."""
        rng = self.rng
        stride = list(self.schema.vertex_labels).index(label) + 1
        n = spec.vertex_count(label)
        if n == 0 or rng.random() < 0.2:
            return stride * PK_STRIDE + n + rng.randint(50, 500)  # miss
        return stride * PK_STRIDE + rng.randrange(n)

    def _draw_expand(self, spec, vars, columns, fresh, features):
        rng = self.rng
        candidates = []
        for var, (label, tainted) in vars.items():
            if tainted:
                continue  # never expand from an optional variable
            for edef in self.schema.iter_edge_definitions():
                if edef.src_label == label:
                    candidates.append((var, edef, Direction.OUT, edef.dst_label))
                if edef.dst_label == label:
                    candidates.append((var, edef, Direction.IN, edef.src_label))
        if not candidates:
            return None
        from_var, edef, direction, to_label = rng.choice(candidates)
        to_var = fresh("v")
        optional = rng.random() < 0.2
        multi_hop = (
            not optional
            and edef.src_label == edef.dst_label
            and rng.random() < 0.35
        )
        kwargs: dict[str, Any] = {
            "direction": direction,
            "to_label": to_label,
            "optional": optional,
        }
        if multi_hop:
            kwargs["min_hops"] = rng.randint(1, 2)
            kwargs["max_hops"] = rng.randint(kwargs["min_hops"], 3)
            features.append("multi-hop")
        elif edef.properties and rng.random() < 0.35:
            prop = rng.choice(edef.properties)
            out = fresh("c")
            kwargs["edge_props"] = {out: prop.name}
            columns.append(
                _ColumnInfo(out, prop.dtype, optional, "edge")
            )
            features.append("edge-props")
        if optional:
            features.append("optional")
        if direction is Direction.IN:
            features.append("expand-in")
        features.append("expand")
        vars[to_var] = (to_label, optional)
        columns.append(_ColumnInfo(to_var, DataType.INT64, optional, "var"))
        return Expand(from_var, to_var, edef.name, **kwargs)

    def _draw_get_property(self, vars, fresh):
        rng = self.rng
        var = rng.choice(list(vars))
        label, tainted = vars[var]
        props = [
            p
            for p in self.schema.vertex_label(label).properties
            # BOOL NULLs have no optional-fill representation shared by the
            # row and block engines, so skip bools on tainted variables.
            if not (tainted and p.dtype is DataType.BOOL)
        ]
        if not props:
            return None
        prop = rng.choice(props)
        return GetProperty(var, prop.name, fresh("c"))

    def _draw_predicate(self, spec, columns, params, features) -> Expr | None:
        rng = self.rng
        usable = [c for c in columns if not c.tainted]
        if not usable:
            return None
        terms = [
            self._draw_term(spec, rng.choice(usable), params, features)
            for _ in range(rng.randint(1, 2))
        ]
        if len(terms) == 1:
            expr = terms[0]
        else:
            expr = BoolOp(rng.choice(("and", "or")), terms)
        if rng.random() < 0.15:
            expr = Not(expr)
        return expr

    def _draw_term(self, spec, info: _ColumnInfo, params, features) -> Expr:
        rng = self.rng
        col = Col(info.name)
        if rng.random() < 0.15:
            features.append("isnull")
            return IsNull(col, negate=rng.random() < 0.5)
        if info.kind == "var":
            return Cmp(rng.choice(_CMP_OPS), col, Lit(rng.randint(0, 12)))
        if info.dtype is DataType.STRING:
            literal = rng.choice(["a", "ab", "x", "zzz", ""])
            return Cmp(rng.choice(("==", "!=")), col, Lit(literal))
        if info.dtype is DataType.BOOL:
            return Cmp("==", col, Lit(rng.random() < 0.5))
        if info.dtype is DataType.FLOAT64:
            return Cmp(rng.choice(_CMP_OPS), col, Lit(round(rng.uniform(-5, 5), 2)))
        # Integer columns: comparisons, parameters, or set membership.
        if rng.random() < 0.2:
            features.append("inset")
            values = {rng.randint(-5, 60) for _ in range(rng.randint(2, 4))}
            return InSet(col, Lit(frozenset(values)), negate=rng.random() < 0.3)
        if rng.random() < 0.3:
            name = f"p{len(params)}"
            params[name] = rng.randint(-5, 60)
            features.append("param")
            return Cmp(rng.choice(_CMP_OPS), col, Param(name))
        return Cmp(rng.choice(_CMP_OPS), col, Lit(rng.randint(-5, 60)))

    # -- terminal shapes -----------------------------------------------------------

    def _terminal(self, ops, columns, features) -> list[str]:
        rng = self.rng
        shape = rng.choices(
            ("plain", "aggregate", "order", "distinct"), weights=(4, 3, 3, 1)
        )[0]
        if shape == "aggregate":
            out = self._terminal_aggregate(ops, columns, features)
            if out is not None:
                return out
            shape = "plain"
        if shape == "order":
            out = self._terminal_order(ops, columns, features)
            if out is not None:
                return out
            shape = "plain"
        if shape == "distinct":
            cols = [
                c.name
                for c in columns
                if not c.tainted and c.dtype in (DataType.INT64, DataType.STRING)
            ]
            if cols:
                keep = rng.sample(cols, rng.randint(1, len(cols)))
                ops.append(Distinct(keep))
                features.append("distinct")
                return keep
            shape = "plain"
        return self._terminal_plain(ops, columns, features)

    def _terminal_plain(self, ops, columns, features) -> list[str]:
        rng = self.rng
        names = [c.name for c in columns]
        keep = rng.sample(names, rng.randint(1, len(names)))
        if rng.random() < 0.3:
            items: list[tuple[str, Expr]] = [(name, Col(name)) for name in keep]
            ints = [
                c.name
                for c in columns
                if c.name in keep and not c.tainted
                and (c.kind == "var" or c.dtype is DataType.INT64)
            ]
            if ints:
                source = rng.choice(ints)
                items.append(
                    ("k0", Arith("+", Col(source), Lit(rng.randint(0, 5))))
                )
                features.append("arith")
            ops.append(Project(items))
            features.append("project")
            keep = [name for name, _ in items]
        return keep

    def _terminal_aggregate(self, ops, columns, features) -> list[str] | None:
        rng = self.rng
        group_pool = [
            c
            for c in columns
            if not c.tainted
            and (c.kind == "var" or c.dtype in (DataType.INT64, DataType.STRING, DataType.BOOL))
        ]
        group_by = [
            c.name for c in rng.sample(group_pool, min(rng.randint(0, 2), len(group_pool)))
        ]
        int_args = [
            c.name for c in columns if c.kind == "var" or c.dtype is DataType.INT64
        ]
        minmax_args = [
            c.name
            for c in columns
            if c.kind == "var" or c.dtype in (DataType.INT64, DataType.STRING)
        ]
        count_args = [
            c.name for c in columns if not (c.tainted and c.dtype is DataType.BOOL)
        ]
        aggs: list[AggSpec] = []
        for i in range(rng.randint(1, 2)):
            out = f"a{i}"
            fn = rng.choice(("count", "count", "count_distinct", "sum", "min", "max", "avg"))
            if fn == "count":
                arg = rng.choice([None] + count_args) if count_args else None
            elif fn in ("sum", "avg"):
                if not int_args:
                    fn, arg = "count", None
                else:
                    arg = rng.choice(int_args)
            elif fn in ("min", "max"):
                if not minmax_args:
                    fn, arg = "count", None
                else:
                    arg = rng.choice(minmax_args)
            else:  # count_distinct
                if not count_args:
                    fn, arg = "count", None
                else:
                    arg = rng.choice(count_args)
            aggs.append(AggSpec(out, fn, arg))
        ops.append(Aggregate(group_by, aggs))
        features.append("aggregate")
        returns = group_by + [a.out for a in aggs]

        if group_by and rng.random() < 0.6:
            # Sort over every group column (group keys are unique, so the
            # order — and any LIMIT cut — is total and engine-independent).
            by_name = {c.name: c for c in columns}
            keys = []
            limit_ok = True
            for name in rng.sample(group_by, len(group_by)):
                info = by_name[name]
                nullable = info.kind != "var"
                if info.dtype is DataType.STRING and nullable:
                    limit_ok = False  # string NULL ordering is engine-specific
                asc = True if nullable else rng.random() < 0.7
                keys.append((name, asc))
            ops.append(OrderBy(keys))
            features.append("order-by")
            if limit_ok and rng.random() < 0.6:
                ops.append(Limit(rng.randint(1, 6)))
                features.append("limit")
        return returns

    def _terminal_order(self, ops, columns, features) -> list[str] | None:
        rng = self.rng
        int_cols = [
            c
            for c in columns
            if not c.tainted and (c.kind == "var" or c.dtype is DataType.INT64)
        ]
        if not int_cols:
            return None
        var_cols = [c for c in columns if c.kind == "var"]
        any_tainted = any(c.tainted for c in columns)
        want_limit = rng.random() < 0.6 and not any_tainted
        if want_limit:
            # Keys must cover every variable so surviving ties are duplicate
            # rows; edge-property columns are not functions of the variables,
            # so they must not be returned under a LIMIT.
            keys = [(c.name, rng.random() < 0.7) for c in rng.sample(var_cols, len(var_cols))]
            key_names = {name for name, _ in keys}
            extra = [
                c.name
                for c in columns
                if c.kind != "edge" and c.name not in key_names and rng.random() < 0.5
            ]
            returns = sorted(key_names) + extra
            ops.append(OrderBy(keys))
            ops.append(Limit(rng.randint(1, 8)))
            features += ["order-by", "limit"]
            return returns
        keys = [
            (c.name, rng.random() < 0.7)
            for c in rng.sample(int_cols, rng.randint(1, min(2, len(int_cols))))
        ]
        ops.append(OrderBy(keys))
        features.append("order-by")
        key_names = [name for name, _ in keys]
        extra = [
            c.name for c in columns if c.name not in key_names and rng.random() < 0.4
        ]
        return key_names + extra

    # -- Cypher-text generation ------------------------------------------------------

    def cypher_query(self, spec: GraphSpec) -> GeneratedQuery:
        """A random query as Cypher text (frontend + plan-cache coverage)."""
        rng = self.rng
        params: dict[str, Any] = {}
        features = ["cypher"]
        label = rng.choice(
            [l for l in self.schema.vertex_labels if spec.vertex_count(l)]
            or list(self.schema.vertex_labels)
        )
        vdef = self.schema.vertex_label(label)
        pattern = f"(a:{label}"
        if rng.random() < 0.4:
            key = self._seek_key(spec, label)
            if rng.random() < 0.5:
                params["pk"] = key
                pattern += f" {{{vdef.primary_key}: $pk}}"
                features.append("param")
            else:
                pattern += f" {{{vdef.primary_key}: {key}}}"
            features.append("seek")
        pattern += ")"

        vars: list[tuple[str, str]] = [("a", label)]
        current = label
        for i in range(rng.randint(0, 2)):
            outgoing = [
                e for e in self.schema.iter_edge_definitions() if e.src_label == current
            ]
            incoming = [
                e for e in self.schema.iter_edge_definitions() if e.dst_label == current
            ]
            if not outgoing and not incoming:
                break
            use_out = bool(outgoing) and (not incoming or rng.random() < 0.6)
            edef = rng.choice(outgoing if use_out else incoming)
            next_label = edef.dst_label if use_out else edef.src_label
            var = f"v{i}"
            hops = ""
            if use_out and edef.src_label == edef.dst_label and rng.random() < 0.3:
                lo = rng.randint(1, 2)
                hops = f"*{lo}..{rng.randint(lo, 3)}"
                features.append("multi-hop")
            arrow = (
                f"-[:{edef.name}{hops}]->" if use_out else f"<-[:{edef.name}]-"
            )
            pattern += f"{arrow}({var}:{next_label})"
            vars.append((var, next_label))
            current = next_label
            features.append("expand")

        where = ""
        if rng.random() < 0.5:
            var, vlabel = rng.choice(vars)
            int_props = [
                p
                for p in self.schema.vertex_label(vlabel).properties
                if p.dtype is DataType.INT64
            ]
            if int_props:
                prop = rng.choice(int_props)
                clause = rng.choice(
                    [
                        # Non-negative literals only: the frontend grammar has
                        # no unary minus.
                        f"{var}.{prop.name} {rng.choice(('<', '>', '<=', '>='))} {rng.randint(0, 60)}",
                        f"{var}.{prop.name} IS NOT NULL",
                    ]
                )
                where = f" WHERE {clause}"
                features.append("filter")

        shape = rng.random()
        if shape < 0.3:
            returns = ", ".join(f"id({v}) AS i_{v}" for v, _ in vars)
            order = ", ".join(f"i_{v}" + (" DESC" if rng.random() < 0.3 else "") for v, _ in vars)
            text = (
                f"MATCH {pattern}{where} RETURN {returns} "
                f"ORDER BY {order} LIMIT {rng.randint(1, 8)}"
            )
            features += ["order-by", "limit"]
        elif shape < 0.55:
            text = f"MATCH {pattern}{where} RETURN count(*) AS n"
            features.append("aggregate")
        else:
            var, vlabel = rng.choice(vars)
            props = list(self.schema.vertex_label(vlabel).properties)
            prop = rng.choice(props)
            returns = f"id({vars[0][0]}) AS i0, {var}.{prop.name} AS p0"
            text = f"MATCH {pattern}{where} RETURN {returns}"
        return GeneratedQuery(cypher=text, params=params, features=features)


# -- update batches (IU-style write mixes) -----------------------------------------


@dataclass
class UpdateBatch:
    """A staged write mix applied as ONE transaction (all-or-nothing)."""

    ops: list[dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {"ops": self.ops}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "UpdateBatch":
        return cls(ops=list(data["ops"]))

    def apply(self, manager: TransactionManager) -> int:
        """Stage every op in one transaction and commit; returns the version."""
        txn = manager.begin()
        try:
            for op in self.ops:
                kind = op["kind"]
                if kind == "add_vertex":
                    txn.add_vertex(op["label"], op["props"])
                elif kind == "add_edge":
                    txn.add_edge(
                        op["edge_label"],
                        VertexRef(op["src_label"], op["src_row"]),
                        VertexRef(op["dst_label"], op["dst_row"]),
                        op.get("props") or {},
                    )
                elif kind == "remove_edge":
                    txn.remove_edge(
                        op["edge_label"],
                        VertexRef(op["src_label"], op["src_row"]),
                        VertexRef(op["dst_label"], op["dst_row"]),
                    )
                elif kind == "set_prop":
                    txn.set_vertex_property(
                        op["label"], op["row"], op["name"], op["value"]
                    )
                else:
                    raise ValueError(f"unknown update op {kind!r}")
            return txn.commit()
        except BaseException:
            if not txn._done:
                txn.abort()
            raise


class UpdateGenerator:
    """Draws randomized IU-style update batches against a growing graph.

    The generator tracks row counts and live edges itself so batches stay
    valid as earlier batches commit.
    """

    def __init__(
        self,
        schema: GraphSchema,
        rng: random.Random,
        spec: GraphSpec,
        profile: GraphProfile | str = "default",
    ) -> None:
        self.schema = schema
        self.rng = rng
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        self._counts = {label: spec.vertex_count(label) for label in schema.vertex_labels}
        self._base = dict(self._counts)  # counts committed before current batch
        self._edges: list[dict[str, Any]] = []
        for group in spec.edges:
            for src, dst in zip(group["src"], group["dst"]):
                self._edges.append(
                    {
                        "edge_label": group["label"],
                        "src_label": group["src_label"],
                        "src_row": src,
                        "dst_label": group["dst_label"],
                        "dst_row": dst,
                    }
                )

    def batch(self, size: int | None = None) -> UpdateBatch:
        rng = self.rng
        size = size if size is not None else rng.randint(1, 6)
        # Edges and property writes may only target rows that exist *before*
        # this batch commits: copy-on-write pre-images are captured before
        # same-batch vertex inserts apply.
        self._base = dict(self._counts)
        ops: list[dict[str, Any]] = []
        for _ in range(size):
            ops.append(self._draw_op())
        return UpdateBatch(ops)

    def _draw_op(self) -> dict[str, Any]:
        rng = self.rng
        kind = rng.choices(
            ("add_vertex", "add_edge", "remove_edge", "set_prop"),
            weights=(2, 4, 1, 3),
        )[0]
        if kind == "remove_edge" and not self._edges:
            kind = "add_edge"
        if kind == "add_vertex":
            labels = list(self.schema.vertex_labels)
            label = rng.choice(labels)
            vdef = self.schema.vertex_label(label)
            stride = labels.index(label) + 1
            row = self._counts[label]
            props: dict[str, Any] = {}
            for prop in vdef.properties:
                if prop.name == vdef.primary_key:
                    props[prop.name] = stride * PK_STRIDE + row
                else:
                    props[prop.name] = _draw_value(rng, prop.dtype, self.profile)
            self._counts[label] = row + 1
            return {"kind": "add_vertex", "label": label, "props": props}
        if kind == "add_edge":
            usable = [
                e
                for e in self.schema.iter_edge_definitions()
                if self._base[e.src_label] and self._base[e.dst_label]
            ]
            if not usable:
                return self._fallback_set_prop()
            edef = rng.choice(usable)
            op = {
                "kind": "add_edge",
                "edge_label": edef.name,
                "src_label": edef.src_label,
                "src_row": rng.randrange(self._base[edef.src_label]),
                "dst_label": edef.dst_label,
                "dst_row": rng.randrange(self._base[edef.dst_label]),
                "props": {
                    p.name: _draw_value(rng, p.dtype, self.profile)
                    for p in edef.properties
                },
            }
            self._edges.append({k: op[k] for k in (
                "edge_label", "src_label", "src_row", "dst_label", "dst_row"
            )})
            return op
        if kind == "remove_edge":
            edge = self._edges.pop(rng.randrange(len(self._edges)))
            return {"kind": "remove_edge", **edge}
        return self._fallback_set_prop()

    def _fallback_set_prop(self) -> dict[str, Any]:
        rng = self.rng
        labels = [l for l in self.schema.vertex_labels if self._base[l]]
        if not labels:
            # Degenerate all-empty graph: stage a vertex instead.
            return self._draw_vertex_insert()
        label = rng.choice(labels)
        vdef = self.schema.vertex_label(label)
        props = [p for p in vdef.properties if p.name != vdef.primary_key]
        if not props:
            return self._draw_vertex_insert()
        prop = rng.choice(props)
        return {
            "kind": "set_prop",
            "label": label,
            "row": rng.randrange(self._base[label]),
            "name": prop.name,
            "value": _draw_value(rng, prop.dtype, self.profile),
        }

    def _draw_vertex_insert(self) -> dict[str, Any]:
        labels = list(self.schema.vertex_labels)
        label = self.rng.choice(labels)
        vdef = self.schema.vertex_label(label)
        stride = labels.index(label) + 1
        row = self._counts[label]
        props = {
            p.name: (
                stride * PK_STRIDE + row
                if p.name == vdef.primary_key
                else _draw_value(self.rng, p.dtype, self.profile)
            )
            for p in vdef.properties
        }
        self._counts[label] = row + 1
        return {"kind": "add_vertex", "label": label, "props": props}
