"""Columnar property storage for vertices.

The paper (§5) organizes vertex properties "in a columnar table, with each
row corresponding to a vertex and each column representing a property".
:class:`PropertyColumn` is one growable column; :class:`VertexTable` is the
per-label table that owns all columns of a label plus the dense row-id
assignment and the primary-key index used for external lookups.

NULL handling follows the columnar-graph-storage design of Gupta, Mhedhbi
& Salihoglu: each column carries a **validity bitmap** (NULL is a bit,
never a sentinel value in the data array), numeric columns expose
**per-block zone maps** for filter pushdown, and low-cardinality STRING
columns are **dictionary-encoded** transparently.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import SchemaError, StorageError
from ..types import DataType
from .catalog import VertexLabelDef
from .validity import ValidityBitmap, ZoneMapIndex, pack_values

_INITIAL_CAPACITY = 16

#: A STRING column of at least this many rows is considered for dictionary
#: encoding at bulk-load time.
DICT_MIN_ROWS = 32

#: Dictionary encoding is applied when distinct values fit this budget:
#: ``max(DICT_MAX_UNIQUE_FLOOR, rows // 4)``.
DICT_MAX_UNIQUE_FLOOR = 16


class PropertyColumn:
    """One growable, typed column with an explicit validity bitmap.

    Fixed-width types are backed by a NumPy array with capacity doubling;
    STRING columns use a NumPy object array so fancy-indexing ``gather``
    works uniformly across types.  Invalid slots hold the dtype's inert
    :meth:`~repro.types.DataType.fill_value`; NULLness is carried solely by
    the bitmap.  Low-cardinality STRING columns built via :meth:`from_array`
    store int32 codes plus a unique-value dictionary instead of one pointer
    per row, and stay encoded under later appends/updates.
    """

    def __init__(self, name: str, dtype: DataType, capacity: int = _INITIAL_CAPACITY) -> None:
        self.name = name
        self.dtype = dtype
        self._length = 0
        self._data = np.empty(max(capacity, 1), dtype=dtype.numpy_dtype)
        self._validity = ValidityBitmap()
        self._zone_map: ZoneMapIndex | None = None
        # Dictionary encoding state (STRING columns only).
        self._dict_codes: np.ndarray | None = None
        self._dict_values: list[Any] = []
        self._dict_index: dict[Any, int] = {}
        self._decoded_cache: np.ndarray | None = None

    def __len__(self) -> int:
        return self._length

    @property
    def is_dict_encoded(self) -> bool:
        return self._dict_codes is not None

    @property
    def nbytes(self) -> int:
        """Approximate live bytes (object columns count pointer size)."""
        if self._dict_codes is not None:
            codes = int(self._dict_codes[: self._length].nbytes)
            uniques = sum(len(v) if isinstance(v, str) else 8 for v in self._dict_values)
            return codes + uniques + self._validity.nbytes
        return int(self._data[: self._length].nbytes) + self._validity.nbytes

    @property
    def null_count(self) -> int:
        return self._validity.null_count()

    # -- dictionary encoding ----------------------------------------------

    def _encode_dictionary(self, values: np.ndarray, mask: np.ndarray | None) -> None:
        """Switch the freshly bulk-loaded column to dictionary storage."""
        live = values if mask is None else values[mask]
        uniques = list(dict.fromkeys(live.tolist()))
        self._dict_values = uniques
        self._dict_index = {value: code for code, value in enumerate(uniques)}
        codes = np.zeros(max(len(values), 1), dtype=np.int32)
        for i, value in enumerate(values.tolist()):
            if mask is None or mask[i]:
                codes[i] = self._dict_index[value]
        self._dict_codes = codes
        self._data = np.empty(0, dtype=object)  # codes replace the value array
        self._decoded_cache = None

    def _code_for(self, value: Any) -> int:
        code = self._dict_index.get(value)
        if code is None:
            code = len(self._dict_values)
            self._dict_values.append(value)
            self._dict_index[value] = code
        return code

    def _decode(self, codes: np.ndarray) -> np.ndarray:
        if not self._dict_values:
            return np.full(len(codes), None, dtype=object)
        table = np.empty(len(self._dict_values), dtype=object)
        table[:] = self._dict_values
        return table[codes]

    def dict_code(self, value: Any) -> int | None:
        """Code of *value* in an encoded column; None when absent/unencoded.

        Lets equality scans compare int32 codes instead of object strings.
        """
        if self._dict_codes is None:
            return None
        return self._dict_index.get(value)

    # -- growth & mutation -------------------------------------------------

    def _grow_to(self, capacity: int) -> None:
        backing = self._dict_codes if self._dict_codes is not None else self._data
        new_capacity = max(len(backing) * 2, capacity, _INITIAL_CAPACITY)
        grown = np.empty(new_capacity, dtype=backing.dtype)
        if self._dict_codes is not None:
            grown[: self._length] = self._dict_codes[: self._length]
            self._dict_codes = grown
        else:
            grown[: self._length] = self._data[: self._length]
            self._data = grown

    def append(self, value: Any, valid: bool | None = None) -> int:
        """Append one value, returning its row index.

        ``None`` (or ``valid=False``) appends a NULL: the validity bit is
        cleared and the slot holds the dtype's inert fill.
        """
        backing = self._dict_codes if self._dict_codes is not None else self._data
        if self._length == len(backing):
            self._grow_to(self._length + 1)
        if valid is None:
            valid = value is not None
        if not valid or value is None:
            valid = False
            value = self.dtype.fill_value()
        if self._dict_codes is not None:
            self._dict_codes[self._length] = self._code_for(value) if valid else 0
            self._decoded_cache = None
        else:
            self._data[self._length] = value
        self._validity.append(valid)
        self._length += 1
        return self._length - 1

    def extend(self, values: Iterable[Any]) -> None:
        data, mask = pack_values(values, self.dtype)
        needed = self._length + len(data)
        if needed > len(self._dict_codes if self._dict_codes is not None else self._data):
            self._grow_to(needed)
        if self._dict_codes is not None:
            for i, value in enumerate(data.tolist()):
                ok = mask is None or bool(mask[i])
                self._dict_codes[self._length + i] = self._code_for(value) if ok else 0
            self._decoded_cache = None
        else:
            self._data[self._length : needed] = data
        if mask is None:
            self._validity.extend_valid(len(data))
        else:
            self._validity.extend_mask(mask)
        self._length = needed

    def get(self, row: int) -> Any:
        """Value at *row*; Python ``None`` when the slot is NULL."""
        if not 0 <= row < self._length:
            raise StorageError(f"row {row} out of range for column {self.name!r}")
        if not self._validity.get(row):
            return None
        if self._dict_codes is not None:
            return self._dict_values[int(self._dict_codes[row])]
        value = self._data[row]
        if self.dtype is DataType.STRING:
            return value
        return value.item() if isinstance(value, np.generic) else value

    def is_valid(self, row: int) -> bool:
        if not 0 <= row < self._length:
            raise StorageError(f"row {row} out of range for column {self.name!r}")
        return self._validity.get(row)

    def set(self, row: int, value: Any) -> None:
        if not 0 <= row < self._length:
            raise StorageError(f"row {row} out of range for column {self.name!r}")
        valid = value is not None
        if not valid:
            value = self.dtype.fill_value()
        elif self.dtype is DataType.FLOAT64 and value != value:  # NaN input is NULL
            valid = False
            value = self.dtype.fill_value()
        if self._dict_codes is not None:
            self._dict_codes[row] = self._code_for(value) if valid else 0
            self._decoded_cache = None
        else:
            self._data[row] = value
        self._validity.set(row, valid)
        if self._zone_map is not None:
            self._zone_map.mark_dirty(row)

    # -- vectorized access -------------------------------------------------

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized fetch of many rows (the executor's property projection).

        Returns the raw value array (inert fills under NULL slots); pair
        with :meth:`gather_validity` — or use :meth:`gather_with_validity` —
        when NULLness matters downstream.
        """
        if self._dict_codes is not None:
            return self._decode(self._dict_codes[rows])
        return self._data[rows]

    def gather_validity(self, rows: np.ndarray) -> np.ndarray | None:
        """Validity bits for *rows*; ``None`` means all requested are valid."""
        return self._validity.gather(rows)

    def gather_with_validity(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        return self.gather(rows), self.gather_validity(rows)

    def view(self) -> np.ndarray:
        """Read-only view over the live prefix of the column's values."""
        if self._dict_codes is not None:
            if self._decoded_cache is None or len(self._decoded_cache) != self._length:
                self._decoded_cache = self._decode(self._dict_codes[: self._length])
                if not self._validity.all_valid:
                    self._decoded_cache[~self._validity.mask()] = None
            return self._decoded_cache
        return self._data[: self._length]

    def validity_mask(self) -> np.ndarray | None:
        """Dense validity bools over the live prefix; ``None`` == all valid."""
        return self._validity.mask()

    # -- zone maps ---------------------------------------------------------

    @property
    def supports_zone_map(self) -> bool:
        return self.dtype.is_integer_backed or self.dtype is DataType.FLOAT64

    def zone_map(self) -> ZoneMapIndex | None:
        """An up-to-date zone map, or ``None`` for non-numeric columns."""
        if not self.supports_zone_map:
            return None
        if self._zone_map is None:
            self._zone_map = ZoneMapIndex()
        self._zone_map.refresh(self._data[: self._length], self._validity.mask())
        return self._zone_map

    @classmethod
    def from_backing(
        cls,
        name: str,
        dtype: DataType,
        data: np.ndarray | None,
        validity: np.ndarray | None,
        length: int,
        dict_values: list[Any] | None = None,
        dict_codes: np.ndarray | None = None,
    ) -> "PropertyColumn":
        """Wrap pre-built arrays without copying (shared-memory attach path).

        *data* (or *dict_codes* + *dict_values* for an encoded STRING
        column) becomes the column's backing storage as-is — typically a
        read-only view over a mapped shared-memory segment.  The column is
        read-only in practice: any mutation would raise on the immutable
        backing array, which is exactly what a worker-side snapshot wants.
        """
        column = cls(name, dtype, capacity=1)
        column._length = length
        column._validity = ValidityBitmap.from_mask(validity, length)
        if dict_codes is not None:
            column._dict_codes = dict_codes
            column._dict_values = list(dict_values or [])
            column._dict_index = {v: c for c, v in enumerate(column._dict_values)}
            column._data = np.empty(0, dtype=object)
        else:
            assert data is not None
            column._data = data
        return column

    @classmethod
    def from_array(
        cls,
        name: str,
        dtype: DataType,
        values: np.ndarray | list,
        validity: np.ndarray | None = None,
    ) -> "PropertyColumn":
        """Bulk-build a column (the datagen/snapshot loading path).

        ``None`` holes in list input and NaN in float input become cleared
        validity bits; an explicit *validity* mask overrides detection.
        """
        column = cls(name, dtype, capacity=max(len(values), 1))
        data, detected = pack_values(values, dtype)
        if validity is not None:
            mask = np.asarray(validity, dtype=bool)
            if detected is not None:
                mask = mask & detected
            if mask.all():
                mask = None
        else:
            mask = detected
        column._data[: len(data)] = data
        column._length = len(data)
        column._validity = ValidityBitmap.from_mask(mask, len(data))
        if (
            dtype is DataType.STRING
            and len(data) >= DICT_MIN_ROWS
        ):
            live = data if mask is None else data[mask]
            uniques = set(live.tolist())
            if len(uniques) <= max(DICT_MAX_UNIQUE_FLOOR, len(data) // 4):
                column._encode_dictionary(data, mask)
        return column


class VertexTable:
    """All vertices of one label: columnar properties + primary-key index.

    Row indices are dense and stable; deletion is by tombstone (the paper's
    "marking for deletion"), so adjacency lists can keep referring to rows.
    """

    def __init__(self, definition: VertexLabelDef) -> None:
        self.definition = definition
        self.label = definition.name
        self._columns: dict[str, PropertyColumn] = {
            p.name: PropertyColumn(p.name, p.dtype) for p in definition.properties
        }
        self._count = 0
        self._tombstones: set[int] = set()
        self._pk_index: dict[int, int] = {}
        # Per-row creation version, allocated lazily on the first
        # transactional insert; None means "all rows visible at version 0".
        self._created_versions: np.ndarray | None = None
        # Bumped on every content mutation (insert, delete, property write,
        # bulk load).  Folded into GraphStore.mutation_epoch so exported
        # shared-memory snapshots notice non-transactional writes too.
        self._write_epoch = 0

    @property
    def write_epoch(self) -> int:
        return self._write_epoch

    def __len__(self) -> int:
        return self._count

    @property
    def num_live(self) -> int:
        return self._count - len(self._tombstones)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._columns.values())

    def column(self, name: str) -> PropertyColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"vertex label {self.label!r} has no property {name!r}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    # -- mutation ---------------------------------------------------------

    def insert(self, properties: Mapping[str, Any]) -> int:
        """Insert one vertex, returning its row index."""
        unknown = set(properties) - set(self._columns)
        if unknown:
            raise SchemaError(f"unknown properties {sorted(unknown)} for label {self.label!r}")
        for name, column in self._columns.items():
            column.append(properties.get(name))
        row = self._count
        self._count += 1
        self._write_epoch += 1
        pk = self.definition.primary_key
        if pk is not None and pk in properties:
            key = int(properties[pk])
            if key in self._pk_index:
                raise StorageError(f"duplicate {self.label}.{pk} = {key}")
            self._pk_index[key] = row
        return row

    def bulk_load(
        self,
        columns: Mapping[str, np.ndarray | list],
        validity: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Replace table contents from aligned arrays (datagen path).

        *validity* optionally carries explicit per-column bitmasks (the
        snapshot-restore path); without it, NULLs are detected from ``None``
        holes and float NaN.
        """
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise StorageError(f"ragged bulk load for {self.label!r}: {lengths}")
        count = next(iter(lengths.values()), 0)
        missing = set(self._columns) - set(columns)
        if missing:
            raise StorageError(f"bulk load for {self.label!r} missing columns {sorted(missing)}")
        for name, values in columns.items():
            prop = self.definition.property(name)
            mask = validity.get(name) if validity else None
            self._columns[name] = PropertyColumn.from_array(
                name, prop.dtype, values, validity=mask
            )
        self._count = count
        self._tombstones.clear()
        self._write_epoch += 1
        pk = self.definition.primary_key
        if pk is not None:
            keys = self._columns[pk].view()
            self._pk_index = {int(k): i for i, k in enumerate(keys)}

    def delete(self, row: int) -> None:
        """Tombstone a row (keeps row indices of other vertices stable)."""
        if not 0 <= row < self._count:
            raise StorageError(f"row {row} out of range for table {self.label!r}")
        self._tombstones.add(row)
        self._write_epoch += 1
        pk = self.definition.primary_key
        if pk is not None:
            key = self._columns[pk].get(row)
            if key is not None:
                self._pk_index.pop(int(key), None)

    def is_live(self, row: int) -> bool:
        return 0 <= row < self._count and row not in self._tombstones

    # -- row visibility under MVCC -----------------------------------------

    def mark_created(self, row: int, version: int) -> None:
        """Stamp *row* as created at *version* (transactional insert path)."""
        if self._created_versions is None:
            self._created_versions = np.zeros(max(self._count, 1), dtype=np.int64)
        if row >= len(self._created_versions):
            grown = np.zeros(max(len(self._created_versions) * 2, row + 1), dtype=np.int64)
            grown[: len(self._created_versions)] = self._created_versions
            self._created_versions = grown
        self._created_versions[row] = version

    @property
    def has_version_stamps(self) -> bool:
        return self._created_versions is not None

    def created_version(self, row: int) -> int:
        if self._created_versions is None or row >= len(self._created_versions):
            return 0
        return int(self._created_versions[row])

    def is_visible(self, row: int, version: int | None) -> bool:
        """Row exists at the given snapshot version (None = latest)."""
        if not self.is_live(row):
            return False
        if version is None:
            return True
        return self.created_version(row) <= version

    def set_property(self, row: int, name: str, value: Any) -> None:
        self.column(name).set(row, value)
        self._write_epoch += 1

    def attach_backing(
        self,
        columns: Mapping[str, PropertyColumn],
        count: int,
        tombstones: Iterable[int],
        created_versions: np.ndarray | None,
    ) -> None:
        """Adopt pre-built columns without copying (shared-memory attach).

        Rebuilds the primary-key index from the attached key column; rows
        created after the exported snapshot version stay in the index and
        are filtered by ``is_visible`` at read time, exactly like on the
        coordinator side.
        """
        self._columns = dict(columns)
        self._count = count
        self._tombstones = set(int(t) for t in tombstones)
        self._created_versions = created_versions
        self._write_epoch += 1
        self._pk_index = {}
        pk = self.definition.primary_key
        if pk is not None and count:
            keys = self._columns[pk].view()
            valid = self._columns[pk].validity_mask()
            for i in range(count):
                if i in self._tombstones or (valid is not None and not valid[i]):
                    continue
                self._pk_index[int(keys[i])] = i

    # -- lookup -----------------------------------------------------------

    def row_for_key(self, key: int) -> int:
        """Row index of the vertex whose primary key equals *key*."""
        try:
            return self._pk_index[int(key)]
        except KeyError:
            raise StorageError(f"no {self.label} with key {key}") from None

    def try_row_for_key(self, key: int) -> int | None:
        return self._pk_index.get(int(key))

    def get_property(self, row: int, name: str) -> Any:
        return self.column(name).get(row)

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self.column(name).gather(rows)

    def gather_with_validity(
        self, name: str, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        return self.column(name).gather_with_validity(rows)

    def all_rows(self, include_tombstones: bool = False) -> np.ndarray:
        """Dense row indices of (live) vertices, for label scans."""
        rows = np.arange(self._count, dtype=np.int64)
        if include_tombstones or not self._tombstones:
            return rows
        mask = np.ones(self._count, dtype=bool)
        mask[list(self._tombstones)] = False
        return rows[mask]
