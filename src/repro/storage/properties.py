"""Columnar property storage for vertices.

The paper (§5) organizes vertex properties "in a columnar table, with each
row corresponding to a vertex and each column representing a property".
:class:`PropertyColumn` is one growable column; :class:`VertexTable` is the
per-label table that owns all columns of a label plus the dense row-id
assignment and the primary-key index used for external lookups.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import SchemaError, StorageError
from ..types import DataType
from .catalog import VertexLabelDef

_INITIAL_CAPACITY = 16


class PropertyColumn:
    """One growable, typed column.

    Fixed-width types are backed by a NumPy array with capacity doubling;
    STRING columns use a NumPy object array so fancy-indexing ``gather``
    works uniformly across types.
    """

    def __init__(self, name: str, dtype: DataType, capacity: int = _INITIAL_CAPACITY) -> None:
        self.name = name
        self.dtype = dtype
        self._length = 0
        self._data = np.empty(max(capacity, 1), dtype=dtype.numpy_dtype)

    def __len__(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Approximate live bytes (object columns count pointer size)."""
        return int(self._data[: self._length].nbytes)

    def _grow_to(self, capacity: int) -> None:
        new_capacity = max(len(self._data) * 2, capacity, _INITIAL_CAPACITY)
        grown = np.empty(new_capacity, dtype=self._data.dtype)
        grown[: self._length] = self._data[: self._length]
        self._data = grown

    def append(self, value: Any) -> int:
        """Append one value, returning its row index."""
        if self._length == len(self._data):
            self._grow_to(self._length + 1)
        if value is None:
            value = self.dtype.null_value()
        self._data[self._length] = value
        self._length += 1
        return self._length - 1

    def extend(self, values: Iterable[Any]) -> None:
        values = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        needed = self._length + len(values)
        if needed > len(self._data):
            self._grow_to(needed)
        self._data[self._length : needed] = values
        self._length = needed

    def get(self, row: int) -> Any:
        if not 0 <= row < self._length:
            raise StorageError(f"row {row} out of range for column {self.name!r}")
        value = self._data[row]
        if self.dtype is DataType.STRING:
            return value
        return value.item() if isinstance(value, np.generic) else value

    def set(self, row: int, value: Any) -> None:
        if not 0 <= row < self._length:
            raise StorageError(f"row {row} out of range for column {self.name!r}")
        if value is None:
            value = self.dtype.null_value()
        self._data[row] = value

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized fetch of many rows (the executor's property projection)."""
        return self._data[rows]

    def view(self) -> np.ndarray:
        """Read-only view over the live prefix of the column."""
        view = self._data[: self._length]
        return view

    @classmethod
    def from_array(cls, name: str, dtype: DataType, values: np.ndarray | list) -> "PropertyColumn":
        """Bulk-build a column (the datagen loading path)."""
        column = cls(name, dtype, capacity=max(len(values), 1))
        array = np.asarray(values, dtype=dtype.numpy_dtype)
        column._data[: len(array)] = array
        column._length = len(array)
        return column


class VertexTable:
    """All vertices of one label: columnar properties + primary-key index.

    Row indices are dense and stable; deletion is by tombstone (the paper's
    "marking for deletion"), so adjacency lists can keep referring to rows.
    """

    def __init__(self, definition: VertexLabelDef) -> None:
        self.definition = definition
        self.label = definition.name
        self._columns: dict[str, PropertyColumn] = {
            p.name: PropertyColumn(p.name, p.dtype) for p in definition.properties
        }
        self._count = 0
        self._tombstones: set[int] = set()
        self._pk_index: dict[int, int] = {}
        # Per-row creation version, allocated lazily on the first
        # transactional insert; None means "all rows visible at version 0".
        self._created_versions: np.ndarray | None = None

    def __len__(self) -> int:
        return self._count

    @property
    def num_live(self) -> int:
        return self._count - len(self._tombstones)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._columns.values())

    def column(self, name: str) -> PropertyColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"vertex label {self.label!r} has no property {name!r}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    # -- mutation ---------------------------------------------------------

    def insert(self, properties: Mapping[str, Any]) -> int:
        """Insert one vertex, returning its row index."""
        unknown = set(properties) - set(self._columns)
        if unknown:
            raise SchemaError(f"unknown properties {sorted(unknown)} for label {self.label!r}")
        for name, column in self._columns.items():
            column.append(properties.get(name))
        row = self._count
        self._count += 1
        pk = self.definition.primary_key
        if pk is not None and pk in properties:
            key = int(properties[pk])
            if key in self._pk_index:
                raise StorageError(f"duplicate {self.label}.{pk} = {key}")
            self._pk_index[key] = row
        return row

    def bulk_load(self, columns: Mapping[str, np.ndarray | list]) -> None:
        """Replace table contents from aligned arrays (datagen path)."""
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise StorageError(f"ragged bulk load for {self.label!r}: {lengths}")
        count = next(iter(lengths.values()), 0)
        missing = set(self._columns) - set(columns)
        if missing:
            raise StorageError(f"bulk load for {self.label!r} missing columns {sorted(missing)}")
        for name, values in columns.items():
            prop = self.definition.property(name)
            self._columns[name] = PropertyColumn.from_array(name, prop.dtype, values)
        self._count = count
        self._tombstones.clear()
        pk = self.definition.primary_key
        if pk is not None:
            keys = self._columns[pk].view()
            self._pk_index = {int(k): i for i, k in enumerate(keys)}

    def delete(self, row: int) -> None:
        """Tombstone a row (keeps row indices of other vertices stable)."""
        if not 0 <= row < self._count:
            raise StorageError(f"row {row} out of range for table {self.label!r}")
        self._tombstones.add(row)
        pk = self.definition.primary_key
        if pk is not None:
            key = int(self._columns[pk].get(row))
            self._pk_index.pop(key, None)

    def is_live(self, row: int) -> bool:
        return 0 <= row < self._count and row not in self._tombstones

    # -- row visibility under MVCC -----------------------------------------

    def mark_created(self, row: int, version: int) -> None:
        """Stamp *row* as created at *version* (transactional insert path)."""
        if self._created_versions is None:
            self._created_versions = np.zeros(max(self._count, 1), dtype=np.int64)
        if row >= len(self._created_versions):
            grown = np.zeros(max(len(self._created_versions) * 2, row + 1), dtype=np.int64)
            grown[: len(self._created_versions)] = self._created_versions
            self._created_versions = grown
        self._created_versions[row] = version

    @property
    def has_version_stamps(self) -> bool:
        return self._created_versions is not None

    def created_version(self, row: int) -> int:
        if self._created_versions is None or row >= len(self._created_versions):
            return 0
        return int(self._created_versions[row])

    def is_visible(self, row: int, version: int | None) -> bool:
        """Row exists at the given snapshot version (None = latest)."""
        if not self.is_live(row):
            return False
        if version is None:
            return True
        return self.created_version(row) <= version

    def set_property(self, row: int, name: str, value: Any) -> None:
        self.column(name).set(row, value)

    # -- lookup -----------------------------------------------------------

    def row_for_key(self, key: int) -> int:
        """Row index of the vertex whose primary key equals *key*."""
        try:
            return self._pk_index[int(key)]
        except KeyError:
            raise StorageError(f"no {self.label} with key {key}") from None

    def try_row_for_key(self, key: int) -> int | None:
        return self._pk_index.get(int(key))

    def get_property(self, row: int, name: str) -> Any:
        return self.column(name).get(row)

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self.column(name).gather(rows)

    def all_rows(self, include_tombstones: bool = False) -> np.ndarray:
        """Dense row indices of (live) vertices, for label scans."""
        rows = np.arange(self._count, dtype=np.int64)
        if include_tombstones or not self._tombstones:
            return rows
        mask = np.ones(self._count, dtype=bool)
        mask[list(self._tombstones)] = False
        return rows[mask]
