"""Graph snapshots: persist a :class:`GraphStore` to disk and reload it.

Layout of a snapshot directory::

    snapshot/
      schema.json          labels, properties, edge definitions
      vertices_<Label>.npz one array per property column
      edges_<i>.npz        src rows, dst rows, edge-property arrays

String columns are stored as object arrays (``allow_pickle``), so
snapshots are a local persistence/interchange format, not a security
boundary — load only snapshots you created.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import StorageError
from ..types import DataType
from .catalog import EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef
from .graph import GraphStore

_FORMAT_VERSION = 1


def _schema_to_dict(schema: GraphSchema) -> dict:
    return {
        "format": _FORMAT_VERSION,
        "vertex_labels": [
            {
                "name": schema.vertex_label(name).name,
                "primary_key": schema.vertex_label(name).primary_key,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value}
                    for p in schema.vertex_label(name).properties
                ],
            }
            for name in schema.vertex_labels
        ],
        "edge_labels": [
            {
                "name": d.name,
                "src": d.src_label,
                "dst": d.dst_label,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value} for p in d.properties
                ],
            }
            for d in schema.iter_edge_definitions()
        ],
    }


def _schema_from_dict(data: dict) -> GraphSchema:
    if data.get("format") != _FORMAT_VERSION:
        raise StorageError(f"unsupported snapshot format {data.get('format')!r}")
    schema = GraphSchema()
    for label in data["vertex_labels"]:
        schema.add_vertex_label(
            VertexLabelDef(
                label["name"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in label["properties"]],
                primary_key=label["primary_key"],
            )
        )
    for edge in data["edge_labels"]:
        schema.add_edge_label(
            EdgeLabelDef(
                edge["name"],
                edge["src"],
                edge["dst"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in edge["properties"]],
            )
        )
    return schema


def save_graph(store: GraphStore, path: str | Path) -> Path:
    """Write a snapshot of *store* under *path* (created if missing)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "schema.json", "w") as handle:
        json.dump(_schema_to_dict(store.schema), handle, indent=2)

    for label in store.schema.vertex_labels:
        table = store.table(label)
        arrays = {name: table.column(name).view() for name in table.column_names}
        np.savez(path / f"vertices_{label}.npz", **arrays)

    for i, definition in enumerate(store.schema.iter_edge_definitions()):
        adjacency = store.adjacency(definition.key())
        src, dst, props = adjacency.export_edges()
        arrays = {"__src": src, "__dst": dst}
        arrays.update(props)
        np.savez(path / f"edges_{i}.npz", **arrays)
    return path


def load_graph(path: str | Path) -> GraphStore:
    """Rebuild a :class:`GraphStore` from a snapshot directory."""
    path = Path(path)
    schema_file = path / "schema.json"
    if not schema_file.exists():
        raise StorageError(f"no snapshot at {path}")
    with open(schema_file) as handle:
        schema = _schema_from_dict(json.load(handle))
    store = GraphStore(schema)

    for label in schema.vertex_labels:
        with np.load(path / f"vertices_{label}.npz", allow_pickle=True) as data:
            columns = {name: data[name] for name in data.files}
        if columns:
            store.bulk_load_vertices(label, columns)

    for i, definition in enumerate(schema.iter_edge_definitions()):
        with np.load(path / f"edges_{i}.npz", allow_pickle=True) as data:
            src = data["__src"]
            dst = data["__dst"]
            props = {
                name: data[name] for name in data.files if not name.startswith("__")
            }
        store.bulk_load_edges(
            definition.name, definition.src_label, definition.dst_label, src, dst,
            props or None,
        )
    return store
