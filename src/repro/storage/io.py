"""Graph snapshots: persist a :class:`GraphStore` to disk and reload it.

Layout of a snapshot directory::

    snapshot/
      schema.json          labels, properties, edge definitions
      vertices_<Label>.npz one array per property column
      edges_<i>.npz        src rows, dst rows, edge-property arrays

String columns are stored as object arrays (``allow_pickle``), so
snapshots are a local persistence/interchange format, not a security
boundary — load only snapshots you created.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import StorageError
from ..resilience import faults
from ..types import DataType
from .catalog import EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef
from .graph import GraphStore

#: Version 2 adds per-column validity bitmaps (``__valid__<name>`` members);
#: version-1 snapshots (sentinel era) still load, with every slot valid.
_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)

_VALID_PREFIX = "__valid__"


def _schema_to_dict(schema: GraphSchema) -> dict:
    return {
        "format": _FORMAT_VERSION,
        "vertex_labels": [
            {
                "name": schema.vertex_label(name).name,
                "primary_key": schema.vertex_label(name).primary_key,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value}
                    for p in schema.vertex_label(name).properties
                ],
            }
            for name in schema.vertex_labels
        ],
        "edge_labels": [
            {
                "name": d.name,
                "src": d.src_label,
                "dst": d.dst_label,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value} for p in d.properties
                ],
            }
            for d in schema.iter_edge_definitions()
        ],
    }


def _schema_from_dict(data: dict) -> GraphSchema:
    if data.get("format") not in _SUPPORTED_FORMATS:
        raise StorageError(f"unsupported snapshot format {data.get('format')!r}")
    schema = GraphSchema()
    for label in data["vertex_labels"]:
        schema.add_vertex_label(
            VertexLabelDef(
                label["name"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in label["properties"]],
                primary_key=label["primary_key"],
            )
        )
    for edge in data["edge_labels"]:
        schema.add_edge_label(
            EdgeLabelDef(
                edge["name"],
                edge["src"],
                edge["dst"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in edge["properties"]],
            )
        )
    return schema


def save_graph(store: GraphStore, path: str | Path) -> Path:
    """Write a snapshot of *store* under *path* (created if missing)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / "schema.json", "w") as handle:
        json.dump(_schema_to_dict(store.schema), handle, indent=2)

    for label in store.schema.vertex_labels:
        table = store.table(label)
        arrays = {}
        for name in table.column_names:
            column = table.column(name)
            arrays[name] = column.view()
            mask = column.validity_mask()
            if mask is not None:
                arrays[_VALID_PREFIX + name] = mask
        np.savez(path / f"vertices_{label}.npz", **arrays)

    for i, definition in enumerate(store.schema.iter_edge_definitions()):
        adjacency = store.adjacency(definition.key())
        src, dst, props, validity = adjacency.export_edges()
        arrays = {"__src": src, "__dst": dst}
        arrays.update(props)
        for name, mask in validity.items():
            arrays[_VALID_PREFIX + name] = mask
        np.savez(path / f"edges_{i}.npz", **arrays)
    return path


def _load_npz(file: Path) -> dict[str, np.ndarray]:
    """Read every array of one ``.npz`` member file, failures typed.

    A truncated, corrupt, or missing archive — and a malformed member
    array inside one — surfaces as :class:`StorageError` naming the
    offending file, not as a raw ``OSError``/``zipfile``/pickle error.
    """
    try:
        with np.load(file, allow_pickle=True) as data:
            return {name: data[name] for name in data.files}
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"corrupt or unreadable snapshot file {file}: {exc}") from exc


def load_graph(path: str | Path) -> GraphStore:
    """Rebuild a :class:`GraphStore` from a snapshot directory.

    Every low-level failure mode — missing or malformed ``schema.json``,
    truncated/corrupt/missing ``.npz`` files, archives missing their
    required ``__src``/``__dst`` members — is wrapped into a
    :class:`StorageError` carrying the offending file path, so callers
    handle one typed error instead of raw ``json``/``numpy``/``OSError``
    leakage.  Fault site ``snapshot.load`` covers the whole operation.
    """
    faults.maybe_fire("snapshot.load")
    path = Path(path)
    schema_file = path / "schema.json"
    if not schema_file.exists():
        raise StorageError(f"no snapshot at {path}")
    try:
        with open(schema_file) as handle:
            raw_schema = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable snapshot schema {schema_file}: {exc}") from exc
    try:
        schema = _schema_from_dict(raw_schema)
    except StorageError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed snapshot schema {schema_file}: {exc}") from exc
    store = GraphStore(schema)

    for label in schema.vertex_labels:
        members = _load_npz(path / f"vertices_{label}.npz")
        columns = {
            name: array for name, array in members.items()
            if not name.startswith("__")
        }
        validity = {
            name[len(_VALID_PREFIX):]: array.astype(bool)
            for name, array in members.items()
            if name.startswith(_VALID_PREFIX)
        }
        if columns:
            store.bulk_load_vertices(label, columns, validity=validity or None)

    for i, definition in enumerate(schema.iter_edge_definitions()):
        edge_file = path / f"edges_{i}.npz"
        arrays = _load_npz(edge_file)
        try:
            src = arrays.pop("__src")
            dst = arrays.pop("__dst")
        except KeyError as exc:
            raise StorageError(
                f"snapshot file {edge_file} is missing required member {exc}"
            ) from exc
        props = {
            name: array for name, array in arrays.items()
            if not name.startswith("__")
        }
        props_validity = {
            name[len(_VALID_PREFIX):]: array.astype(bool)
            for name, array in arrays.items()
            if name.startswith(_VALID_PREFIX)
        }
        store.bulk_load_edges(
            definition.name, definition.src_label, definition.dst_label, src, dst,
            props or None, props_validity or None,
        )
    return store
