"""Graph snapshots: persist a :class:`GraphStore` to disk and reload it.

Layout of a snapshot directory::

    snapshot/
      MANIFEST.json        format version, per-file SHA-256 digests
      schema.json          labels, properties, edge definitions
      vertices_<Label>.npz one array per property column
      edges_<i>.npz        src rows, dst rows, edge-property arrays

Snapshots are written **atomically**: all files land in a hidden sibling
temp directory (``.<name>.tmp-<pid>``), every file and the directory are
fsynced, and only then is the directory renamed into place — a crash
mid-save can never leave a half-written snapshot visible at the target
path.  The manifest carries a SHA-256 per file, so a torn or mixed
snapshot (files from two different saves) is rejected at load time with a
typed :class:`StorageError` instead of being silently loadable.

String columns are stored as object arrays (``allow_pickle``), so
snapshots are a local persistence/interchange format, not a security
boundary — load only snapshots you created.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import StorageError
from ..resilience import faults
from ..types import DataType
from .catalog import EdgeLabelDef, GraphSchema, PropertyDef, VertexLabelDef
from .graph import GraphStore

#: Version 2 added per-column validity bitmaps (``__valid__<name>``
#: members); version 3 adds the atomic-write protocol and the per-file
#: SHA-256 ``MANIFEST.json``.  v1 (sentinel era) and v2 (no manifest)
#: snapshots still load, with every file trusted as-is.
_FORMAT_VERSION = 3
_SUPPORTED_FORMATS = (1, 2, 3)

_VALID_PREFIX = "__valid__"

MANIFEST_NAME = "MANIFEST.json"


def _schema_to_dict(schema: GraphSchema) -> dict:
    return {
        "format": _FORMAT_VERSION,
        "vertex_labels": [
            {
                "name": schema.vertex_label(name).name,
                "primary_key": schema.vertex_label(name).primary_key,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value}
                    for p in schema.vertex_label(name).properties
                ],
            }
            for name in schema.vertex_labels
        ],
        "edge_labels": [
            {
                "name": d.name,
                "src": d.src_label,
                "dst": d.dst_label,
                "properties": [
                    {"name": p.name, "dtype": p.dtype.value} for p in d.properties
                ],
            }
            for d in schema.iter_edge_definitions()
        ],
    }


def _schema_from_dict(data: dict) -> GraphSchema:
    if data.get("format") not in _SUPPORTED_FORMATS:
        raise StorageError(f"unsupported snapshot format {data.get('format')!r}")
    schema = GraphSchema()
    for label in data["vertex_labels"]:
        schema.add_vertex_label(
            VertexLabelDef(
                label["name"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in label["properties"]],
                primary_key=label["primary_key"],
            )
        )
    for edge in data["edge_labels"]:
        schema.add_edge_label(
            EdgeLabelDef(
                edge["name"],
                edge["src"],
                edge["dst"],
                [PropertyDef(p["name"], DataType(p["dtype"])) for p in edge["properties"]],
            )
        )
    return schema


# -- durability primitives ---------------------------------------------------------


def fsync_file(path: Path) -> None:
    """fsync one file by path (open read-only, sync, close)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    """fsync a directory so the renames/creates inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_manifest(path: Path, extra: dict[str, Any] | None = None) -> Path:
    """Emit ``MANIFEST.json`` covering every regular file under *path*."""
    files = {
        member.name: {"sha256": _sha256_file(member), "bytes": member.stat().st_size}
        for member in sorted(path.iterdir())
        if member.is_file() and member.name != MANIFEST_NAME
    }
    manifest: dict[str, Any] = {"format": _FORMAT_VERSION, "files": files}
    if extra:
        manifest.update(extra)
    target = path / MANIFEST_NAME
    with open(target, "w") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    return target


def read_manifest(path: Path) -> dict[str, Any] | None:
    """The parsed manifest of a snapshot directory, or None when absent
    (a pre-v3 snapshot).  Malformed manifests raise ``StorageError``."""
    target = Path(path) / MANIFEST_NAME
    if not target.exists():
        return None
    try:
        with open(target) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable snapshot manifest {target}: {exc}") from exc
    if not isinstance(manifest.get("files"), dict):
        raise StorageError(f"malformed snapshot manifest {target}: no file table")
    return manifest


def verify_manifest(path: Path) -> dict[str, Any] | None:
    """Check every file of a snapshot against its manifest.

    Returns the manifest (None for pre-v3 snapshots).  A listed file that
    is missing, a checksum that does not match, or an unlisted data file
    (a *mixed* snapshot: files from two different saves) raises
    :class:`StorageError` naming the offending file.
    """
    path = Path(path)
    manifest = read_manifest(path)
    if manifest is None:
        return None
    listed = manifest["files"]
    for name, meta in listed.items():
        member = path / name
        if not member.exists():
            raise StorageError(
                f"torn snapshot {path}: manifest lists missing file {name}"
            )
        if _sha256_file(member) != meta.get("sha256"):
            raise StorageError(
                f"corrupt snapshot file {member}: SHA-256 mismatch against MANIFEST.json"
            )
    for member in path.iterdir():
        if not member.is_file() or member.name == MANIFEST_NAME:
            continue
        if member.suffix == ".npz" or member.name == "schema.json":
            if member.name not in listed:
                raise StorageError(
                    f"mixed snapshot {path}: {member.name} is not listed in MANIFEST.json"
                )
    return manifest


def _atomic_swap(tmp: Path, path: Path) -> None:
    """Publish *tmp* at *path* with rename(2); fsync the parent after."""
    parent = path.parent
    if path.exists():
        # A directory rename cannot replace a non-empty directory, so an
        # existing snapshot is moved aside first and deleted after the new
        # one is live; the aside dir is hidden so loaders never see it.
        old = parent / f".{path.name}.old-{os.getpid()}"
        if old.exists():
            shutil.rmtree(old)
        os.rename(path, old)
        os.rename(tmp, path)
        fsync_dir(parent)
        shutil.rmtree(old, ignore_errors=True)
    else:
        os.rename(tmp, path)
        fsync_dir(parent)


def _write_snapshot_files(store: GraphStore, path: Path) -> None:
    with open(path / "schema.json", "w") as handle:
        json.dump(_schema_to_dict(store.schema), handle, indent=2)

    for label in store.schema.vertex_labels:
        table = store.table(label)
        arrays = {}
        for name in table.column_names:
            column = table.column(name)
            arrays[name] = column.view()
            mask = column.validity_mask()
            if mask is not None:
                arrays[_VALID_PREFIX + name] = mask
        np.savez(path / f"vertices_{label}.npz", **arrays)

    for i, definition in enumerate(store.schema.iter_edge_definitions()):
        adjacency = store.adjacency(definition.key())
        src, dst, props, validity = adjacency.export_edges()
        arrays = {"__src": src, "__dst": dst}
        arrays.update(props)
        for name, mask in validity.items():
            arrays[_VALID_PREFIX + name] = mask
        np.savez(path / f"edges_{i}.npz", **arrays)


def save_graph(
    store: GraphStore, path: str | Path, manifest_extra: dict[str, Any] | None = None
) -> Path:
    """Atomically write a snapshot of *store* at *path*.

    The snapshot is assembled in a hidden temp directory next to the
    target, each file is fsynced, a ``MANIFEST.json`` with per-file
    SHA-256 digests is emitted, and the directory is renamed into place.
    On any failure — including an injected ``snapshot.save`` fault — the
    temp directory is removed and the target path is untouched: either
    the complete new snapshot is visible, or the previous state is.

    *manifest_extra* adds keys to the manifest (the checkpoint protocol
    stores its ``epoch`` this way).
    """
    faults.maybe_fire("snapshot.save")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    if tmp.exists():  # leftover from a dead process reusing our pid
        shutil.rmtree(tmp)
    try:
        tmp.mkdir()
        _write_snapshot_files(store, tmp)
        for member in tmp.iterdir():
            fsync_file(member)
        write_manifest(tmp, extra=manifest_extra)
        fsync_dir(tmp)
        _atomic_swap(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def _load_npz(file: Path) -> dict[str, np.ndarray]:
    """Read every array of one ``.npz`` member file, failures typed.

    A truncated, corrupt, or missing archive — and a malformed member
    array inside one — surfaces as :class:`StorageError` naming the
    offending file, not as a raw ``OSError``/``zipfile``/pickle error.
    """
    try:
        with np.load(file, allow_pickle=True) as data:
            return {name: data[name] for name in data.files}
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"corrupt or unreadable snapshot file {file}: {exc}") from exc


def load_graph(path: str | Path) -> GraphStore:
    """Rebuild a :class:`GraphStore` from a snapshot directory.

    When a ``MANIFEST.json`` is present (format v3) every file is verified
    against its SHA-256 digest first, so a torn or mixed snapshot is
    rejected before a single array is deserialized; v1/v2 snapshots (no
    manifest) still load.  Every low-level failure mode — missing or
    malformed ``schema.json``, truncated/corrupt/missing ``.npz`` files,
    archives missing their required ``__src``/``__dst`` members — is
    wrapped into a :class:`StorageError` carrying the offending file path,
    so callers handle one typed error instead of raw ``json``/``numpy``/
    ``OSError`` leakage.  Fault site ``snapshot.load`` covers the whole
    operation.
    """
    faults.maybe_fire("snapshot.load")
    path = Path(path)
    schema_file = path / "schema.json"
    if not schema_file.exists():
        raise StorageError(f"no snapshot at {path}")
    manifest = verify_manifest(path)
    try:
        with open(schema_file) as handle:
            raw_schema = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable snapshot schema {schema_file}: {exc}") from exc
    try:
        schema = _schema_from_dict(raw_schema)
    except StorageError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed snapshot schema {schema_file}: {exc}") from exc
    if raw_schema.get("format", 0) >= 3 and manifest is None:
        raise StorageError(
            f"torn snapshot {path}: format 3 requires a MANIFEST.json"
        )
    store = GraphStore(schema)

    for label in schema.vertex_labels:
        members = _load_npz(path / f"vertices_{label}.npz")
        columns = {
            name: array for name, array in members.items()
            if not name.startswith("__")
        }
        validity = {
            name[len(_VALID_PREFIX):]: array.astype(bool)
            for name, array in members.items()
            if name.startswith(_VALID_PREFIX)
        }
        if columns:
            store.bulk_load_vertices(label, columns, validity=validity or None)

    for i, definition in enumerate(schema.iter_edge_definitions()):
        edge_file = path / f"edges_{i}.npz"
        arrays = _load_npz(edge_file)
        try:
            src = arrays.pop("__src")
            dst = arrays.pop("__dst")
        except KeyError as exc:
            raise StorageError(
                f"snapshot file {edge_file} is missing required member {exc}"
            ) from exc
        props = {
            name: array for name, array in arrays.items()
            if not name.startswith("__")
        }
        props_validity = {
            name[len(_VALID_PREFIX):]: array.astype(bool)
            for name, array in arrays.items()
            if name.startswith(_VALID_PREFIX)
        }
        store.bulk_load_edges(
            definition.name, definition.src_label, definition.dst_label, src, dst,
            props or None, props_validity or None,
        )
    return store
