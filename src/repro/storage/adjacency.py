"""Adjacency-list storage: ``adjMeta`` over a shared ``adjArray`` (paper Fig. 9).

Each :class:`AdjacencyList` stores the neighbors of every source vertex of
one ``(srcLabel, edgeLabel, dstLabel, direction)`` key.  Per-vertex metadata
(offset, live length, slot capacity) indexes into one contiguous ``targets``
array — the paper's ``adjArray`` — so a vertex's neighbors are a single
contiguous slice.  That contiguity is what makes the pointer-based join of
§5 possible: the executor stores only ``(array, offset, length)`` instead of
copying neighbor ids.

Topology updates follow the paper's scheme exactly: deletions tombstone a
slot, and an insertion that overflows a vertex's slot allocates a larger
region at the end of ``adjArray`` and abandons the old one.

Edge versioning (``created`` / ``deleted`` version stamps per slot) is
allocated lazily the first time a transactional update touches the list, so
the read-only bulk-loaded fast path pays nothing for MVCC.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..errors import StorageError
from .catalog import AdjacencyKey, PropertyDef
from .validity import pack_values

#: Tombstone marker inside ``targets`` ("marking for deletion", paper §5).
TOMBSTONE = np.int64(-1)

#: Version stamp meaning "never deleted".
MAX_VERSION = np.int64(np.iinfo(np.int64).max)

_MIN_SLOT = 4
_INITIAL_DATA_CAPACITY = 64


class AdjacencySegment:
    """A ``(pointer, length)`` reference into ``adjArray`` (paper §5).

    This is the unit the factorized executor stores in lazy neighbor columns
    instead of copying ids.  ``array`` aliases the storage's live buffer;
    callers must treat it as read-only.
    """

    __slots__ = ("array", "start", "length")

    def __init__(self, array: np.ndarray, start: int, length: int) -> None:
        self.array = array
        self.start = start
        self.length = length

    def materialize(self) -> np.ndarray:
        """Copy the referenced neighbor row indices out of ``adjArray``."""
        return self.array[self.start : self.start + self.length].copy()

    def __len__(self) -> int:
        return self.length


class AdjacencyList:
    """Neighbors for all source vertices of one adjacency key."""

    def __init__(
        self,
        key: AdjacencyKey,
        properties: list[PropertyDef] | None = None,
        num_src: int = 0,
    ) -> None:
        self.key = key
        self.property_defs = list(properties or [])
        # adjMeta: one entry per source-vertex row.
        self._offsets = np.zeros(max(num_src, 1), dtype=np.int64)
        self._lengths = np.zeros(max(num_src, 1), dtype=np.int32)
        self._capacities = np.zeros(max(num_src, 1), dtype=np.int32)
        self._num_src = num_src
        # adjArray and aligned edge-property arrays.
        self._targets = np.empty(_INITIAL_DATA_CAPACITY, dtype=np.int64)
        self._props: dict[str, np.ndarray] = {
            p.name: np.empty(_INITIAL_DATA_CAPACITY, dtype=p.dtype.numpy_dtype)
            for p in self.property_defs
        }
        # Per-property validity bitmaps aligned with the prop arrays; None
        # means "every slot valid" (lazily materialized on the first NULL).
        self._prop_valid: dict[str, np.ndarray | None] = {
            p.name: None for p in self.property_defs
        }
        self._data_length = 0  # high-water mark within adjArray
        self._has_tombstones = False
        # MVCC stamps, allocated lazily by _ensure_versions().
        self._created: np.ndarray | None = None
        self._deleted: np.ndarray | None = None

    @classmethod
    def from_backing(
        cls,
        key: AdjacencyKey,
        properties: list[PropertyDef],
        num_src: int,
        data_length: int,
        offsets: np.ndarray,
        lengths: np.ndarray,
        targets: np.ndarray,
        props: Mapping[str, np.ndarray],
        prop_valid: Mapping[str, np.ndarray | None],
        has_tombstones: bool,
        created: np.ndarray | None,
        deleted: np.ndarray | None,
    ) -> "AdjacencyList":
        """Wrap pre-built CSR arrays without copying (shared-memory attach).

        The arrays are adopted as-is — typically read-only views over a
        mapped segment.  ``capacities`` aliases ``lengths``: an attached
        list is never mutated, so slack capacity is meaningless.
        """
        adjacency = cls(key, properties, num_src=0)
        adjacency._num_src = num_src
        adjacency._offsets = offsets
        adjacency._lengths = lengths
        adjacency._capacities = lengths
        adjacency._targets = targets
        adjacency._props = dict(props)
        adjacency._prop_valid = dict(prop_valid)
        adjacency._data_length = data_length
        adjacency._has_tombstones = has_tombstones
        adjacency._created = created
        adjacency._deleted = deleted
        return adjacency

    # -- introspection -----------------------------------------------------

    @property
    def num_src(self) -> int:
        """Number of source-vertex slots in adjMeta."""
        return self._num_src

    @property
    def num_edges(self) -> int:
        """Live edge count (excludes tombstones, versioned deletes, and
        abandoned regions)."""
        total = int(self._lengths[: self._num_src].sum())
        if not self._has_tombstones and self._deleted is None:
            return total
        # Dead slots still count in lengths; subtract them.  A slot is dead
        # when tombstoned (non-versioned delete) or carrying a `deleted`
        # stamp (versioned delete) — either way it is gone at latest.
        dead = 0
        for src in range(self._num_src):
            start = int(self._offsets[src])
            end = start + int(self._lengths[src])
            dead_mask = self._targets[start:end] == TOMBSTONE
            if self._deleted is not None:
                dead_mask |= self._deleted[start:end] != MAX_VERSION
            dead += int(dead_mask.sum())
        return total - dead

    @property
    def nbytes(self) -> int:
        """Resident bytes of adjMeta, adjArray, and edge properties."""
        meta = self._offsets.nbytes + self._lengths.nbytes + self._capacities.nbytes
        data = int(self._targets[: self._data_length].nbytes)
        props = sum(int(a[: self._data_length].nbytes) for a in self._props.values())
        return meta + data + props

    @property
    def is_versioned(self) -> bool:
        """True once MVCC version stamps have been allocated."""
        return self._created is not None

    def has_property(self, name: str) -> bool:
        """True when edges of this list carry property *name*."""
        return name in self._props

    def degree(self, src_row: int) -> int:
        """Live out-degree of *src_row* under this key (latest version)."""
        if src_row < 0 or src_row >= self._num_src:
            return 0
        if self.supports_segments:
            return int(self._lengths[src_row])
        return len(self.neighbors(src_row))

    # -- reads ---------------------------------------------------------------

    def segment(self, src_row: int) -> AdjacencySegment:
        """Pointer-based reference to *src_row*'s neighbor slice.

        Only valid on lists without tombstones or version stamps (the
        bulk-loaded read path); otherwise use :meth:`neighbors`.
        """
        if src_row < 0 or src_row >= self._num_src:
            return AdjacencySegment(self._targets, 0, 0)
        return AdjacencySegment(
            self._targets, int(self._offsets[src_row]), int(self._lengths[src_row])
        )

    @property
    def supports_segments(self) -> bool:
        """True when zero-copy segments are exact (no tombstones/versions)."""
        return not self._has_tombstones and self._created is None

    def meta_for(self, src_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized adjMeta lookup: (adjArray, starts, lengths) per source.

        This is the pointer-based-join fast path (paper §5): one fancy-index
        over ``adjMeta`` instead of a per-vertex loop.  Sources that are out
        of range (or negative, i.e. NULL) get empty slices.  Only valid when
        :attr:`supports_segments` holds.
        """
        src_rows = np.asarray(src_rows, dtype=np.int64)
        valid = (src_rows >= 0) & (src_rows < self._num_src)
        safe = np.where(valid, src_rows, 0)
        starts = self._offsets[safe].astype(np.int64, copy=True)
        lengths = self._lengths[safe].astype(np.int64)
        starts[~valid] = 0
        lengths[~valid] = 0
        return self._targets, starts, lengths

    def neighbors(self, src_row: int, version: int | None = None) -> np.ndarray:
        """Materialized neighbor row indices of *src_row* (copy).

        With ``version`` set, only edges created at or before that version
        and not yet deleted at it are visible (MVCC read view).

        A negative row (the NULL sentinel) has no neighbors; without the
        guard it would wrap around via Python indexing and silently return
        the *last* vertex's slice.
        """
        if src_row < 0 or src_row >= self._num_src:
            return np.empty(0, dtype=np.int64)
        start = int(self._offsets[src_row])
        end = start + int(self._lengths[src_row])
        slice_ = self._targets[start:end]
        mask = self._visibility_mask(slice_, start, end, version)
        if mask is None:
            return slice_.copy()
        return slice_[mask]

    def neighbor_slots(self, src_row: int, version: int | None = None) -> np.ndarray:
        """Absolute slot indices (into adjArray) of visible neighbors.

        Slot indices let callers fetch aligned edge properties afterwards.
        """
        if src_row < 0 or src_row >= self._num_src:
            return np.empty(0, dtype=np.int64)
        start = int(self._offsets[src_row])
        end = start + int(self._lengths[src_row])
        slots = np.arange(start, end, dtype=np.int64)
        slice_ = self._targets[start:end]
        mask = self._visibility_mask(slice_, start, end, version)
        if mask is None:
            return slots
        return slots[mask]

    def _visibility_mask(
        self, slice_: np.ndarray, start: int, end: int, version: int | None
    ) -> np.ndarray | None:
        """Boolean mask of visible slots, or None when everything is visible."""
        needs_tombstone_filter = self._has_tombstones
        needs_version_filter = self._created is not None
        if not needs_tombstone_filter and not needs_version_filter:
            return None
        mask = slice_ != TOMBSTONE
        if needs_version_filter:
            assert self._created is not None and self._deleted is not None
            # A latest-version read still has to hide version-deleted edges.
            effective = MAX_VERSION - 1 if version is None else version
            created = self._created[start:end]
            deleted = self._deleted[start:end]
            mask &= (created <= effective) & (deleted > effective)
        return mask

    def target_at(self, slot: int) -> int:
        """Destination row stored in adjArray slot *slot*."""
        return int(self._targets[slot])

    def prop_at(self, name: str, slot: int) -> Any:
        """Edge property *name* of the edge in slot *slot* (None when NULL)."""
        try:
            array = self._props[name]
        except KeyError:
            raise StorageError(
                f"adjacency {self.key} has no edge property {name!r}"
            ) from None
        valid = self._prop_valid.get(name)
        if valid is not None and not valid[slot]:
            return None
        value = array[slot]
        return value.item() if isinstance(value, np.generic) else value

    def gather_prop(self, name: str, slots: np.ndarray) -> np.ndarray:
        """Vectorized edge-property fetch for many slots (raw values).

        Invalid slots hold the dtype's inert fill; pair with
        :meth:`gather_prop_validity` when NULLness matters downstream.
        """
        try:
            return self._props[name][slots]
        except KeyError:
            raise StorageError(
                f"adjacency {self.key} has no edge property {name!r}"
            ) from None

    def gather_prop_validity(self, name: str, slots: np.ndarray) -> np.ndarray | None:
        """Validity bits for edge property *name* at *slots* (None = all valid)."""
        if name not in self._props:
            raise StorageError(f"adjacency {self.key} has no edge property {name!r}")
        valid = self._prop_valid.get(name)
        if valid is None:
            return None
        return valid[slots]

    def export_edges(
        self,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Live edges as parallel (src_rows, dst_rows, props, validity) arrays.

        ``validity`` holds a bool array per property that has at least one
        NULL slot (all-valid properties are omitted).  Tombstoned and
        version-deleted edges are excluded; the inverse of
        :meth:`bulk_load`, used by graph snapshots.
        """
        lengths = self._lengths[: self._num_src].astype(np.int64)
        src = np.repeat(np.arange(self._num_src, dtype=np.int64), lengths)
        offsets = np.zeros(self._num_src, dtype=np.int64)
        if self._num_src > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])
        total = int(lengths.sum())
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
        slots = np.repeat(self._offsets[: self._num_src], lengths) + within
        targets = self._targets[slots]
        mask = targets != TOMBSTONE
        if self._deleted is not None:
            mask &= self._deleted[slots] == MAX_VERSION
        props = {
            name: array[slots][mask] for name, array in self._props.items()
        }
        validity = {
            name: valid[slots][mask]
            for name, valid in self._prop_valid.items()
            if valid is not None
        }
        return src[mask], targets[mask], props, validity

    # -- bulk load -----------------------------------------------------------

    def bulk_load(
        self,
        num_src: int,
        src_rows: np.ndarray,
        dst_rows: np.ndarray,
        props: Mapping[str, np.ndarray] | None = None,
        props_validity: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Build the CSR-like layout from parallel edge arrays.

        Edges are grouped by source row; within a group the input order is
        preserved.  No slack capacity is reserved — updates that overflow a
        slot relocate it, per the paper's growth scheme.  NULL edge
        properties arrive as ``None`` holes (or float NaN) in *props*, or as
        explicit bitmasks in *props_validity*; either way they land in the
        per-property validity bitmaps, never as sentinel values.
        """
        props = props or {}
        if len(src_rows) != len(dst_rows):
            raise StorageError("bulk_load: src/dst arrays differ in length")
        for name in props:
            if name not in self._props:
                raise StorageError(f"bulk_load: unknown edge property {name!r}")
            if len(props[name]) != len(src_rows):
                raise StorageError(f"bulk_load: property {name!r} length mismatch")
        src_array = np.asarray(src_rows, dtype=np.int64)
        if len(src_array):
            lo, hi = int(src_array.min()), int(src_array.max())
            if lo < 0 or hi >= num_src:
                raise StorageError(
                    f"bulk_load: source rows must be within [0, {num_src}), "
                    f"got range [{lo}, {hi}]"
                )
        order = np.argsort(src_array, kind="stable")
        sorted_src = src_array[order]
        sorted_dst = np.asarray(dst_rows, dtype=np.int64)[order]

        counts = np.bincount(sorted_src, minlength=num_src).astype(np.int32)
        offsets = np.zeros(num_src, dtype=np.int64)
        if num_src > 0:
            np.cumsum(counts[:-1], out=offsets[1:])

        self._num_src = num_src
        self._offsets = offsets
        self._lengths = counts
        self._capacities = counts.astype(np.int32).copy()
        self._targets = sorted_dst.copy()
        self._data_length = len(sorted_dst)
        self._props = {}
        self._prop_valid = {}
        for prop_def in self.property_defs:
            if prop_def.name in props:
                values, mask = pack_values(props[prop_def.name], prop_def.dtype)
                explicit = (props_validity or {}).get(prop_def.name)
                if explicit is not None:
                    explicit = np.asarray(explicit, dtype=bool)
                    mask = explicit if mask is None else (mask & explicit)
                self._props[prop_def.name] = values[order].copy()
                if mask is not None and not mask.all():
                    self._prop_valid[prop_def.name] = mask[order].copy()
                else:
                    self._prop_valid[prop_def.name] = None
            else:
                filler = np.full(
                    len(sorted_dst), prop_def.dtype.fill_value(), dtype=prop_def.dtype.numpy_dtype
                )
                self._props[prop_def.name] = filler
                self._prop_valid[prop_def.name] = np.zeros(len(sorted_dst), dtype=bool)
        self._has_tombstones = False
        self._created = None
        self._deleted = None

    # -- updates ---------------------------------------------------------------

    def _ensure_src(self, src_row: int) -> None:
        if src_row < self._num_src:
            return
        needed = src_row + 1
        if needed > len(self._offsets):
            capacity = max(len(self._offsets) * 2, needed)
            for attr in ("_offsets", "_lengths", "_capacities"):
                old = getattr(self, attr)
                grown = np.zeros(capacity, dtype=old.dtype)
                grown[: self._num_src] = old[: self._num_src]
                setattr(self, attr, grown)
        self._num_src = needed

    def _ensure_versions(self) -> None:
        if self._created is not None:
            return
        self._created = np.zeros(len(self._targets), dtype=np.int64)
        self._deleted = np.full(len(self._targets), MAX_VERSION, dtype=np.int64)

    def _grow_data(self, needed: int) -> None:
        if needed <= len(self._targets):
            return
        capacity = max(len(self._targets) * 2, needed, _INITIAL_DATA_CAPACITY)
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._data_length] = self._targets[: self._data_length]
        self._targets = grown
        for name, array in self._props.items():
            grown_prop = np.empty(capacity, dtype=array.dtype)
            grown_prop[: self._data_length] = array[: self._data_length]
            self._props[name] = grown_prop
        for name, valid in self._prop_valid.items():
            if valid is None:
                continue
            grown_valid = np.ones(capacity, dtype=bool)
            grown_valid[: self._data_length] = valid[: self._data_length]
            self._prop_valid[name] = grown_valid
        if self._created is not None:
            assert self._deleted is not None
            grown_created = np.zeros(capacity, dtype=np.int64)
            grown_created[: self._data_length] = self._created[: self._data_length]
            self._created = grown_created
            grown_deleted = np.full(capacity, MAX_VERSION, dtype=np.int64)
            grown_deleted[: self._data_length] = self._deleted[: self._data_length]
            self._deleted = grown_deleted

    def _relocate(self, src_row: int, new_capacity: int) -> None:
        """Move a full slot region to fresh space at the end of adjArray."""
        old_start = int(self._offsets[src_row])
        length = int(self._lengths[src_row])
        new_start = self._data_length
        self._grow_data(new_start + new_capacity)
        self._targets[new_start : new_start + length] = self._targets[
            old_start : old_start + length
        ]
        for array in self._props.values():
            array[new_start : new_start + length] = array[old_start : old_start + length]
        for valid in self._prop_valid.values():
            if valid is None:
                continue
            valid[new_start : new_start + length] = valid[old_start : old_start + length]
        if self._created is not None:
            assert self._deleted is not None
            self._created[new_start : new_start + length] = self._created[
                old_start : old_start + length
            ]
            self._deleted[new_start : new_start + length] = self._deleted[
                old_start : old_start + length
            ]
        self._offsets[src_row] = new_start
        self._capacities[src_row] = new_capacity
        self._data_length = new_start + new_capacity

    def _set_prop_slot(self, name: str, slot: int, value: Any, valid: bool) -> None:
        """Write one edge-property slot, maintaining its validity bitmap."""
        self._props[name][slot] = value
        bitmap = self._prop_valid[name]
        if bitmap is None:
            if valid:
                return
            bitmap = np.ones(len(self._props[name]), dtype=bool)
            self._prop_valid[name] = bitmap
        bitmap[slot] = valid

    def add_edge(
        self,
        src_row: int,
        dst_row: int,
        props: Mapping[str, Any] | None = None,
        version: int | None = None,
    ) -> int:
        """Append an edge, returning its slot index in adjArray."""
        self._ensure_src(src_row)
        if version is not None:
            self._ensure_versions()
        length = int(self._lengths[src_row])
        capacity = int(self._capacities[src_row])
        if length == capacity:
            self._relocate(src_row, max(capacity * 2, _MIN_SLOT))
        slot = int(self._offsets[src_row]) + length
        self._targets[slot] = dst_row
        for prop_def in self.property_defs:
            value = (props or {}).get(prop_def.name)
            valid = value is not None
            if not valid:
                value = prop_def.dtype.fill_value()
            self._set_prop_slot(prop_def.name, slot, value, valid)
        if self._created is not None:
            assert self._deleted is not None
            self._created[slot] = 0 if version is None else version
            self._deleted[slot] = MAX_VERSION
        self._lengths[src_row] = length + 1
        self._data_length = max(self._data_length, slot + 1)
        return slot

    def remove_edge(self, src_row: int, dst_row: int, version: int | None = None) -> bool:
        """Delete the first matching live edge; returns False when absent.

        Non-versioned deletion tombstones the slot; versioned deletion stamps
        ``deleted`` so older snapshots still see the edge.
        """
        if src_row < 0 or src_row >= self._num_src:
            return False
        start = int(self._offsets[src_row])
        end = start + int(self._lengths[src_row])
        for slot in range(start, end):
            if int(self._targets[slot]) != dst_row:
                continue
            if self._deleted is not None and self._deleted[slot] != MAX_VERSION:
                continue  # already deleted in a newer version
            if version is None:
                self._targets[slot] = TOMBSTONE
                self._has_tombstones = True
            else:
                self._ensure_versions()
                assert self._deleted is not None
                self._deleted[slot] = version
            return True
        return False
