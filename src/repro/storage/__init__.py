"""Graph storage layer: catalog, columnar vertex tables, adjacency lists,
memory pool, and versioned read views (paper §5, Figure 9)."""

from .adjacency import AdjacencyList, AdjacencySegment, MAX_VERSION, TOMBSTONE
from .catalog import (
    AdjacencyKey,
    Direction,
    EdgeLabelDef,
    GraphSchema,
    PropertyDef,
    VertexLabelDef,
)
from .graph import GraphReadView, GraphStore, VertexRef
from .io import load_graph, save_graph
from .memory_pool import DEFAULT_POOL, MemoryPool
from .properties import PropertyColumn, VertexTable

__all__ = [
    "AdjacencyKey",
    "AdjacencyList",
    "AdjacencySegment",
    "DEFAULT_POOL",
    "Direction",
    "EdgeLabelDef",
    "GraphReadView",
    "GraphSchema",
    "GraphStore",
    "load_graph",
    "MAX_VERSION",
    "MemoryPool",
    "PropertyColumn",
    "PropertyDef",
    "save_graph",
    "TOMBSTONE",
    "VertexLabelDef",
    "VertexRef",
    "VertexTable",
]
