"""Schema catalog for the Label Property Graph model.

GES adopts the LPG model (paper §2.1): vertices and edges carry labels and
key-value properties.  The catalog is the single source of truth for which
labels exist, which properties each label carries (and their types), and
which property acts as a label's primary key (the LDBC-style ``id``).

The adjacency storage is keyed by ``(srcLabel, edgeLabel, dstLabel,
direction)`` exactly as in Figure 9 of the paper; :class:`AdjacencyKey` is
that hash-table key.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from ..errors import SchemaError
from ..types import DataType


class Direction(enum.Enum):
    """Traversal direction of an adjacency list."""

    OUT = "out"
    IN = "in"

    def reverse(self) -> "Direction":
        return Direction.IN if self is Direction.OUT else Direction.OUT


class AdjacencyKey(NamedTuple):
    """Key of one adjacency list in the storage hash table (paper Fig. 9)."""

    src_label: str
    edge_label: str
    dst_label: str
    direction: Direction

    def reversed(self) -> "AdjacencyKey":
        """The key of the mirror list (swapping endpoint roles)."""
        return AdjacencyKey(
            self.dst_label, self.edge_label, self.src_label, self.direction.reverse()
        )


@dataclass(frozen=True)
class PropertyDef:
    """A named, typed property on a vertex or edge label."""

    name: str
    dtype: DataType


@dataclass
class VertexLabelDef:
    """A vertex label with its property schema.

    ``primary_key`` names the property used for external lookups (LDBC
    entity ids); it must appear in ``properties`` and be INT64-backed.
    """

    name: str
    properties: list[PropertyDef] = field(default_factory=list)
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate property on vertex label {self.name!r}")
        if self.primary_key is not None:
            prop = self.property(self.primary_key)
            if not prop.dtype.is_integer_backed:
                raise SchemaError(
                    f"primary key {self.primary_key!r} of {self.name!r} must be integer-backed"
                )

    def property(self, name: str) -> PropertyDef:
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise SchemaError(f"vertex label {self.name!r} has no property {name!r}")

    def has_property(self, name: str) -> bool:
        return any(p.name == name for p in self.properties)


@dataclass
class EdgeLabelDef:
    """An edge label connecting one source label to one destination label.

    LDBC relationships that are polymorphic at one endpoint (e.g.
    ``HAS_CREATOR`` from both Post and Comment) are modelled as several
    :class:`EdgeLabelDef` entries sharing the same ``name``; the executor's
    Expand operator unions over all matching adjacency keys.
    """

    name: str
    src_label: str
    dst_label: str
    properties: list[PropertyDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate property on edge label {self.name!r}")

    def property(self, name: str) -> PropertyDef:
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise SchemaError(f"edge label {self.name!r} has no property {name!r}")

    def key(self) -> AdjacencyKey:
        """Adjacency key of the forward (OUT) list for this definition."""
        return AdjacencyKey(self.src_label, self.name, self.dst_label, Direction.OUT)


class GraphSchema:
    """Catalog of vertex and edge labels for one graph."""

    def __init__(self) -> None:
        self._vertex_labels: dict[str, VertexLabelDef] = {}
        self._edge_labels: list[EdgeLabelDef] = []
        self._fingerprint: str | None = None

    # -- registration ----------------------------------------------------

    def add_vertex_label(self, definition: VertexLabelDef) -> VertexLabelDef:
        if definition.name in self._vertex_labels:
            raise SchemaError(f"vertex label {definition.name!r} already defined")
        self._vertex_labels[definition.name] = definition
        self._fingerprint = None
        return definition

    def add_edge_label(self, definition: EdgeLabelDef) -> EdgeLabelDef:
        for endpoint in (definition.src_label, definition.dst_label):
            if endpoint not in self._vertex_labels:
                raise SchemaError(
                    f"edge label {definition.name!r} references unknown vertex label {endpoint!r}"
                )
        for existing in self._edge_labels:
            if (
                existing.name == definition.name
                and existing.src_label == definition.src_label
                and existing.dst_label == definition.dst_label
            ):
                raise SchemaError(
                    f"edge label {definition.name!r} "
                    f"({definition.src_label}->{definition.dst_label}) already defined"
                )
        self._edge_labels.append(definition)
        self._fingerprint = None
        return definition

    # -- identity --------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable digest of the catalog contents.

        Plans compiled against one fingerprint are valid exactly as long as
        the schema still hashes to it; the engine's plan cache keys on this
        value and invalidates when it changes.  Cached until the next
        ``add_vertex_label`` / ``add_edge_label``.
        """
        if self._fingerprint is None:
            parts: list[str] = []
            for name in sorted(self._vertex_labels):
                vdef = self._vertex_labels[name]
                props = ",".join(f"{p.name}:{p.dtype.name}" for p in vdef.properties)
                parts.append(f"V:{name}({props})pk={vdef.primary_key}")
            for edef in self._edge_labels:
                props = ",".join(f"{p.name}:{p.dtype.name}" for p in edef.properties)
                parts.append(f"E:{edef.name}:{edef.src_label}->{edef.dst_label}({props})")
            digest = hashlib.sha1("|".join(parts).encode()).hexdigest()
            self._fingerprint = digest[:16]
        return self._fingerprint

    # -- lookup ----------------------------------------------------------

    @property
    def vertex_labels(self) -> list[str]:
        return list(self._vertex_labels)

    def vertex_label(self, name: str) -> VertexLabelDef:
        try:
            return self._vertex_labels[name]
        except KeyError:
            raise SchemaError(f"unknown vertex label {name!r}") from None

    def has_vertex_label(self, name: str) -> bool:
        return name in self._vertex_labels

    def edge_definitions(
        self,
        edge_label: str,
        src_label: str | None = None,
        dst_label: str | None = None,
    ) -> list[EdgeLabelDef]:
        """All edge definitions matching the given (possibly partial) pattern."""
        matches = [
            d
            for d in self._edge_labels
            if d.name == edge_label
            and (src_label is None or d.src_label == src_label)
            and (dst_label is None or d.dst_label == dst_label)
        ]
        return matches

    def edge_definition(self, edge_label: str, src_label: str, dst_label: str) -> EdgeLabelDef:
        matches = self.edge_definitions(edge_label, src_label, dst_label)
        if not matches:
            raise SchemaError(
                f"unknown edge label {edge_label!r} ({src_label}->{dst_label})"
            )
        return matches[0]

    def iter_edge_definitions(self) -> Iterator[EdgeLabelDef]:
        return iter(self._edge_labels)

    def expand_keys(
        self,
        edge_label: str,
        direction: Direction,
        from_label: str,
        to_label: str | None = None,
    ) -> list[AdjacencyKey]:
        """Adjacency keys an Expand from ``from_label`` must union over.

        ``direction`` is the traversal direction *relative to the starting
        vertex*: OUT follows edges whose source is the starting vertex; IN
        follows edges that point at it.
        """
        keys: list[AdjacencyKey] = []
        if direction is Direction.OUT:
            for d in self.edge_definitions(edge_label, src_label=from_label, dst_label=to_label):
                keys.append(AdjacencyKey(d.src_label, d.name, d.dst_label, Direction.OUT))
        else:
            for d in self.edge_definitions(edge_label, src_label=to_label, dst_label=from_label):
                keys.append(AdjacencyKey(d.dst_label, d.name, d.src_label, Direction.IN))
        if not keys:
            raise SchemaError(
                f"no adjacency for -[:{edge_label}]- {direction.value} from {from_label!r}"
                + (f" to {to_label!r}" if to_label else "")
            )
        return keys
