"""The LPG graph store: vertex tables + the adjacency hash table, plus the
versioned read views the executor runs against.

:class:`GraphStore` owns all mutable state.  Query execution never touches
it directly; instead the engine hands each query a :class:`GraphReadView`
bound to a snapshot version (paper §5, Concurrency Control).  For the
common read-mostly case the view is a zero-cost pass-through; when a
transaction has created copy-on-write vertex snapshots, the view resolves
vertex properties through the overlay the transaction layer installs.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Protocol

import numpy as np

from ..errors import SchemaError, StorageError
from .adjacency import AdjacencyList, AdjacencySegment
from .catalog import AdjacencyKey, Direction, EdgeLabelDef, GraphSchema
from .properties import VertexTable


class VertexOverlay(Protocol):
    """Resolves copy-on-write vertex property versions for one snapshot.

    Implemented by the transaction layer; the storage layer only needs
    this narrow protocol.
    """

    def resolve(self, label: str, row: int, name: str, version: int) -> tuple[bool, Any]:
        """Return ``(True, value)`` when the overlay overrides the property
        at *version*, else ``(False, None)``."""


class VertexRef:
    """A (label, row) handle to one vertex."""

    __slots__ = ("label", "row")

    def __init__(self, label: str, row: int) -> None:
        self.label = label
        self.row = row

    def __repr__(self) -> str:
        return f"VertexRef({self.label!r}, {self.row})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VertexRef)
            and other.label == self.label
            and other.row == self.row
        )

    def __hash__(self) -> int:
        return hash((self.label, self.row))


class GraphStore:
    """All vertices, properties, and adjacency lists of one graph."""

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema
        self._tables: dict[str, VertexTable] = {
            name: VertexTable(schema.vertex_label(name)) for name in schema.vertex_labels
        }
        self._adjacency: dict[AdjacencyKey, AdjacencyList] = {}
        for definition in schema.iter_edge_definitions():
            self._register_adjacency(definition)
        # Bumped on every structural mutation (vertex/edge insert, edge
        # delete, bulk load).  Together with a snapshot version this keys
        # exported shared-memory snapshots: same (epoch, version) ⇒ the
        # bytes a worker would map are identical, so the export is reusable.
        self._mutation_epoch = 0

    @property
    def mutation_epoch(self) -> int:
        """Monotonic counter of graph mutations (snapshot staleness key).

        Folds in the per-table write epochs so direct, non-transactional
        property writes are noticed too.
        """
        return self._mutation_epoch + sum(
            t.write_epoch for t in self._tables.values()
        )

    def _register_adjacency(self, definition: EdgeLabelDef) -> None:
        out_key = definition.key()
        in_key = out_key.reversed()
        self._adjacency[out_key] = AdjacencyList(out_key, definition.properties)
        self._adjacency[in_key] = AdjacencyList(in_key, definition.properties)

    # -- access ---------------------------------------------------------------

    def table(self, label: str) -> VertexTable:
        """The vertex table of *label*."""
        try:
            return self._tables[label]
        except KeyError:
            raise SchemaError(f"unknown vertex label {label!r}") from None

    def adjacency(self, key: AdjacencyKey) -> AdjacencyList:
        """The adjacency list registered under *key*."""
        try:
            return self._adjacency[key]
        except KeyError:
            raise StorageError(f"no adjacency list for {key}") from None

    @property
    def vertex_count(self) -> int:
        """Live vertices across all labels."""
        return sum(t.num_live for t in self._tables.values())

    @property
    def edge_count(self) -> int:
        """Live directed-edge count over forward (OUT) lists only."""
        return sum(
            adj.num_edges
            for key, adj in self._adjacency.items()
            if key.direction is Direction.OUT
        )

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of tables plus adjacency lists."""
        tables = sum(t.nbytes for t in self._tables.values())
        adjacency = sum(a.nbytes for a in self._adjacency.values())
        return tables + adjacency

    # -- mutation ---------------------------------------------------------------

    def add_vertex(self, label: str, properties: Mapping[str, Any]) -> VertexRef:
        """Insert one vertex, returning its (label, row) handle."""
        row = self.table(label).insert(properties)
        self._mutation_epoch += 1
        return VertexRef(label, row)

    def add_edge(
        self,
        edge_label: str,
        src: VertexRef,
        dst: VertexRef,
        props: Mapping[str, Any] | None = None,
        version: int | None = None,
    ) -> None:
        """Insert one edge, maintaining both the OUT and the mirror IN list."""
        self.schema.edge_definition(edge_label, src.label, dst.label)
        out_key = AdjacencyKey(src.label, edge_label, dst.label, Direction.OUT)
        in_key = out_key.reversed()
        self._adjacency[out_key].add_edge(src.row, dst.row, props, version)
        self._adjacency[in_key].add_edge(dst.row, src.row, props, version)
        self._mutation_epoch += 1

    def remove_edge(
        self,
        edge_label: str,
        src: VertexRef,
        dst: VertexRef,
        version: int | None = None,
    ) -> bool:
        """Delete one edge from both direction lists; False when absent."""
        out_key = AdjacencyKey(src.label, edge_label, dst.label, Direction.OUT)
        in_key = out_key.reversed()
        removed = self._adjacency[out_key].remove_edge(src.row, dst.row, version)
        if removed:
            self._adjacency[in_key].remove_edge(dst.row, src.row, version)
            self._mutation_epoch += 1
        return removed

    # -- bulk load -----------------------------------------------------------

    def bulk_load_vertices(
        self,
        label: str,
        columns: Mapping[str, np.ndarray | list],
        validity: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Replace *label*'s table contents from aligned column arrays.

        NULLs arrive as ``None`` holes (or float NaN) in *columns*, or as
        explicit per-column bitmasks in *validity* (the snapshot path).
        """
        self.table(label).bulk_load(columns, validity=validity)
        self._mutation_epoch += 1

    def bulk_load_edges(
        self,
        edge_label: str,
        src_label: str,
        dst_label: str,
        src_rows: np.ndarray,
        dst_rows: np.ndarray,
        props: Mapping[str, np.ndarray] | None = None,
        props_validity: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """CSR-build both directions of one edge definition."""
        self.schema.edge_definition(edge_label, src_label, dst_label)
        out_key = AdjacencyKey(src_label, edge_label, dst_label, Direction.OUT)
        in_key = out_key.reversed()
        self._adjacency[out_key].bulk_load(
            len(self.table(src_label)), src_rows, dst_rows, props, props_validity
        )
        self._adjacency[in_key].bulk_load(
            len(self.table(dst_label)), dst_rows, src_rows, props, props_validity
        )
        self._mutation_epoch += 1

    # -- views -----------------------------------------------------------------

    def read_view(
        self, version: int | None = None, overlay: VertexOverlay | None = None
    ) -> "GraphReadView":
        """A read view of the graph at *version* (None = latest)."""
        return GraphReadView(self, version, overlay)


class GraphReadView:
    """Read-only, version-bound access used by the query executor."""

    def __init__(
        self,
        store: GraphStore,
        version: int | None = None,
        overlay: VertexOverlay | None = None,
    ) -> None:
        self.store = store
        self.schema = store.schema
        self.version = version
        self.overlay = overlay

    # -- vertices ----------------------------------------------------------

    def vertex_by_key(self, label: str, key: int) -> int | None:
        """Row index of the vertex with primary key *key*, or None.

        Vertices created after this view's snapshot version are invisible.
        """
        table = self.store.table(label)
        row = table.try_row_for_key(key)
        if row is None or not table.is_visible(row, self.version):
            return None
        return row

    def all_rows(self, label: str) -> np.ndarray:
        table = self.store.table(label)
        rows = table.all_rows()
        if self.version is None or not table.has_version_stamps:
            return rows
        visible = np.asarray(
            [table.created_version(int(r)) <= self.version for r in rows], dtype=bool
        )
        return rows[visible]

    def vertex_key(self, label: str, row: int) -> int:
        pk = self.schema.vertex_label(label).primary_key
        if pk is None:
            raise SchemaError(f"vertex label {label!r} has no primary key")
        return int(self.get_property(label, row, pk))

    def get_property(self, label: str, row: int, name: str) -> Any:
        if self.overlay is not None and self.version is not None:
            overridden, value = self.overlay.resolve(label, row, name, self.version)
            if overridden:
                return value
        return self.store.table(label).get_property(row, name)

    def gather_properties(self, label: str, name: str, rows: np.ndarray) -> np.ndarray:
        """Vectorized property fetch (raw values, inert fills under NULLs).

        Prefer :meth:`gather_properties_with_validity` when NULLness matters
        downstream; this variant only patches copy-on-write overrides into
        the value array.
        """
        values, _ = self.gather_properties_with_validity(label, name, rows)
        return values

    def gather_properties_with_validity(
        self, label: str, name: str, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Vectorized property fetch with validity, patching COW overrides.

        Returns ``(values, validity)`` where ``validity`` is ``None`` when
        every requested row is valid.  Overridden slots whose pre-image is
        NULL clear the corresponding bit.
        """
        column = self.store.table(label).column(name)
        values = column.gather(rows)
        validity = column.gather_validity(rows)
        if self.overlay is not None and self.version is not None:
            values = values.copy()
            validity = (
                validity.copy()
                if validity is not None
                else np.ones(len(rows), dtype=bool)
            )
            for i, row in enumerate(rows):
                overridden, value = self.overlay.resolve(
                    label, int(row), name, self.version
                )
                if overridden:
                    if value is None:
                        validity[i] = False
                        values[i] = column.dtype.fill_value()
                    else:
                        validity[i] = True
                        values[i] = value
            if validity.all():
                validity = None
        return values, validity

    # -- adjacency ----------------------------------------------------------

    def adjacency(self, key: AdjacencyKey) -> AdjacencyList:
        return self.store.adjacency(key)

    def neighbors(self, key: AdjacencyKey, src_row: int) -> np.ndarray:
        return self.store.adjacency(key).neighbors(src_row, self.version)

    def neighbor_slots(self, key: AdjacencyKey, src_row: int) -> np.ndarray:
        return self.store.adjacency(key).neighbor_slots(src_row, self.version)

    def segment(self, key: AdjacencyKey, src_row: int) -> AdjacencySegment | None:
        """Zero-copy neighbor segment, or None when pointer-based access is
        unsafe (tombstones or MVCC stamps present)."""
        adjacency = self.store.adjacency(key)
        if not adjacency.supports_segments:
            return None
        return adjacency.segment(src_row)

    def degree(self, key: AdjacencyKey, src_row: int) -> int:
        adjacency = self.store.adjacency(key)
        if adjacency.supports_segments:
            return adjacency.degree(src_row)
        return len(adjacency.neighbors(src_row, self.version))

    # -- traversal helpers (used by stored procedures) -----------------------

    def frontier_neighbors(
        self, keys: Iterable[AdjacencyKey], rows: Iterable[int]
    ) -> np.ndarray:
        """Union of neighbor rows over several keys and sources (BFS step)."""
        chunks: list[np.ndarray] = []
        for key in keys:
            adjacency = self.store.adjacency(key)
            for row in rows:
                chunks.append(adjacency.neighbors(int(row), self.version))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))
