"""Size-class memory pool backing copy-on-write snapshots (paper §5).

The paper's engine "employs a memory pool to facilitate the copy-on-write
strategy, reducing the overhead caused by frequent memory allocation and
deallocation".  This reproduction keeps freelists of NumPy buffers bucketed
by power-of-two size class; acquire/release round-trips reuse buffers
instead of re-allocating, and hit/miss counters make the effect measurable
(see ``benchmarks/bench_ablation_memory_pool.py``).
"""

from __future__ import annotations

import threading
from collections import defaultdict

import numpy as np

from ..errors import TransientError
from ..obs.metrics import MetricsRegistry, REGISTRY
from ..resilience import faults
from ..types import DataType


def _size_class(n: int) -> int:
    """Smallest power of two >= n (and >= 8)."""
    size = 8
    while size < n:
        size <<= 1
    return size


class MemoryPool:
    """Thread-safe pool of reusable NumPy buffers, bucketed by size class."""

    def __init__(self, max_buffers_per_class: int = 64) -> None:
        self._freelists: dict[tuple[int, str], list[np.ndarray]] = defaultdict(list)
        self._lock = threading.Lock()
        self._max_per_class = max_buffers_per_class
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.direct_allocs = 0

    def acquire(self, n: int, dtype: DataType | np.dtype = DataType.INT64) -> np.ndarray:
        """A buffer with at least *n* elements (contents undefined).

        The returned array may be larger than requested; callers slice to
        the length they need.

        Pool exhaustion (fault site ``memory_pool.acquire``) degrades in
        place to a direct allocation — a pooled buffer is an optimization,
        never a correctness requirement, so the failure stays invisible to
        the query apart from the ``direct_allocs`` counter.
        """
        np_dtype = dtype.numpy_dtype if isinstance(dtype, DataType) else np.dtype(dtype)
        size = _size_class(n)
        if faults.ACTIVE is not None:
            try:
                faults.ACTIVE.fire("memory_pool.acquire")
            except TransientError:
                with self._lock:
                    self.direct_allocs += 1
                return np.empty(size, dtype=np_dtype)
        bucket = (size, np_dtype.str)
        with self._lock:
            freelist = self._freelists[bucket]
            if freelist:
                self.hits += 1
                return freelist.pop()
            self.misses += 1
        return np.empty(size, dtype=np_dtype)

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer to the pool for reuse."""
        size = len(buffer)
        if size & (size - 1) or size < 8:
            return  # not one of ours; let the GC have it
        bucket = (size, buffer.dtype.str)
        with self._lock:
            freelist = self._freelists[bucket]
            if len(freelist) < self._max_per_class:
                freelist.append(buffer)
                self.releases += 1

    @property
    def pooled_buffers(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._freelists.values())

    @property
    def pooled_bytes(self) -> int:
        """Total bytes parked in the freelists (the admission controller's
        view of how much memory the pool is already holding)."""
        with self._lock:
            return sum(
                buffer.nbytes
                for freelist in self._freelists.values()
                for buffer in freelist
            )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._freelists.clear()

    def bind_metrics(
        self, registry: MetricsRegistry | None = None, **labels: str
    ) -> None:
        """Expose this pool's occupancy and hit rate as callback gauges.

        Callback gauges read the pool lazily at export time, so an idle
        pool costs nothing; *labels* distinguish multiple pools (the
        default pool registers with ``pool="default"``).
        """
        registry = registry if registry is not None else REGISTRY
        registry.gauge(
            "ges_memory_pool_buffers",
            "Buffers currently parked in the pool's freelists.",
            fn=lambda: self.pooled_buffers,
            **labels,
        )
        registry.gauge(
            "ges_memory_pool_hit_rate",
            "Fraction of acquires served from a freelist.",
            fn=lambda: self.hit_rate,
            **labels,
        )
        registry.gauge(
            "ges_memory_pool_bytes",
            "Bytes currently parked in the pool's freelists.",
            fn=lambda: self.pooled_bytes,
            **labels,
        )


#: Process-wide default pool used by the transaction layer when the engine
#: is not configured with a dedicated one.
DEFAULT_POOL = MemoryPool()
DEFAULT_POOL.bind_metrics(pool="default")
